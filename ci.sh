#!/usr/bin/env bash
# Local CI gate for the HammerHead reproduction.
#
# Usage: ./ci.sh
#
# Runs, in order: format check, clippy (warnings are errors), release
# build, the full workspace test suite, doc tests, and an hh-cli smoke
# run of the Figure 1 scenario capped at 50 DAG rounds.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test -q"
cargo test --workspace -q

step "cargo test --doc"
cargo test --workspace --doc -q

step "hh-cli smoke run (fig1, 50 rounds)"
./target/release/hh-cli run scenarios/fig1_faultless.toml --quick --rounds 50

step "all green"
