#!/usr/bin/env bash
# Local CI gate for the HammerHead reproduction.
#
# Usage: ./ci.sh
#
# Runs, in order: format check, clippy (warnings are errors), release
# build, the full workspace test suite, doc tests, an hh-cli smoke run
# of the Figure 1 scenario capped at 50 DAG rounds, a parallel matrix
# smoke run, a determinism gate checking that --jobs 1 and --jobs 4
# emit byte-identical JSON for a fixed seed, a recovery smoke asserting
# the WAL-replay + reinclusion path (non-empty reinclusion block, no
# recovery_divergence), a hotpath bench smoke refreshing
# BENCH_hotpath.json, and a gate checking that --profile leaves the
# JSON report byte-identical.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test -q"
cargo test --workspace -q

step "cargo test --doc"
cargo test --workspace --doc -q

step "hh-cli smoke run (fig1, 50 rounds)"
./target/release/hh-cli run scenarios/fig1_faultless.toml --quick --rounds 50

step "hh-cli parallel matrix smoke (--jobs 2)"
./target/release/hh-cli matrix scenarios/fig1_faultless.toml \
    --set load.tps=100,200 --quick --rounds 40 --jobs 2

step "determinism: --jobs 1 and --jobs 4 emit identical JSON"
./target/release/hh-cli run scenarios/fig2_faults.toml \
    --quick --seed 7 --json --jobs 1 > target/ci-jobs1.json
./target/release/hh-cli run scenarios/fig2_faults.toml \
    --quick --seed 7 --json --jobs 4 > target/ci-jobs4.json
cmp target/ci-jobs1.json target/ci-jobs4.json

step "recovery smoke: WAL replay + reinclusion analysis, no divergence"
./target/release/hh-cli run scenarios/recovery.toml --quick --json > target/ci-recovery.json
grep -q '"reinclusion": \[' target/ci-recovery.json \
    || { echo "recovery report is missing the reinclusion block"; exit 1; }
grep -q '"rounds_to_first_leader"' target/ci-recovery.json \
    || { echo "reinclusion block is empty"; exit 1; }
if grep -q '"recovery_divergence": true' target/ci-recovery.json; then
    echo "WAL replay diverged from the durable checkpoint"; exit 1
fi
grep -q '"restarts": 1' target/ci-recovery.json \
    || { echo "recovery run did not restart the crashed validator"; exit 1; }

step "hotpath bench smoke (BENCH_hotpath.json, commit-walk regression floor)"
./target/release/hotpath_smoke --out BENCH_hotpath.json --min-speedup 2

step "determinism: --profile leaves the JSON report byte-identical"
./target/release/hh-cli run scenarios/fig2_faults.toml \
    --quick --seed 7 --json --profile > target/ci-profile.json 2> /dev/null
cmp target/ci-jobs1.json target/ci-profile.json

step "all green"
