#!/usr/bin/env bash
# Local CI gate for the HammerHead reproduction.
#
# Usage: ./ci.sh
#
# Runs, in order: format check, clippy (warnings are errors), release
# build, the full workspace test suite, doc tests, an hh-cli smoke run
# of the Figure 1 scenario capped at 50 DAG rounds, a parallel matrix
# smoke run, a determinism gate checking that --jobs 1 and --jobs 4
# emit byte-identical JSON for a fixed seed, a recovery smoke asserting
# the WAL-replay + reinclusion path (non-empty reinclusion block, no
# recovery_divergence), a byzantine smoke asserting the adversary
# analysis block and that reputation scheduling demotes a lazy leader
# round-robin never touches, a chaos smoke running the adverse-network
# sweep across three seeds and gating zero safety-invariant violations,
# nonzero codec rejections of corrupted frames, and a commit floor per
# run, a saturation smoke gating the goodput knee
# (monotone up to the knee, flat/declining past it, zero shed below
# it), a bursty-workload smoke asserting the report's workload goodput
# block, a testnet smoke running 4 real hh-node processes over loopback
# TCP with a SIGKILL + WAL-restart in the middle (zero safety
# violations, clean shutdown, no orphans), a docs gate failing on
# broken relative links in README.md and docs/*.md, a hotpath bench
# smoke refreshing BENCH_hotpath.json, and a gate checking that
# --profile leaves the JSON report byte-identical.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test -q"
cargo test --workspace -q

step "cargo test --doc"
cargo test --workspace --doc -q

step "hh-cli smoke run (fig1, 50 rounds)"
./target/release/hh-cli run scenarios/fig1_faultless.toml --quick --rounds 50

step "hh-cli parallel matrix smoke (--jobs 2)"
./target/release/hh-cli matrix scenarios/fig1_faultless.toml \
    --set load.tps=100,200 --quick --rounds 40 --jobs 2

step "determinism: --jobs 1 and --jobs 4 emit identical JSON"
./target/release/hh-cli run scenarios/fig2_faults.toml \
    --quick --seed 7 --json --jobs 1 > target/ci-jobs1.json
./target/release/hh-cli run scenarios/fig2_faults.toml \
    --quick --seed 7 --json --jobs 4 > target/ci-jobs4.json
cmp target/ci-jobs1.json target/ci-jobs4.json

step "recovery smoke: WAL replay + reinclusion analysis, no divergence"
./target/release/hh-cli run scenarios/recovery.toml --quick --json > target/ci-recovery.json
grep -q '"reinclusion": \[' target/ci-recovery.json \
    || { echo "recovery report is missing the reinclusion block"; exit 1; }
grep -q '"rounds_to_first_leader"' target/ci-recovery.json \
    || { echo "reinclusion block is empty"; exit 1; }
if grep -q '"recovery_divergence": true' target/ci-recovery.json; then
    echo "WAL replay diverged from the durable checkpoint"; exit 1
fi
grep -q '"restarts": 1' target/ci-recovery.json \
    || { echo "recovery run did not restart the crashed validator"; exit 1; }

step "byzantine smoke: adversary analysis present, HH demotes the lazy leader"
./target/release/hh-cli run scenarios/byzantine.toml --quick --json > target/ci-byzantine.json
grep -q '"adversary": \[' target/ci-byzantine.json \
    || { echo "byzantine report is missing the adversary block"; exit 1; }
grep -q '"rounds_to_demotion"' target/ci-byzantine.json \
    || { echo "adversary block is empty"; exit 1; }
# Demotion-speed differential: the vote scorers must demote the lazy
# leader at some finite round; round-robin must never demote it. Keys
# render in insertion order, so the first rounds_to_demotion after a
# lazy_leader strategy line belongs to that attacker.
awk '
/"variant":/  { gsub(/[",]/, ""); variant = $2 }
/"strategy": "lazy_leader"/ { lazy = 1; next }
/"rounds_to_demotion":/ {
  if (!lazy) next
  gsub(/,/, ""); val = $2; lazy = 0
  if (variant == "round-robin" && val != "null") {
    print "byzantine: round-robin demoted the lazy leader (round " val ")"; exit 1
  }
  if (variant == "vote-based" || variant == "vote-ema-30") {
    if (val == "null") { print "byzantine: " variant " never demoted the lazy leader"; exit 1 }
    demoted++
  }
}
END {
  if (demoted < 2) {
    print "byzantine: expected lazy-leader demotion under both vote scorers, got " demoted; exit 1
  }
  print "byzantine: lazy leader demoted under " demoted " vote scorers, never under round-robin"
}' target/ci-byzantine.json

step "chaos smoke: safety clean across seeds, codec rejects corruption, commits flow"
for seed in 7 11 13; do
    ./target/release/hh-cli run scenarios/chaos.toml --quick --seed "$seed" --json \
        > "target/ci-chaos-$seed.json"
done
awk '
/"commits":/           { gsub(/,/, ""); commits[++n] = $2 }
/"corrupt_rejected":/  { gsub(/,/, ""); rejected += $2; blocks++ }
/"safety_violations":/ {
  gsub(/,/, "")
  if ($2 != 0) { print "chaos: " $2 " safety invariant violation(s) reported"; exit 1 }
}
END {
  if (blocks < 6) { print "chaos: expected a chaos block in all 6 runs, got " blocks; exit 1 }
  if (rejected == 0) { print "chaos: no corrupted frame was ever rejected at the codec"; exit 1 }
  for (i = 1; i <= n; i++)
    if (commits[i] < 10) { print "chaos: run " i " stalled at " commits[i] " commits"; exit 1 }
  printf "chaos: %d runs clean, %d corrupt frames rejected at the codec\n", blocks, rejected
}' target/ci-chaos-7.json target/ci-chaos-11.json target/ci-chaos-13.json

step "saturation smoke: goodput knee is monotone, nothing shed below it"
./target/release/hh-cli run scenarios/saturation.toml --quick \
    --set systems.run=hammerhead --json > target/ci-saturation.json
awk '
/"goodput_tps":/ { gsub(/[",]/, ""); g[++n] = $2 }
/"load_tps":/    { gsub(/[",]/, ""); l[++m] = $2 }
/"shed":/        { gsub(/[",]/, ""); s[++k] = $2 }
END {
  if (n < 3) { print "saturation: expected >= 3 runs, got " n; exit 1 }
  peak = 1
  for (i = 2; i <= n; i++) if (g[i] > g[peak]) peak = i
  if (peak == 1) { print "saturation: goodput never rose above the first load"; exit 1 }
  for (i = 1; i < peak; i++)
    if (g[i] > g[i + 1] * 1.03) {
      print "saturation: goodput not monotone below the knee: " g[i] " -> " g[i + 1]; exit 1
    }
  for (i = peak + 1; i <= n; i++)
    if (g[i] > g[peak] * 1.03) {
      print "saturation: goodput rose past the knee: " g[i] " > peak " g[peak]; exit 1
    }
  for (i = 1; i < peak; i++)
    if (s[i] != 0) { print "saturation: " s[i] " shed below the knee (load " l[i] ")"; exit 1 }
  if (g[n] >= l[n] * 0.9) {
    print "saturation: top load did not saturate (goodput " g[n] " vs offered " l[n] ")"; exit 1
  }
  printf "saturation knee at load %s: goodput %.0f tx/s over %d points\n", l[peak], g[peak], n
}' target/ci-saturation.json

step "bursty smoke: workload goodput block present, crash recovered"
./target/release/hh-cli run scenarios/bursty.toml --quick --json > target/ci-bursty.json
grep -q '"goodput_tps"' target/ci-bursty.json \
    || { echo "bursty report is missing the workload goodput block"; exit 1; }
grep -q '"shed_rate"' target/ci-bursty.json \
    || { echo "bursty report is missing the shed rate"; exit 1; }
grep -q '"restarts": 1' target/ci-bursty.json \
    || { echo "bursty run did not restart the crashed validator"; exit 1; }

step "testnet smoke: 4 real hh-node processes, kill + restart, safety clean"
# Real OS processes over loopback TCP: node 2 is SIGKILLed a third of
# the way in and restarted against its WAL. Gates: >= 10 commits per
# node, committed round >= 20, zero safety violations, victim catch-up,
# clean stdin-close shutdown — all enforced by the harness (exit code).
timeout 120 ./target/release/hh-cli testnet --nodes 4 --duration-secs 14 \
    --tps 200 --kill 2 --kill-after-secs 4 --restart-after-secs 2 \
    --min-commits 10 --min-rounds 20 > target/ci-testnet.json
grep -q '"safety_violations": 0' target/ci-testnet.json \
    || { echo "testnet report missing the clean safety gate"; exit 1; }
grep -q '"clean_shutdown": true' target/ci-testnet.json \
    || { echo "testnet shutdown was not clean"; exit 1; }
if pgrep -f 'hh-node --config' > /dev/null 2>&1; then
    echo "testnet left orphan hh-node processes behind"
    pgrep -af 'hh-node --config' || true
    exit 1
fi

step "docs: every relative link in README.md and docs/*.md resolves"
# No links in a page is fine (|| true guards grep's exit 1 under
# pipefail); a relative link whose target does not exist is not.
for doc in README.md docs/*.md; do
    dir=$(dirname "$doc")
    for link in $(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//' || true); do
        case "$link" in
            http://*|https://*|\#*) continue ;;
        esac
        target="${link%%#*}"
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "broken link in $doc: $link"
            exit 1
        fi
    done
done

step "hotpath bench smoke (BENCH_hotpath.json, commit-walk + sim-throughput floors)"
# The sim floor is 2x the pre-overhaul checked-in sim_events_per_sec
# (582k): the event-queue/zero-copy/caching rework must stay at least
# twice as fast as the BinaryHeap + deep-clone simulator it replaced.
./target/release/hotpath_smoke --out BENCH_hotpath.json --min-speedup 2 --min-sim-events 1160000

step "determinism: --profile leaves the JSON report byte-identical"
./target/release/hh-cli run scenarios/fig2_faults.toml \
    --quick --seed 7 --json --profile > target/ci-profile.json 2> /dev/null
cmp target/ci-jobs1.json target/ci-profile.json

step "all green"
