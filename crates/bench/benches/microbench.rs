//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! hashing, the WAL, DAG insertion and reachability, the commit rule,
//! schedule recomputation and the wire codec.
//!
//! Run: `cargo bench -p hh-bench`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hammerhead::{compute_next_schedule, ReputationScores};
use hh_consensus::{Bullshark, RoundRobinPolicy, SlotSchedule};
use hh_dag::testkit::DagBuilder;
use hh_dag::Dag;
use hh_storage::{MemBackend, Wal};
use hh_types::codec::{decode_from_slice, encode_to_vec};
use hh_types::{Block, Committee, Round, Transaction, ValidatorId, Vertex};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data = vec![0xABu8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256_1k", |b| b.iter(|| hh_crypto::sha256(&data)));
    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    let record = vec![7u8; 256];
    group.bench_function("wal_append_256b", |b| {
        b.iter_batched(
            || Wal::new(MemBackend::new()),
            |mut wal| {
                for _ in 0..100 {
                    wal.append(&record).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("wal_replay_1000", |b| {
        let mem = MemBackend::new();
        let mut wal = Wal::new(mem.clone());
        for _ in 0..1000 {
            wal.append(&record).unwrap();
        }
        b.iter(|| Wal::new(mem.clone()).replay().unwrap().len())
    });
    group.finish();
}

fn full_dag(n: usize, rounds: usize) -> Dag {
    let committee = Committee::new_equal_stake(n);
    let mut b = DagBuilder::new(committee);
    b.extend_full_rounds(rounds);
    b.into_dag()
}

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag");
    let committee = Committee::new_equal_stake(50);

    group.bench_function("insert_round_n50", |b| {
        // Re-insert a fresh round-1 on top of a pre-built genesis.
        let mut base = DagBuilder::new(committee.clone());
        base.extend_full_rounds(1);
        let genesis = base.into_dag();
        let parents: Vec<_> = {
            let mut refs: Vec<_> =
                genesis.round_vertices(Round(0)).map(|v| (v.author(), v.digest())).collect();
            refs.sort();
            refs.into_iter().map(|(_, d)| d).collect()
        };
        let vertices: Vec<Vertex> = committee
            .ids()
            .map(|id| {
                Vertex::new(Round(1), id, Block::empty(), parents.clone(), &committee.keypair(id))
            })
            .collect();
        b.iter_batched(
            || genesis.clone(),
            |mut dag| {
                for v in &vertices {
                    dag.try_insert(v.clone()).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });

    let dag = full_dag(50, 10);
    let top = dag.vertex_by_author(Round(9), ValidatorId(0)).unwrap().clone();
    let bottom = dag.vertex_by_author(Round(0), ValidatorId(49)).unwrap().clone();
    group.bench_function("reachable_depth9_n50", |b| {
        b.iter(|| assert!(dag.reachable(&top, &bottom)))
    });
    group.bench_function("causal_history_n50_r10", |b| b.iter(|| dag.causal_history(&top).len()));
    group.finish();
}

/// The commit rule's `path(v, u)` shapes on a 40-round DAG: the depth-2
/// anchor-to-anchor probe (bitset fast path) and a depth-39 descent
/// (still within the default window).
fn bench_reachable(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachable");
    for n in [50usize, 100] {
        let dag = full_dag(n, 40);
        let anchor = dag.vertex_by_author(Round(10), ValidatorId(0)).unwrap().clone();
        let prev = dag.vertex_by_author(Round(8), ValidatorId(1)).unwrap().clone();
        group.bench_function(format!("anchor_depth2_n{n}"), |b| {
            b.iter(|| assert!(dag.reachable(&anchor, &prev)))
        });
        let top = dag.vertex_by_author(Round(39), ValidatorId(0)).unwrap().clone();
        let bottom = dag.vertex_by_author(Round(0), ValidatorId((n - 1) as u16)).unwrap().clone();
        group.bench_function(format!("deep_depth39_n{n}"), |b| {
            b.iter(|| assert!(dag.reachable(&top, &bottom)))
        });
    }
    group.finish();
}

/// Sub-DAG delivery from a fresh anchor: the per-commit shape (two
/// unordered rounds above an ordered prefix) via a reused scratch.
fn bench_causal_sub_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("causal_sub_dag");
    for n in [50usize, 100] {
        let dag = full_dag(n, 12);
        let anchor = dag.vertex_by_author(Round(10), ValidatorId(0)).unwrap().clone();
        let ordered: std::collections::HashSet<_> =
            (0..8u64).flat_map(|r| dag.round_vertices(Round(r)).map(|v| v.digest())).collect();
        let mut scratch = hh_dag::SubDagScratch::new();
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_function(format!("two_rounds_n{n}"), |b| {
            b.iter(|| {
                let sub = dag.causal_sub_dag_with(&anchor, |d| ordered.contains(d), &mut scratch);
                assert_eq!(sub.len(), 2 * n + 1);
            })
        });
    }
    group.finish();
}

/// The full commit walk: every vertex of a 100-round DAG through
/// `process_vertex` on a fresh engine — the ordering hot path end to
/// end (trigger checks, anchor walk, sub-DAG delivery).
fn bench_process_vertex(c: &mut Criterion) {
    let mut group = c.benchmark_group("process_vertex");
    for n in [50usize, 100] {
        let committee = Committee::new_equal_stake(n);
        let rounds = 100u64;
        let dag = full_dag(n, rounds as usize);
        group.throughput(Throughput::Elements(rounds * n as u64));
        group.bench_function(format!("full_dag_r100_n{n}"), |b| {
            b.iter_batched(
                || {
                    Bullshark::new(
                        committee.clone(),
                        RoundRobinPolicy::new(SlotSchedule::round_robin(&committee)),
                    )
                },
                |mut engine| {
                    let mut commits = 0usize;
                    for r in 0..rounds {
                        for v in dag.round_vertices(Round(r)) {
                            commits += engine.process_vertex(v, &dag).len();
                        }
                    }
                    assert!(commits >= 48);
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus");
    for n in [10usize, 50] {
        let committee = Committee::new_equal_stake(n);
        let dag = full_dag(n, 21);
        group.throughput(Throughput::Elements(21 * n as u64));
        group.bench_function(format!("commit_21_rounds_n{n}"), |b| {
            b.iter_batched(
                || {
                    Bullshark::new(
                        committee.clone(),
                        RoundRobinPolicy::new(SlotSchedule::round_robin(&committee)),
                    )
                },
                |mut engine| {
                    let mut commits = 0;
                    for r in 0..21u64 {
                        let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
                        vs.sort_by_key(|v| v.author());
                        for v in vs {
                            commits += engine.process_vertex(&v, &dag).len();
                        }
                    }
                    assert!(commits >= 9);
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    for n in [10usize, 100] {
        let committee = Committee::new_equal_stake(n);
        let prev = SlotSchedule::permuted(&committee, 7);
        let mut scores = ReputationScores::new(&committee);
        for (i, id) in committee.ids().enumerate() {
            scores.add(id, (i as u64 * 13) % 50);
        }
        group.bench_function(format!("compute_next_n{n}"), |b| {
            b.iter(|| {
                compute_next_schedule(&prev, &scores, &committee, committee.max_faulty_stake())
            })
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let committee = Committee::new_equal_stake(50);
    let parents: Vec<_> = (0..34).map(|i| hh_crypto::sha256(&[i as u8])).collect();
    let txs: Vec<Transaction> = (0..500).map(|i| Transaction::new(1, i, i * 10)).collect();
    let vertex = Vertex::new(
        Round(4),
        ValidatorId(0),
        Block::new(txs),
        parents,
        &committee.keypair(ValidatorId(0)),
    );
    let bytes = encode_to_vec(&vertex);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_vertex_500tx", |b| b.iter(|| encode_to_vec(&vertex)));
    group.bench_function("decode_vertex_500tx", |b| {
        b.iter(|| decode_from_slice::<Vertex>(&bytes).unwrap())
    });
    group.finish();
}

/// The fault-plan queries the network simulator makes per routed message
/// / liveness probe, against a linear-scan baseline transcribing the
/// pre-index implementation — the before/after pair for the indexed
/// `crashed_at` / `partition_release`.
fn bench_fault_plan(c: &mut Criterion) {
    use hh_net::{FaultPlan, NodeId, PartitionSpec, SimTime};

    let n_nodes = 100usize;
    let mut plan = FaultPlan::new();
    let mut crashes: Vec<(NodeId, SimTime)> = Vec::new();
    let mut recoveries: Vec<(NodeId, SimTime)> = Vec::new();
    let mut partitions: Vec<PartitionSpec> = Vec::new();
    // 32 crash/recovery pairs and 16 partition windows spread over a
    // 60-second run — a dense dynamic fault schedule.
    for k in 0..32u64 {
        let node = NodeId((k as usize * 7) % n_nodes);
        let at = SimTime::from_millis(500 + k * 1700);
        let back = SimTime::from_millis(2500 + k * 1700);
        plan = plan.crash(node, at).recover(node, back);
        crashes.push((node, at));
        recoveries.push((node, back));
    }
    for k in 0..16u64 {
        let spec = PartitionSpec {
            group_a: (0..8).map(|i| NodeId((i + k as usize) % n_nodes)).collect(),
            group_b: (8..16).map(|i| NodeId((i + k as usize) % n_nodes)).collect(),
            from: SimTime::from_millis(k * 3500),
            until: SimTime::from_millis(k * 3500 + 2000),
        };
        partitions.push(spec.clone());
        plan = plan.partition(spec);
    }

    let naive_crashed_at = |node: NodeId, t: SimTime| -> bool {
        let last_crash =
            crashes.iter().filter(|(n, at)| *n == node && *at <= t).map(|(_, at)| *at).max();
        let Some(crash_time) = last_crash else {
            return false;
        };
        !recoveries.iter().any(|(n, at)| *n == node && *at >= crash_time && *at <= t)
    };
    let naive_release = |from: NodeId, to: NodeId, now: SimTime| -> Option<SimTime> {
        partitions.iter().filter(|p| p.severs(from, to, now)).map(|p| p.until).max()
    };

    let queries: Vec<(NodeId, NodeId, SimTime)> = (0..256u64)
        .map(|q| {
            (
                NodeId((q as usize * 13) % n_nodes),
                NodeId((q as usize * 29 + 3) % n_nodes),
                SimTime::from_millis((q * 233) % 60_000),
            )
        })
        .collect();

    let mut group = c.benchmark_group("fault_plan");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("crashed_at_indexed", |b| {
        b.iter(|| queries.iter().filter(|(node, _, t)| plan.crashed_at(*node, *t)).count())
    });
    group.bench_function("crashed_at_linear_baseline", |b| {
        b.iter(|| queries.iter().filter(|(node, _, t)| naive_crashed_at(*node, *t)).count())
    });
    group.bench_function("partition_release_indexed", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|(from, to, t)| plan.partition_release(*from, *to, *t).is_some())
                .count()
        })
    });
    group.bench_function("partition_release_linear_baseline", |b| {
        b.iter(|| {
            queries.iter().filter(|(from, to, t)| naive_release(*from, *to, *t).is_some()).count()
        })
    });
    // The index and the baseline must agree query for query.
    for (from, to, t) in &queries {
        assert_eq!(plan.crashed_at(*from, *t), naive_crashed_at(*from, *t));
        assert_eq!(plan.partition_release(*from, *to, *t), naive_release(*from, *to, *t));
    }
    group.finish();
}

/// The simulator's event queue, at a quiet depth (1k pending, the quick
/// scenarios) and a saturated one (100k pending, the load sweeps). Each
/// iteration pushes one event and pops the earliest, i.e. the steady-state
/// churn of the event loop; pending events are spread over the wheel's
/// full ring horizon so pops pay realistic cursor movement, with a slice
/// beyond it so the overflow path stays on the profile too.
fn bench_event_queue(c: &mut Criterion) {
    use hh_net::wheel::{TimingWheel, WHEEL_SLOTS};
    use hh_net::SimTime;

    let mut group = c.benchmark_group("event_queue");
    for &pending in &[1_000u64, 100_000] {
        let setup = move || {
            let mut wheel: TimingWheel<u64> = TimingWheel::new();
            // Deterministic spread: mostly within the ring horizon,
            // every 16th event far beyond it (overflow map).
            for seq in 0..pending {
                let at = if seq % 16 == 0 {
                    2 * WHEEL_SLOTS as u64 + (seq * 131) % 1_000_000
                } else {
                    (seq * 2_654_435_761) % WHEEL_SLOTS as u64
                };
                wheel.push(SimTime(at), seq, seq);
            }
            wheel
        };
        group.throughput(Throughput::Elements(1_000));
        group.bench_function(format!("push_pop_{pending}_pending"), |b| {
            b.iter_batched(
                setup,
                |mut wheel| {
                    for seq in pending..pending + 1_000 {
                        let (at, _, v) = wheel.pop().expect("queue stays non-empty");
                        wheel.push(at + hh_net::Duration::from_micros(v % 97 + 1), seq, v);
                    }
                    wheel
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_wal,
    bench_dag,
    bench_reachable,
    bench_causal_sub_dag,
    bench_process_vertex,
    bench_consensus,
    bench_schedule,
    bench_codec,
    bench_fault_plan,
    bench_event_queue
);
criterion_main!(benches);
