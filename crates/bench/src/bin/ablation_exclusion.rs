//! **Ablation A2 — exclusion fraction** (paper footnote 15). Thin
//! wrapper over `scenarios/ablation_exclusion.toml`.
//!
//! Run: `cargo run -p hh-bench --release --bin ablation_exclusion [--quick]`

fn main() {
    hh_bench::run_repo_scenario("ablation_exclusion.toml");
}
