//! **Ablation A2 — exclusion fraction.** The paper's benchmarks exclude the
//! bottom 33% of validators by stake (= `f`); Sui mainnet only excludes the
//! bottom 20% (footnote 15). With `f` validators crashed, an exclusion
//! budget below the crash count necessarily leaves crashed leaders in the
//! schedule — this ablation quantifies that cliff.
//!
//! Run: `cargo run -p hh-bench --release --bin ablation_exclusion [--quick]`

use hammerhead::HammerheadConfig;
use hh_bench::Scale;
use hh_sim::{run_experiment, ExperimentConfig, FaultSpec, SystemKind};
use hh_types::Stake;

fn main() {
    let scale = Scale::from_args();
    let committee = if scale.quick { 12 } else { 30 };
    let crashed = committee / 4; // 25% crashed: between the 20% and 33% budgets
    let duration = scale.duration_secs.max(30);
    let fractions: &[(u64, &str)] = &[(10, "10%"), (20, "20% (mainnet)"), (33, "33% (paper bench)")];

    println!(
        "# Ablation A2 — exclusion budget ({crashed}/{committee} crashed, {duration}s runs)"
    );
    println!("csv,exclusion_pct,throughput_tps,latency_s,latency_p95_s,leader_timeouts,epochs");

    for &(pct, label) in fractions {
        let budget = Stake(committee as u64 * pct / 100);
        let mut config = ExperimentConfig::paper(SystemKind::Hammerhead, committee, 500);
        config.duration_secs = duration;
        config.warmup_secs = duration / 6;
        config.seed = scale.seed;
        config.faults = FaultSpec::crash_last(committee, crashed);
        config.hammerhead = HammerheadConfig {
            max_excluded_stake: Some(budget),
            ..HammerheadConfig::default()
        };
        let r = run_experiment(&config);
        assert!(r.agreement_ok, "agreement violated at exclusion {pct}%");
        println!(
            "  exclude {:<16} {:>6.0} tx/s | latency {:>5.2}s (p95 {:>5.2}) | timeouts {:>4} | epochs {:>3}",
            label, r.throughput_tps, r.latency.mean, r.latency.p95, r.leader_timeouts, r.schedule_epochs
        );
        println!(
            "csv,{},{:.1},{:.3},{:.3},{},{}",
            pct, r.throughput_tps, r.latency.mean, r.latency.p95, r.leader_timeouts, r.schedule_epochs
        );
    }
}
