//! **Ablation A1 — schedule period T.** The paper benchmarks with the
//! schedule recomputed every 10 commits; Sui mainnet uses a conservative
//! 300 commits (footnote 15). Shorter periods react to crashes faster
//! (fewer leader timeouts before the crashed validators leave the
//! schedule) at the cost of more schedule churn.
//!
//! Run: `cargo run -p hh-bench --release --bin ablation_period [--quick]`

use hammerhead::HammerheadConfig;
use hh_bench::Scale;
use hh_sim::{run_experiment, ExperimentConfig, FaultSpec, SystemKind};

fn main() {
    let scale = Scale::from_args();
    let committee = if scale.quick { 10 } else { 30 };
    let faults = committee / 3;
    let duration = scale.duration_secs.max(30);
    // Periods in rounds; ≈ commits × 2 (one anchor per two rounds).
    let periods: &[u64] = if scale.quick { &[4, 20, 120] } else { &[4, 10, 20, 60, 150, 300, 600] };

    println!(
        "# Ablation A1 — schedule period T ({faults}/{committee} crashed, {duration}s runs). \
         Paper bench ≈ 20 rounds; Sui mainnet ≈ 600."
    );
    println!("csv,period_rounds,throughput_tps,latency_s,latency_p95_s,leader_timeouts,epochs");

    for &period in periods {
        let mut config = ExperimentConfig::paper(SystemKind::Hammerhead, committee, 500);
        config.duration_secs = duration;
        config.warmup_secs = duration / 6;
        config.seed = scale.seed;
        config.faults = FaultSpec::crash_last(committee, faults);
        config.hammerhead = HammerheadConfig { period_rounds: period, ..HammerheadConfig::default() };
        let r = run_experiment(&config);
        assert!(r.agreement_ok, "agreement violated at T={period}");
        println!(
            "  T={:<4} rounds: {:>6.0} tx/s | latency {:>5.2}s (p95 {:>5.2}) | timeouts {:>4} | epochs {:>3}",
            period, r.throughput_tps, r.latency.mean, r.latency.p95, r.leader_timeouts, r.schedule_epochs
        );
        println!(
            "csv,{},{:.1},{:.3},{:.3},{},{}",
            period, r.throughput_tps, r.latency.mean, r.latency.p95, r.leader_timeouts, r.schedule_epochs
        );
    }
}
