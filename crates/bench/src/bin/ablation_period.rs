//! **Ablation A1 — schedule period T** (paper footnote 15). Thin wrapper
//! over `scenarios/ablation_period.toml`.
//!
//! Run: `cargo run -p hh-bench --release --bin ablation_period [--quick]`

fn main() {
    hh_bench::run_repo_scenario("ablation_period.toml");
}
