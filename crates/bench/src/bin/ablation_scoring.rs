//! **Ablation A3 — scoring rule.** §7 compares HammerHead's vote-based
//! scores (discouraging vote withholding) with Shoal's committed/skipped
//! leader outcomes, and mentions the PBFT-style static leader as a
//! rejected extreme. This ablation runs all four schedules under crash
//! faults:
//!
//! * `vote-based` — HammerHead's rule (+1 per vote for a leader);
//! * `leader-outcome` — Shoal-style (+bonus to committed anchors' authors);
//! * `round-robin` — the static baseline;
//! * `static-leader` — one fixed leader (pinned to a live validator, the
//!   rejected §7 extreme; pinning to a crashed one would halt commits
//!   entirely).
//!
//! Run: `cargo run -p hh-bench --release --bin ablation_scoring [--quick]`

use hammerhead::{HammerheadConfig, ScheduleConfig, ScoringRule};
use hh_bench::Scale;
use hh_sim::{run_experiment, ExperimentConfig, FaultSpec, SystemKind};
use hh_types::ValidatorId;

fn main() {
    let scale = Scale::from_args();
    let committee = if scale.quick { 10 } else { 30 };
    let crashed = committee / 3;
    let duration = scale.duration_secs.max(30);

    println!("# Ablation A3 — scoring rules ({crashed}/{committee} crashed, {duration}s runs)");
    println!("csv,rule,throughput_tps,latency_s,latency_p95_s,leader_timeouts,epochs");

    let rules: Vec<(&str, ExperimentConfig)> = vec![
        ("vote-based", {
            let mut c = ExperimentConfig::paper(SystemKind::Hammerhead, committee, 500);
            c.hammerhead = HammerheadConfig {
                scoring_rule: ScoringRule::VoteBased,
                ..HammerheadConfig::default()
            };
            c
        }),
        ("leader-outcome", {
            let mut c = ExperimentConfig::paper(SystemKind::Hammerhead, committee, 500);
            c.hammerhead = HammerheadConfig {
                scoring_rule: ScoringRule::LeaderOutcome,
                ..HammerheadConfig::default()
            };
            c
        }),
        ("vote-ema-30", {
            // §7's "more adaptive scoring" open question: cross-epoch EMA.
            let mut c = ExperimentConfig::paper(SystemKind::Hammerhead, committee, 500);
            c.hammerhead = HammerheadConfig {
                scoring_rule: ScoringRule::VoteEma { alpha_percent: 30 },
                ..HammerheadConfig::default()
            };
            c
        }),
        ("round-robin", ExperimentConfig::paper(SystemKind::Bullshark, committee, 500)),
        ("static-leader", {
            let mut c = ExperimentConfig::paper(SystemKind::Bullshark, committee, 500);
            c.schedule_override = Some(ScheduleConfig::StaticLeader(ValidatorId(0)));
            c
        }),
    ];

    for (label, mut config) in rules {
        config.duration_secs = duration;
        config.warmup_secs = duration / 6;
        config.seed = scale.seed;
        config.faults = FaultSpec::crash_last(committee, crashed);
        let r = run_experiment(&config);
        assert!(r.agreement_ok, "agreement violated for rule {label}");
        println!(
            "  {:<14} {:>6.0} tx/s | latency {:>5.2}s (p95 {:>5.2}) | timeouts {:>4} | epochs {:>3}",
            label, r.throughput_tps, r.latency.mean, r.latency.p95, r.leader_timeouts, r.schedule_epochs
        );
        println!(
            "csv,{},{:.1},{:.3},{:.3},{},{}",
            label, r.throughput_tps, r.latency.mean, r.latency.p95, r.leader_timeouts, r.schedule_epochs
        );
    }
}
