//! **Ablation A3 — scoring rule** (paper §7). Thin wrapper over
//! `scenarios/ablation_scoring.toml`.
//!
//! Run: `cargo run -p hh-bench --release --bin ablation_scoring [--quick]`

fn main() {
    hh_bench::run_repo_scenario("ablation_scoring.toml");
}
