//! **Figure 1**: HammerHead vs Bullshark latency–throughput with 10, 50
//! and 100 validators, no faults. Thin wrapper over
//! `scenarios/fig1_faultless.toml` (see the file for the paper's
//! observations to reproduce).
//!
//! Run: `cargo run -p hh-bench --release --bin fig1_faultless [--quick]`

fn main() {
    hh_bench::run_repo_scenario("fig1_faultless.toml");
}
