//! **Figure 1**: HammerHead vs Bullshark latency–throughput with 10, 50 and
//! 100 validators, no faults.
//!
//! Paper's observations to reproduce (shape, not absolute values):
//! * both systems peak around 4,000 tx/s (10/50 validators) and ~3,500 tx/s
//!   (100 validators);
//! * HammerHead's latency sits slightly *below* Bullshark's (2.7 s vs 3.0 s
//!   in the paper) because remote, slower leaders are elected less often;
//! * neither system loses throughput from the reputation mechanism.
//!
//! Run: `cargo run -p hh-bench --release --bin fig1_faultless [--quick]`

use hh_bench::{check_agreement, print_csv_header, print_row, Row, Scale};
use hh_sim::{run_experiment, SystemKind};

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Figure 1 — faultless latency/throughput (duration {}s/run, seed {})",
        scale.duration_secs, scale.seed
    );
    print_csv_header();
    for &committee in &scale.committees {
        for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
            for load in scale.loads(committee) {
                let config = scale.config(system, committee, load);
                let result = run_experiment(&config);
                let row = Row {
                    system: system.label().to_string(),
                    committee,
                    faults: 0,
                    load,
                    result,
                };
                check_agreement(&row);
                print_row(&row);
            }
        }
    }
}
