//! **Figure 2**: HammerHead vs Bullshark under the maximum tolerable crash
//! faults — 3/10, 16/50, 33/100 validators crashed from t=0.
//!
//! Paper's observations to reproduce (shape, not absolute values):
//! * Bullshark degrades badly: throughput −25% (small committees) to −40%+
//!   (100 validators), latency 2–3×, because a third of the leader slots
//!   hit the leader-await timeout and commits stall;
//! * HammerHead suffers no visible throughput loss and only a slight
//!   latency increase (≤0.5 s in the paper) — crashed validators are
//!   excluded from the schedule within the first epoch and never return
//!   while down.
//!
//! Run: `cargo run -p hh-bench --release --bin fig2_faults [--quick]`

use hh_bench::{check_agreement, print_csv_header, print_row, Row, Scale};
use hh_sim::{run_experiment, FaultSpec, SystemKind};

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Figure 2 — maximum crash faults (duration {}s/run, seed {})",
        scale.duration_secs, scale.seed
    );
    print_csv_header();
    for &committee in &scale.committees {
        let faults = committee / 3; // the maximum tolerable
        for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
            for load in scale.loads(committee) {
                let mut config = scale.config(system, committee, load);
                config.faults = FaultSpec::crash_last(committee, faults);
                let result = run_experiment(&config);
                let row = Row {
                    system: system.label().to_string(),
                    committee,
                    faults,
                    load,
                    result,
                };
                check_agreement(&row);
                print_row(&row);
            }
        }
    }
}
