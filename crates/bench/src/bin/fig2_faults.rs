//! **Figure 2**: HammerHead vs Bullshark under the maximum tolerable
//! crash faults — f validators crashed from t=0. Thin wrapper over
//! `scenarios/fig2_faults.toml` (see the file for the paper's
//! observations to reproduce).
//!
//! Run: `cargo run -p hh-bench --release --bin fig2_faults [--quick]`

fn main() {
    hh_bench::run_repo_scenario("fig2_faults.toml");
}
