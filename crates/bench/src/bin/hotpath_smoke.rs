//! `hotpath_smoke` — a fast, JSON-emitting smoke benchmark of the
//! ordering hot path, run by `ci.sh` to seed the perf trajectory.
//!
//! Unlike the criterion microbenches (statistical, minutes), this runs
//! each probe a handful of times and reports the best observed wall
//! clock — coarse, but stable enough that `--min-speedup` can gate CI
//! against an order-of-magnitude hot-path regression. Probes:
//!
//! * `commit_walk_ns` — `Bullshark::process_vertex` fed every vertex of
//!   a full 50-validator, 100-round DAG, reported per vertex;
//! * `reachable_ns` — one anchor-to-anchor `Dag::reachable` query
//!   (depth 2, the commit rule's shape) on the same DAG;
//! * `causal_sub_dag_ns` — one full-history `Dag::causal_sub_dag` from
//!   a top vertex;
//! * `sim_events_per_sec` — a quick 4-validator scenario driven to
//!   round 60, simulator events over event-loop wall clock (the sim is
//!   built outside the timed region and the safety audit runs after
//!   it); `--min-sim-events <n>` gates CI on this floor.
//!
//! The emitted JSON carries a `baseline` object alongside `current`:
//! the pre-indexing numbers (digest-keyed BFS walk) measured on this
//! machine class before the slot-index rework, so every later run can
//! report its speedup against the same anchor. `--min-speedup <x>`
//! exits non-zero when the commit-walk speedup drops below `x` — the
//! CI floor is set well under the observed ~10× so slower machine
//! classes pass while a reverted/regressed index (≈1×) fails.
//!
//! Usage: `hotpath_smoke [--out BENCH_hotpath.json] [--min-speedup X]`

use hh_consensus::{Bullshark, RoundRobinPolicy, SlotSchedule};
use hh_dag::testkit::DagBuilder;
use hh_dag::Dag;
use hh_scenario::Json;
use hh_sim::{build_sim, run_sim_limited, ExperimentConfig, RunLimit, SystemKind};
use hh_types::{Committee, Round, ValidatorId};
use std::time::Instant;

/// Pre-indexing numbers (PR 2 tree: per-query BFS with digest
/// hashing), measured with this same binary before the slot-index
/// rework. Kept as the fixed anchor the acceptance gate compares
/// against.
const BASELINE_COMMIT_WALK_NS: f64 = 3355.0;
const BASELINE_REACHABLE_NS: f64 = 122230.0;
const BASELINE_CAUSAL_SUB_DAG_NS: f64 = 12608096.0;
const BASELINE_SIM_EVENTS_PER_SEC: f64 = 554203.0;

const COMMITTEE: usize = 50;
const ROUNDS: usize = 100;
/// Round the sim throughput probe drives its 4-validator scenario to.
const SIM_TARGET_ROUND: u64 = 60;

fn full_dag(n: usize, rounds: usize) -> Dag {
    let mut b = DagBuilder::new(Committee::new_equal_stake(n));
    b.extend_full_rounds(rounds);
    b.into_dag()
}

/// Best-of-`iters` wall clock of `f`, in nanoseconds.
fn best_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut min_sim_events: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out requires a path")),
            "--min-speedup" => {
                let value = args.next().expect("--min-speedup requires a number");
                min_speedup = Some(value.parse().expect("--min-speedup requires a number"));
            }
            "--min-sim-events" => {
                let value = args.next().expect("--min-sim-events requires a number");
                min_sim_events = Some(value.parse().expect("--min-sim-events requires a number"));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\n\
                     usage: hotpath_smoke [--out FILE] [--min-speedup X] [--min-sim-events N]"
                );
                std::process::exit(2);
            }
        }
    }

    // The DAG probes live in their own scope so their 5000-vertex DAG is
    // off the heap before the sim throughput probe below runs.
    let (commit_walk_ns, reachable_ns, causal_sub_dag_ns) = {
        let committee = Committee::new_equal_stake(COMMITTEE);
        let dag = full_dag(COMMITTEE, ROUNDS);
        let vertex_count = dag.len() as f64;

        // The commit walk: every vertex of the DAG through a fresh engine.
        let commit_walk_total_ns = best_ns(5, || {
            let mut engine = Bullshark::new(
                committee.clone(),
                RoundRobinPolicy::new(SlotSchedule::round_robin(&committee)),
            );
            let mut commits = 0usize;
            for r in 0..ROUNDS as u64 {
                for v in dag.round_vertices(Round(r)) {
                    commits += engine.process_vertex(v, &dag).len();
                }
            }
            assert!(commits >= ROUNDS / 2 - 2, "commit walk under-committed: {commits}");
        });

        // Anchor-to-anchor reachability (depth 2, the orderAnchors shape).
        let from = dag.vertex_by_author(Round(10), ValidatorId(0)).unwrap().clone();
        let to = dag.vertex_by_author(Round(8), ValidatorId(1)).unwrap().clone();
        let reachable_ns = best_ns(7, || {
            for _ in 0..1000 {
                assert!(dag.reachable(&from, &to));
            }
        }) / 1000.0;

        // Full-history delivery from a top vertex.
        let top = dag.vertex_by_author(Round(ROUNDS as u64 - 1), ValidatorId(0)).unwrap().clone();
        let causal_sub_dag_ns = best_ns(5, || {
            assert!(dag.causal_history(&top).len() > COMMITTEE * (ROUNDS - 2));
        });

        (commit_walk_total_ns / vertex_count, reachable_ns, causal_sub_dag_ns)
    };

    // Whole-system events/sec on a quick deterministic scenario, timed
    // over the event loop alone: the simulator is built outside the
    // clock and the end-of-run safety audit happens after it stops, so
    // the number reports event-processing throughput rather than setup
    // and teardown. The drive replicates `RunLimit::Rounds`: advance in
    // 250 ms slices until the fastest validator reaches round 60. One
    // discarded warm-up run, then best-of-7 (the `reachable` probe's
    // draw count) — each run is ~1 ms and this box's scheduler is noisy
    // enough that the minimum needs several draws to stabilize.
    let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    let cap_us = config.duration_secs * 1_000_000;
    let mut sim_events = 0u64;
    let mut sim_run_ns = || {
        let mut handle = build_sim(&config);
        let t = Instant::now();
        let mut now_us = 0u64;
        while now_us < cap_us {
            now_us = (now_us + 250_000).min(cap_us);
            handle.sim.run_until(hh_net::SimTime(now_us));
            let best = (0..handle.n_validators)
                .map(|i| handle.validator(i).current_round().0)
                .max()
                .unwrap_or(0);
            if best >= SIM_TARGET_ROUND {
                break;
            }
        }
        let wall = t.elapsed().as_nanos() as f64;
        sim_events = handle.sim.stats().events;
        wall
    };
    let _ = sim_run_ns();
    let mut sim_wall_ns = f64::INFINITY;
    for _ in 0..7 {
        sim_wall_ns = sim_wall_ns.min(sim_run_ns());
    }
    let sim_events_per_sec = sim_events as f64 / (sim_wall_ns / 1e9).max(1e-9);

    // The full harness path (build + drive + safety audit) must agree on
    // the event count, so the loop-only number above describes the same
    // run the scenario engine executes.
    let (harness, _end_us) = run_sim_limited(&config, RunLimit::Rounds(SIM_TARGET_ROUND));
    assert_eq!(
        harness.sim.stats().events,
        sim_events,
        "loop-only probe diverged from run_sim_limited"
    );

    let probe = |walk: f64, reach: f64, sub: f64, eps: f64| {
        Json::object()
            .with("commit_walk_ns_per_vertex", Json::Float(walk))
            .with("reachable_ns", Json::Float(reach))
            .with("causal_sub_dag_ns", Json::Float(sub))
            .with("sim_events_per_sec", Json::Float(eps))
    };
    let report = Json::object()
        .with("bench", Json::Str("hotpath".into()))
        .with(
            "setup",
            Json::object()
                .with("committee", Json::Int(COMMITTEE as i64))
                .with("rounds", Json::Int(ROUNDS as i64)),
        )
        .with(
            "baseline",
            probe(
                BASELINE_COMMIT_WALK_NS,
                BASELINE_REACHABLE_NS,
                BASELINE_CAUSAL_SUB_DAG_NS,
                BASELINE_SIM_EVENTS_PER_SEC,
            ),
        )
        .with(
            "current",
            probe(commit_walk_ns, reachable_ns, causal_sub_dag_ns, sim_events_per_sec),
        );
    let rendered = report.render();

    println!(
        "hotpath: commit walk {:.0} ns/vertex | reachable {:.0} ns | causal_sub_dag {:.0} ns | \
         {:.0} sim events/s",
        commit_walk_ns, reachable_ns, causal_sub_dag_ns, sim_events_per_sec
    );
    if BASELINE_COMMIT_WALK_NS > 0.0 {
        println!(
            "         vs baseline: commit walk {:.1}x | reachable {:.1}x | causal_sub_dag {:.1}x",
            BASELINE_COMMIT_WALK_NS / commit_walk_ns,
            BASELINE_REACHABLE_NS / reachable_ns,
            BASELINE_CAUSAL_SUB_DAG_NS / causal_sub_dag_ns
        );
    }
    if let Some(path) = out_path {
        std::fs::write(&path, &rendered).expect("write report");
        println!("wrote {path}");
    }
    if let Some(floor) = min_speedup {
        let speedup = BASELINE_COMMIT_WALK_NS / commit_walk_ns;
        if speedup < floor {
            eprintln!(
                "FAIL: commit walk speedup {speedup:.1}x below the --min-speedup {floor}x floor \
                 ({commit_walk_ns:.0} ns/vertex vs baseline {BASELINE_COMMIT_WALK_NS:.0})"
            );
            std::process::exit(1);
        }
        println!("commit walk speedup {speedup:.1}x >= {floor}x floor: ok");
    }
    if let Some(floor) = min_sim_events {
        if sim_events_per_sec < floor {
            eprintln!(
                "FAIL: {sim_events_per_sec:.0} sim events/s below the --min-sim-events \
                 {floor:.0} floor"
            );
            std::process::exit(1);
        }
        println!("sim throughput {sim_events_per_sec:.0} events/s >= {floor:.0} floor: ok");
    }
}
