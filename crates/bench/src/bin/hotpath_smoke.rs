//! `hotpath_smoke` — a fast, JSON-emitting smoke benchmark of the
//! ordering hot path, run by `ci.sh` to seed the perf trajectory.
//!
//! Unlike the criterion microbenches (statistical, minutes), this runs
//! each probe a handful of times and reports the best observed wall
//! clock — coarse, but stable enough that `--min-speedup` can gate CI
//! against an order-of-magnitude hot-path regression. Probes:
//!
//! * `commit_walk_ns` — `Bullshark::process_vertex` fed every vertex of
//!   a full 50-validator, 100-round DAG, reported per vertex;
//! * `reachable_ns` — one anchor-to-anchor `Dag::reachable` query
//!   (depth 2, the commit rule's shape) on the same DAG;
//! * `causal_sub_dag_ns` — one full-history `Dag::causal_sub_dag` from
//!   a top vertex;
//! * `sim_events_per_sec` — a quick 4-validator scenario driven to
//!   round 60, simulator events over wall clock.
//!
//! The emitted JSON carries a `baseline` object alongside `current`:
//! the pre-indexing numbers (digest-keyed BFS walk) measured on this
//! machine class before the slot-index rework, so every later run can
//! report its speedup against the same anchor. `--min-speedup <x>`
//! exits non-zero when the commit-walk speedup drops below `x` — the
//! CI floor is set well under the observed ~10× so slower machine
//! classes pass while a reverted/regressed index (≈1×) fails.
//!
//! Usage: `hotpath_smoke [--out BENCH_hotpath.json] [--min-speedup X]`

use hh_consensus::{Bullshark, RoundRobinPolicy, SlotSchedule};
use hh_dag::testkit::DagBuilder;
use hh_dag::Dag;
use hh_scenario::Json;
use hh_sim::{run_sim_limited, ExperimentConfig, RunLimit, SystemKind};
use hh_types::{Committee, Round, ValidatorId};
use std::time::Instant;

/// Pre-indexing numbers (PR 2 tree: per-query BFS with digest
/// hashing), measured with this same binary before the slot-index
/// rework. Kept as the fixed anchor the acceptance gate compares
/// against.
const BASELINE_COMMIT_WALK_NS: f64 = 3355.0;
const BASELINE_REACHABLE_NS: f64 = 122230.0;
const BASELINE_CAUSAL_SUB_DAG_NS: f64 = 12608096.0;
const BASELINE_SIM_EVENTS_PER_SEC: f64 = 554203.0;

const COMMITTEE: usize = 50;
const ROUNDS: usize = 100;

fn full_dag(n: usize, rounds: usize) -> Dag {
    let mut b = DagBuilder::new(Committee::new_equal_stake(n));
    b.extend_full_rounds(rounds);
    b.into_dag()
}

/// Best-of-`iters` wall clock of `f`, in nanoseconds.
fn best_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out requires a path")),
            "--min-speedup" => {
                let value = args.next().expect("--min-speedup requires a number");
                min_speedup = Some(value.parse().expect("--min-speedup requires a number"));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\n\
                     usage: hotpath_smoke [--out FILE] [--min-speedup X]"
                );
                std::process::exit(2);
            }
        }
    }

    let committee = Committee::new_equal_stake(COMMITTEE);
    let dag = full_dag(COMMITTEE, ROUNDS);
    let vertex_count = dag.len() as f64;

    // The commit walk: every vertex of the DAG through a fresh engine.
    let commit_walk_total_ns = best_ns(5, || {
        let mut engine = Bullshark::new(
            committee.clone(),
            RoundRobinPolicy::new(SlotSchedule::round_robin(&committee)),
        );
        let mut commits = 0usize;
        for r in 0..ROUNDS as u64 {
            for v in dag.round_vertices(Round(r)) {
                commits += engine.process_vertex(v, &dag).len();
            }
        }
        assert!(commits >= ROUNDS / 2 - 2, "commit walk under-committed: {commits}");
    });
    let commit_walk_ns = commit_walk_total_ns / vertex_count;

    // Anchor-to-anchor reachability (depth 2, the orderAnchors shape).
    let from = dag.vertex_by_author(Round(10), ValidatorId(0)).unwrap().clone();
    let to = dag.vertex_by_author(Round(8), ValidatorId(1)).unwrap().clone();
    let reachable_ns = best_ns(7, || {
        for _ in 0..1000 {
            assert!(dag.reachable(&from, &to));
        }
    }) / 1000.0;

    // Full-history delivery from a top vertex.
    let top = dag.vertex_by_author(Round(ROUNDS as u64 - 1), ValidatorId(0)).unwrap().clone();
    let causal_sub_dag_ns = best_ns(5, || {
        assert!(dag.causal_history(&top).len() > COMMITTEE * (ROUNDS - 2));
    });

    // Whole-system events/sec on a quick deterministic scenario.
    let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    let t = Instant::now();
    let (handle, _end_us) = run_sim_limited(&config, RunLimit::Rounds(60));
    let sim_wall_s = t.elapsed().as_secs_f64();
    let sim_events = handle.sim.stats().events;
    let sim_events_per_sec = sim_events as f64 / sim_wall_s.max(1e-9);

    let probe = |walk: f64, reach: f64, sub: f64, eps: f64| {
        Json::object()
            .with("commit_walk_ns_per_vertex", Json::Float(walk))
            .with("reachable_ns", Json::Float(reach))
            .with("causal_sub_dag_ns", Json::Float(sub))
            .with("sim_events_per_sec", Json::Float(eps))
    };
    let report = Json::object()
        .with("bench", Json::Str("hotpath".into()))
        .with(
            "setup",
            Json::object()
                .with("committee", Json::Int(COMMITTEE as i64))
                .with("rounds", Json::Int(ROUNDS as i64)),
        )
        .with(
            "baseline",
            probe(
                BASELINE_COMMIT_WALK_NS,
                BASELINE_REACHABLE_NS,
                BASELINE_CAUSAL_SUB_DAG_NS,
                BASELINE_SIM_EVENTS_PER_SEC,
            ),
        )
        .with(
            "current",
            probe(commit_walk_ns, reachable_ns, causal_sub_dag_ns, sim_events_per_sec),
        );
    let rendered = report.render();

    println!(
        "hotpath: commit walk {:.0} ns/vertex | reachable {:.0} ns | causal_sub_dag {:.0} ns | \
         {:.0} sim events/s",
        commit_walk_ns, reachable_ns, causal_sub_dag_ns, sim_events_per_sec
    );
    if BASELINE_COMMIT_WALK_NS > 0.0 {
        println!(
            "         vs baseline: commit walk {:.1}x | reachable {:.1}x | causal_sub_dag {:.1}x",
            BASELINE_COMMIT_WALK_NS / commit_walk_ns,
            BASELINE_REACHABLE_NS / reachable_ns,
            BASELINE_CAUSAL_SUB_DAG_NS / causal_sub_dag_ns
        );
    }
    if let Some(path) = out_path {
        std::fs::write(&path, &rendered).expect("write report");
        println!("wrote {path}");
    }
    if let Some(floor) = min_speedup {
        let speedup = BASELINE_COMMIT_WALK_NS / commit_walk_ns;
        if speedup < floor {
            eprintln!(
                "FAIL: commit walk speedup {speedup:.1}x below the --min-speedup {floor}x floor \
                 ({commit_walk_ns:.0} ns/vertex vs baseline {BASELINE_COMMIT_WALK_NS:.0})"
            );
            std::process::exit(1);
        }
        println!("commit walk speedup {speedup:.1}x >= {floor}x floor: ok");
    }
}
