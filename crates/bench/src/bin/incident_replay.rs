//! **Incident replay** (§1 motivation): 10% of validators suddenly gain
//! +800 ms of one-way latency halfway through a low-load run. Thin
//! wrapper over `scenarios/incident_replay.toml`.
//!
//! Run: `cargo run -p hh-bench --release --bin incident_replay [--quick]`

fn main() {
    hh_bench::run_repo_scenario("incident_replay.toml");
}
