//! **Incident replay** (§1 motivation): on August 29th, 10% of Sui mainnet
//! validators suddenly became less responsive; under low load (~130 tx/s)
//! Bullshark's p95 latency rose from 3.0 s to 4.6 s and p50 from 1.9 s to
//! 2.2 s. HammerHead's pitch is that it removes the degraded validators
//! from the leader schedule and restores latency.
//!
//! This binary reproduces the scenario: a long low-load run in which 10% of
//! the committee gains +800 ms of one-way latency halfway through. It
//! reports p50/p95 for the healthy window and the degraded window, for both
//! systems. Expect Bullshark's percentiles to jump and HammerHead's to
//! barely move (shape, not absolute values).
//!
//! Run: `cargo run -p hh-bench --release --bin incident_replay [--quick]`

use hh_bench::Scale;
use hh_sim::{build_sim, ExperimentConfig, FaultSpec, LatencySummary, SystemKind};

fn main() {
    let scale = Scale::from_args();
    let committee = if scale.quick { 13 } else { 100 };
    let degraded = (committee / 10).max(1);
    let duration = scale.duration_secs.max(60);
    let onset_us = duration * 1_000_000 / 2;
    // Scale the paper's 130 tx/s (on 100 validators) to the committee.
    let load = (130 * committee as u64 / 100).max(20);

    println!(
        "# Incident replay — {degraded}/{committee} validators degraded (+800ms) at t={}s, load {} tx/s",
        onset_us / 1_000_000,
        load
    );
    println!("csv,system,window,count,p50_s,p95_s,mean_s");

    for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
        let mut config = ExperimentConfig::paper(system, committee, load);
        config.duration_secs = duration;
        config.warmup_secs = (duration / 10).max(5);
        config.seed = scale.seed;
        // Degrade the *first* validators: with stake-weighted round-robin
        // they hold early leader slots, like the high-stake mainnet
        // validators the paper describes.
        config.faults = FaultSpec {
            crashed: vec![],
            slowdowns: (0..degraded as u16).map(|v| (v, onset_us, 800_000)).collect(),
        };

        let mut handle = build_sim(&config);
        handle.sim.run_until(hh_net::SimTime::from_secs(duration));

        let warmup_us = config.warmup_secs * 1_000_000;
        let end_us = duration * 1_000_000;
        let mut healthy = Vec::new();
        let mut incident = Vec::new();
        for i in 0..handle.n_validators {
            for rec in &handle.validator(i).metrics().exec_records {
                if rec.executed_at > end_us || rec.submitted_at < warmup_us {
                    continue;
                }
                if rec.submitted_at < onset_us {
                    healthy.push(rec.executed_at - rec.submitted_at);
                } else {
                    incident.push(rec.executed_at - rec.submitted_at);
                }
            }
        }
        let h = LatencySummary::from_micros(healthy);
        let d = LatencySummary::from_micros(incident);
        println!(
            "  {:<10} healthy : p50 {:>6.3}s p95 {:>6.3}s mean {:>6.3}s ({} txs)",
            system.label(),
            h.p50,
            h.p95,
            h.mean,
            h.count
        );
        println!(
            "  {:<10} incident: p50 {:>6.3}s p95 {:>6.3}s mean {:>6.3}s ({} txs)  p95 change {:+.1}%",
            system.label(),
            d.p50,
            d.p95,
            d.mean,
            d.count,
            if h.p95 > 0.0 { (d.p95 / h.p95 - 1.0) * 100.0 } else { 0.0 }
        );
        println!("csv,{},healthy,{},{:.3},{:.3},{:.3}", system.label(), h.count, h.p50, h.p95, h.mean);
        println!("csv,{},incident,{},{:.3},{:.3},{:.3}", system.label(), d.count, d.p50, d.p95, d.mean);
    }
}
