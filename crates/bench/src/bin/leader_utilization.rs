//! **Leader Utilization** (Lemma 6): in crash-only executions, the number
//! of rounds in which no honest party commits an anchor is bounded by
//! O(T)·f for HammerHead — while for static round-robin it grows linearly
//! forever (every crashed leader slot is a permanently skipped round).
//!
//! The binary runs both systems with `f` crashed validators over increasing
//! durations and counts *skipped leader rounds*: even rounds at or below
//! the last committed anchor with no committed anchor of their own.
//! HammerHead's count must plateau (crashed validators leave the schedule
//! after the first epoch and never return while down); Bullshark's keeps
//! climbing.
//!
//! Run: `cargo run -p hh-bench --release --bin leader_utilization [--quick]`

use hh_bench::Scale;
use hh_sim::{build_sim, ExperimentConfig, FaultSpec, SystemKind};
use std::collections::HashSet;

fn skipped_leader_rounds(anchors: &[hh_types::VertexRef]) -> u64 {
    let Some(last) = anchors.last() else { return 0 };
    let committed: HashSet<u64> = anchors.iter().map(|a| a.round.0).collect();
    (0..=last.round.0)
        .step_by(2)
        .filter(|r| !committed.contains(r))
        .count() as u64
}

fn main() {
    let scale = Scale::from_args();
    let committee = if scale.quick { 10 } else { 40 };
    let faults = committee / 3;
    let durations: Vec<u64> = if scale.quick {
        vec![15, 30, 60]
    } else {
        vec![30, 60, 120, 240]
    };

    println!("# Leader utilization (Lemma 6) — {faults}/{committee} crashed, skipped leader rounds over time");
    println!("csv,system,duration_s,skipped_rounds,last_round,epochs");

    for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
        let mut plateau: Vec<u64> = Vec::new();
        for &duration in &durations {
            let mut config = ExperimentConfig::paper(system, committee, 200);
            config.duration_secs = duration;
            config.warmup_secs = 1;
            config.seed = scale.seed;
            config.faults = FaultSpec::crash_last(committee, faults);
            let mut handle = build_sim(&config);
            handle.sim.run_until(hh_net::SimTime::from_secs(duration));

            // Use the most advanced live validator's view.
            let anchors = (0..committee - faults)
                .map(|i| handle.validator(i).committed_anchors().to_vec())
                .max_by_key(|a| a.len())
                .unwrap_or_default();
            let skipped = skipped_leader_rounds(&anchors);
            let last = anchors.last().map(|a| a.round.0).unwrap_or(0);
            let epochs = (0..committee - faults)
                .filter_map(|i| handle.validator(i).hammerhead_policy())
                .map(hh_consensus_epoch)
                .max()
                .unwrap_or(0);
            plateau.push(skipped);
            println!(
                "  {:<10} {}s: skipped {:>4} of {:>5} leader rounds (epochs {})",
                system.label(),
                duration,
                skipped,
                last / 2 + 1,
                epochs
            );
            println!("csv,{},{},{},{},{}", system.label(), duration, skipped, last, epochs);
        }
        if system == SystemKind::Hammerhead && plateau.len() >= 2 {
            let growth = plateau.last().unwrap() - plateau.first().unwrap();
            println!(
                "  hammerhead skipped-round growth across durations: {growth} (bounded ⇒ Lemma 6 holds)"
            );
        }
    }
}

fn hh_consensus_epoch(p: &hammerhead::HammerheadPolicy) -> u64 {
    use hh_consensus::SchedulePolicy;
    p.epoch()
}
