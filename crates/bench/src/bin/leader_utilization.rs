//! **Leader Utilization** (Lemma 6): skipped leader rounds over
//! increasing durations with f crashed validators. Thin wrapper over
//! `scenarios/leader_utilization.toml`.
//!
//! Run: `cargo run -p hh-bench --release --bin leader_utilization [--quick]`

fn main() {
    hh_bench::run_repo_scenario("leader_utilization.toml");
}
