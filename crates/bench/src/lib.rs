//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one figure or analysis from the
//! paper (see `DESIGN.md` §3 for the full index). They share the sweep
//! runner and table/CSV output here.
//!
//! All binaries accept:
//!
//! * `--quick` — a scaled-down sweep (small committees, short runs) that
//!   finishes in seconds; useful for smoke-testing the harness;
//! * `--duration <secs>` — simulated seconds per run (default 60);
//! * `--seed <n>` — simulation seed.

use hh_sim::{ExperimentConfig, RunResult, SystemKind};

/// Scale parameters shared by the binaries.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Committee sizes to sweep (the paper uses 10/50/100).
    pub committees: Vec<usize>,
    /// Simulated seconds per run.
    pub duration_secs: u64,
    /// Warmup excluded from latency stats.
    pub warmup_secs: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Whether `--quick` was requested.
    pub quick: bool,
}

impl Scale {
    /// Parses common CLI flags (`--quick`, `--duration`, `--seed`).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let duration_secs = flag_value(&args, "--duration").unwrap_or(if quick { 15 } else { 60 });
        let seed = flag_value(&args, "--seed").unwrap_or(42);
        let committees = if quick { vec![10] } else { vec![10, 50, 100] };
        Scale {
            committees,
            duration_secs,
            warmup_secs: (duration_secs / 6).max(1),
            seed,
            quick,
        }
    }

    /// The paper's experiment config for this scale.
    pub fn config(&self, system: SystemKind, committee: usize, load: u64) -> ExperimentConfig {
        let mut config = ExperimentConfig::paper(system, committee, load);
        config.duration_secs = self.duration_secs;
        config.warmup_secs = self.warmup_secs;
        config.seed = self.seed;
        config
    }

    /// The offered-load sweep for a committee size (stops above the
    /// calibrated capacity so every point costs simulation time well
    /// spent).
    pub fn loads(&self, _committee: usize) -> Vec<u64> {
        if self.quick {
            vec![500, 2_000, 4_000]
        } else {
            vec![250, 500, 1_000, 2_000, 3_000, 3_500, 4_000, 4_500]
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// One output row of a sweep.
#[derive(Clone, Debug)]
pub struct Row {
    /// System label (`bullshark` / `hammerhead`).
    pub system: String,
    /// Committee size.
    pub committee: usize,
    /// Crashed validators.
    pub faults: usize,
    /// Offered load (tx/s).
    pub load: u64,
    /// The run's measurements.
    pub result: RunResult,
}

/// Prints the CSV header used by all sweep binaries.
pub fn print_csv_header() {
    println!(
        "csv,system,committee,faults,load_tps,throughput_tps,latency_s,latency_std_s,\
         latency_p50_s,latency_p95_s,commit_latency_s,commits,leader_timeouts,shed,epochs,agreement"
    );
}

/// Prints one row in both human-aligned and CSV form.
pub fn print_row(row: &Row) {
    let r = &row.result;
    println!(
        "  {:<10} n={:<3} f={:<2} load={:<5} -> {:>7.0} tx/s | latency {:>6.2}s ±{:>5.2} \
         (p50 {:>5.2} p95 {:>5.2}) | commits {:>5} timeouts {:>4} shed {:>6} epochs {:>3} {}",
        row.system,
        row.committee,
        row.faults,
        row.load,
        r.throughput_tps,
        r.latency.mean,
        r.latency.stddev,
        r.latency.p50,
        r.latency.p95,
        r.commits,
        r.leader_timeouts,
        r.shed,
        r.schedule_epochs,
        if r.agreement_ok { "✓" } else { "AGREEMENT-VIOLATION" },
    );
    println!(
        "csv,{},{},{},{},{:.1},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{}",
        row.system,
        row.committee,
        row.faults,
        row.load,
        r.throughput_tps,
        r.latency.mean,
        r.latency.stddev,
        r.latency.p50,
        r.latency.p95,
        r.commit_latency.mean,
        r.commits,
        r.leader_timeouts,
        r.shed,
        r.schedule_epochs,
        r.agreement_ok,
    );
}

/// Asserts the safety audit passed, loudly.
pub fn check_agreement(row: &Row) {
    assert!(
        row.result.agreement_ok,
        "TOTAL ORDER VIOLATION in {} n={} f={} load={}",
        row.system, row.committee, row.faults, row.load
    );
}
