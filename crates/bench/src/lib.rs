//! Thin wrappers over the scenario engine.
//!
//! Each binary in `src/bin/` regenerates one figure or analysis from the
//! paper by running its checked-in scenario file from `scenarios/` —
//! the declarative specs are the single source of truth, and
//! `hh-cli run scenarios/<name>.toml` produces byte-identical JSON.
//!
//! All binaries accept:
//!
//! * `--quick` — the scenario's `[quick]` scaled-down axes (small
//!   committees, short runs); useful for smoke-testing the harness;
//! * `--duration <secs>` — override the duration axis;
//! * `--seed <n>` — override the seed axis;
//! * `--jobs <n>` — run up to `n` runs in parallel (default: available
//!   parallelism); rows and JSON are byte-identical for any `n`;
//! * `--out <file>` — also write the JSON report.

#![deny(rustdoc::broken_intra_doc_links)]

use hh_scenario::{
    load_scenario, render_header, repo_scenarios_dir, report_json, run_plan_with, ExecOptions,
    PlanOptions, RunLimit,
};

/// Runs the named scenario file from the repository's `scenarios/`
/// directory with the standard wrapper flags, printing one row per run.
///
/// Exits the process with an error message if the scenario is missing,
/// invalid, or a CLI flag cannot be parsed.
pub fn run_repo_scenario(file: &str) {
    let args: Vec<String> = std::env::args().collect();
    let opts = PlanOptions {
        quick: args.iter().any(|a| a == "--quick"),
        duration_override: flag_value(&args, "--duration"),
        seed_override: flag_value(&args, "--seed"),
    };
    let jobs = match args.iter().position(|a| a == "--jobs") {
        None => ExecOptions::default_jobs(),
        Some(i) => {
            let value = args.get(i + 1).unwrap_or_else(|| die("--jobs requires a number"));
            match value.parse::<usize>() {
                Ok(0) => die("--jobs must be at least 1"),
                Ok(n) => n,
                Err(e) => die(&format!("--jobs: {e}")),
            }
        }
    };
    let out = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    let path = repo_scenarios_dir().join(file);
    let spec = load_scenario(&path).unwrap_or_else(|e| die(&e.to_string()));
    let plan = spec.plan(&opts).unwrap_or_else(|e| die(&e.to_string()));
    println!("# scenario {} — {} run(s)", plan.name, plan.runs.len());
    let report = run_plan_with(
        &plan,
        RunLimit::Duration,
        &ExecOptions { jobs, verbose: true, profile: false },
    );
    println!("{}", render_header(&report));
    if let Some(out) = out {
        let json = report_json(&report).render();
        std::fs::write(&out, json).unwrap_or_else(|e| die(&format!("{out}: {e}")));
        println!("wrote {out}");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}
