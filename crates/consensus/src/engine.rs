//! The Bullshark commit engine (Algorithm 2's `TryCommitting`,
//! `orderAnchors`, `orderHistory`), generic over the schedule policy.

use crate::policy::{ScheduleDecision, SchedulePolicy};
use hh_crypto::{Digest, Sha256};
use hh_dag::{Dag, SubDagScratch};
use hh_types::{Committee, DigestSet, Round, ValidatorId, Vertex, VertexRef};
use std::sync::Arc;

/// One committed anchor and the sub-DAG it orders.
#[derive(Clone, Debug)]
pub struct CommittedSubDag {
    /// The committed anchor (leader vertex).
    pub anchor: VertexRef,
    /// Position in the total order of commits (0-based).
    pub commit_index: u64,
    /// The schedule epoch the anchor was committed under.
    pub schedule_epoch: u64,
    /// All newly ordered vertices, in delivery order (ascending
    /// `(round, author)`), ending with the anchor's round peers.
    pub vertices: Vec<Arc<Vertex>>,
}

impl CommittedSubDag {
    /// Total transactions carried by this sub-DAG.
    pub fn transaction_count(&self) -> usize {
        self.vertices.iter().map(|v| v.block().len()).sum()
    }
}

/// The Bullshark engine for one validator.
///
/// Feed every vertex the broadcast layer delivers to
/// [`Bullshark::process_vertex`]; collect [`CommittedSubDag`]s. The engine
/// is deterministic: identical DAG content yields identical commit
/// sequences regardless of delivery interleaving (asserted via
/// [`Bullshark::chain_hash`]).
pub struct Bullshark<P: SchedulePolicy> {
    committee: Committee,
    policy: P,
    /// Digests of ordered (delivered) vertices (pass-through hashed).
    ordered: DigestSet,
    /// Round of the last *ordered* anchor (the paper's `lastOrderedRound`;
    /// see DESIGN.md §4 on why it only advances when ordering happens).
    last_ordered_anchor_round: Option<Round>,
    commit_index: u64,
    /// Running hash over the commit sequence (anchor digests in order).
    chain_hash: Digest,
    /// Full anchor sequence, kept for agreement assertions and monitoring.
    committed_anchors: Vec<VertexRef>,
    /// Reusable state for the indexed sub-DAG walk (no per-commit
    /// allocations beyond the delivered vertex list).
    scratch: SubDagScratch,
    /// Reusable `orderAnchors` stack.
    anchor_stack: Vec<Arc<Vertex>>,
}

impl<P: SchedulePolicy> Bullshark<P> {
    /// Creates an engine with the given schedule policy.
    pub fn new(committee: Committee, policy: P) -> Self {
        Bullshark {
            committee,
            policy,
            ordered: DigestSet::default(),
            last_ordered_anchor_round: None,
            commit_index: 0,
            chain_hash: Digest::ZERO,
            committed_anchors: Vec::new(),
            scratch: SubDagScratch::new(),
            anchor_stack: Vec::new(),
        }
    }

    /// The schedule policy (e.g. to inspect reputation state).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable policy access (harness wiring).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Number of commits so far.
    pub fn commit_count(&self) -> u64 {
        self.commit_index
    }

    /// Anchor references in commit order.
    pub fn committed_anchors(&self) -> &[VertexRef] {
        &self.committed_anchors
    }

    /// Running hash over the commit sequence: equal hashes ⇒ equal
    /// sequences (collision-resistance of SHA-256). The cheap way to assert
    /// Total Order across validators.
    pub fn chain_hash(&self) -> Digest {
        self.chain_hash
    }

    /// Whether `digest` has been ordered.
    pub fn is_ordered(&self, digest: &Digest) -> bool {
        self.ordered.contains(digest)
    }

    /// Round of the last ordered anchor, if any.
    pub fn last_ordered_anchor_round(&self) -> Option<Round> {
        self.last_ordered_anchor_round
    }

    /// The leader of `round` under the currently active schedule — exposed
    /// for the proposer's leader-await logic.
    pub fn current_leader(&self, round: Round) -> ValidatorId {
        self.policy.leader_at(round)
    }

    /// Algorithm 2's `TryCommitting(v)`, extended with the schedule-switch
    /// re-walk. Call with every delivered vertex; returns the sub-DAGs this
    /// vertex's arrival committed (usually empty).
    pub fn process_vertex(&mut self, v: &Arc<Vertex>, dag: &Dag) -> Vec<CommittedSubDag> {
        let mut outputs = Vec::new();
        // Lines 9-10: only even rounds ≥ 2 can reveal quorum votes.
        if !v.round().is_even() || v.round().0 == 0 {
            return outputs;
        }

        // The schedule may switch mid-walk; re-interpret and retry. Each
        // iteration either returns or switches the schedule, and a schedule
        // can switch at most once per T rounds, so this terminates.
        loop {
            let anchor_round = v.round() - 2;
            let leader = self.policy.leader_at(anchor_round);
            let Some(anchor) = dag.vertex_by_author(anchor_round, leader).cloned() else {
                return outputs; // line 7: no anchor vertex
            };
            if self.ordered.contains(&anchor.digest()) {
                return outputs; // already committed via an earlier trigger
            }

            // Lines 12-13: validity-threshold stake of votes for the
            // anchor. We use the view-based formulation ("the anchor has
            // f+1 votes in the DAG"), which Algorithm 2's per-trigger
            // check (votes within `v.edges`) under-approximates: any
            // vertex triggering the check proves those voters exist in
            // every later quorum's intersection, and the DAG's vote index
            // makes the check O(1). Same safety argument, earlier commits.
            if dag.vote_stake(&anchor.digest()) < self.committee.validity_threshold() {
                return outputs;
            }

            // Lines 15-24 (`orderAnchors`): walk back to the last ordered
            // anchor, keeping earlier anchors reachable from later ones.
            // Each `reachable` is a bitset probe against the DAG's slot
            // index; the stack buffer is reused across calls.
            self.anchor_stack.clear();
            self.anchor_stack.push(anchor.clone());
            let mut cur = anchor;
            let mut r = anchor_round;
            while r.0 >= 2 {
                r = r - 2;
                if self.last_ordered_anchor_round.is_some_and(|floor| r <= floor) {
                    break;
                }
                let prev_leader = self.policy.leader_at(r);
                if let Some(prev) = dag.vertex_by_author(r, prev_leader) {
                    if !self.ordered.contains(&prev.digest()) && dag.reachable(&cur, prev) {
                        self.anchor_stack.push(prev.clone());
                        cur = prev.clone();
                    }
                }
            }

            // Lines 27-37 (`orderHistory`): oldest anchor first.
            let mut switched = false;
            while let Some(a) = self.anchor_stack.pop() {
                match self.policy.before_order_anchor(&a, dag, &self.ordered) {
                    ScheduleDecision::Switched => {
                        // Lines 30-33: the rest of the stack was derived
                        // under the old schedule — discard and re-walk.
                        switched = true;
                        break;
                    }
                    ScheduleDecision::Continue => {
                        outputs.push(self.order_sub_dag(&a, dag));
                    }
                }
            }
            if !switched {
                return outputs;
            }
        }
    }

    /// Orders the anchor's not-yet-ordered causal history deterministically
    /// (lines 34-37) and advances the commit bookkeeping.
    fn order_sub_dag(&mut self, anchor: &Arc<Vertex>, dag: &Dag) -> CommittedSubDag {
        // "in some deterministic order": the indexed walk already emits
        // ascending (round, author).
        let ordered = &self.ordered;
        let vertices = dag.causal_sub_dag_with(anchor, |d| ordered.contains(d), &mut self.scratch);
        for v in &vertices {
            self.ordered.insert(v.digest());
            self.policy.on_vertex_ordered(v, dag);
        }
        self.last_ordered_anchor_round = Some(anchor.round());
        let commit_index = self.commit_index;
        self.commit_index += 1;

        // Extend the commit chain hash with this anchor.
        let mut h = Sha256::new();
        h.update(self.chain_hash.as_bytes());
        h.update(anchor.digest().as_bytes());
        self.chain_hash = h.finalize();
        self.committed_anchors.push(anchor.reference());

        CommittedSubDag {
            anchor: anchor.reference(),
            commit_index,
            schedule_epoch: self.policy.epoch(),
            vertices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{RoundRobinPolicy, SlotSchedule};
    use hh_dag::testkit::DagBuilder;
    use hh_types::Committee;
    use std::collections::HashSet;

    fn committee4() -> Committee {
        Committee::new_equal_stake(4)
    }

    fn engine(c: &Committee) -> Bullshark<RoundRobinPolicy> {
        Bullshark::new(c.clone(), RoundRobinPolicy::new(SlotSchedule::round_robin(c)))
    }

    /// Feeds all vertices of rounds `0..=max` in (round, author) order.
    fn feed_all(
        engine: &mut Bullshark<RoundRobinPolicy>,
        dag: &Dag,
        max: u64,
    ) -> Vec<CommittedSubDag> {
        let mut out = Vec::new();
        for r in 0..=max {
            let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
            vs.sort_by_key(|v| v.author());
            for v in vs {
                out.extend(engine.process_vertex(&v, dag));
            }
        }
        out
    }

    #[test]
    fn anchors_commit_in_round_order() {
        let c = committee4();
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(9); // rounds 0..=8
        let dag = b.into_dag();
        let mut e = engine(&c);
        let commits = feed_all(&mut e, &dag, 8);
        let rounds: Vec<u64> = commits.iter().map(|cmt| cmt.anchor.round.0).collect();
        assert_eq!(rounds, vec![0, 2, 4, 6]);
        // Leaders rotate.
        let leaders: Vec<ValidatorId> = commits.iter().map(|cmt| cmt.anchor.author).collect();
        assert_eq!(leaders, vec![ValidatorId(0), ValidatorId(1), ValidatorId(2), ValidatorId(3)]);
        assert_eq!(e.commit_count(), 4);
    }

    #[test]
    fn ordering_is_exhaustive_and_disjoint() {
        let c = committee4();
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(9);
        let dag = b.into_dag();
        let mut e = engine(&c);
        let commits = feed_all(&mut e, &dag, 8);
        let mut seen = HashSet::new();
        for cmt in &commits {
            for v in &cmt.vertices {
                assert!(seen.insert(v.digest()), "vertex delivered twice");
            }
            // Delivery order is ascending (round, author).
            let keys: Vec<_> = cmt.vertices.iter().map(|v| (v.round(), v.author())).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted);
        }
        // Everything up to round 5 is ordered once round-6 anchor commits
        // (the last commit orders history through its round).
        let last_round = commits.last().unwrap().anchor.round;
        for r in 0..last_round.0 {
            for v in dag.round_vertices(Round(r)) {
                assert!(seen.contains(&v.digest()), "round {r} vertex unordered");
            }
        }
    }

    #[test]
    fn crashed_leader_round_is_skipped_then_bridged() {
        let c = committee4();
        let mut b = DagBuilder::new(c.clone());
        // Rounds 0,1 full. Round 2's leader is v1 — leave v1 out.
        b.extend_full_rounds(2);
        b.extend_round_without(&[ValidatorId(1)]);
        b.extend_full_rounds(6); // rounds 3..=8
        let dag = b.into_dag();
        let mut e = engine(&c);
        let commits = feed_all(&mut e, &dag, 8);
        let rounds: Vec<u64> = commits.iter().map(|cmt| cmt.anchor.round.0).collect();
        // Round 2 has no anchor vertex: skipped entirely; its vertices are
        // swept up by round 4's anchor.
        assert_eq!(rounds, vec![0, 4, 6]);
        let r4 = commits.iter().find(|cmt| cmt.anchor.round.0 == 4).unwrap();
        assert!(
            r4.vertices.iter().any(|v| v.round().0 == 2),
            "round-2 vertices ordered transitively"
        );
    }

    #[test]
    fn sub_validity_votes_defer_commit_to_next_anchor() {
        let c = committee4();
        // Validity threshold for n=4 is 2. Round-2 leader is v1 (round-robin
        // slot 1). Make only ONE round-3 vertex vote for (link to) it.
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(3); // rounds 0,1,2
        let anchor_author = ValidatorId(1);
        b.extend_round_custom(&c.ids().collect::<Vec<_>>(), move |voter| {
            if voter == ValidatorId(0) {
                None // v0 votes for the anchor
            } else {
                Some(vec![anchor_author]) // others exclude it
            }
        }); // round 3
        b.extend_full_rounds(3); // rounds 4,5,6
        let dag = b.into_dag();
        let mut e = engine(&c);
        let commits = feed_all(&mut e, &dag, 6);
        let rounds: Vec<u64> = commits.iter().map(|cmt| cmt.anchor.round.0).collect();
        // Round 2's anchor lacks direct validity votes; round 4's anchor
        // reaches it through v0's round-3 vertex, so it commits then.
        assert_eq!(rounds, vec![0, 2, 4]);
        let positions: Vec<(u64, u64)> =
            commits.iter().map(|cmt| (cmt.commit_index, cmt.anchor.round.0)).collect();
        assert_eq!(positions, vec![(0, 0), (1, 2), (2, 4)]);
    }

    #[test]
    fn agreement_under_different_feeding_orders() {
        let c = committee4();
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(11);
        let dag = b.into_dag();

        // Engine A: fed in (round, author) order.
        let mut ea = engine(&c);
        feed_all(&mut ea, &dag, 10);

        // Engine B: fed in (round, reverse author) order — a different but
        // still causally-valid delivery schedule.
        let mut eb = engine(&c);
        for r in 0..=10u64 {
            let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
            vs.sort_by_key(|v| std::cmp::Reverse(v.author()));
            for v in vs {
                eb.process_vertex(&v, &dag);
            }
        }
        assert_eq!(ea.chain_hash(), eb.chain_hash());
        assert_eq!(ea.committed_anchors(), eb.committed_anchors());
    }

    #[test]
    fn duplicate_trigger_vertices_commit_once() {
        let c = committee4();
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(5);
        let dag = b.into_dag();
        let mut e = engine(&c);
        feed_all(&mut e, &dag, 4);
        let before = e.commit_count();
        // Re-feeding the same round-4 vertices must not re-commit.
        let vs: Vec<_> = dag.round_vertices(Round(4)).cloned().collect();
        for v in vs {
            assert!(e.process_vertex(&v, &dag).is_empty());
        }
        assert_eq!(e.commit_count(), before);
    }

    #[test]
    fn odd_and_genesis_vertices_never_trigger() {
        let c = committee4();
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(2);
        let dag = b.into_dag();
        let mut e = engine(&c);
        for r in [0u64, 1] {
            for v in dag.round_vertices(Round(r)).cloned().collect::<Vec<_>>() {
                assert!(e.process_vertex(&v, &dag).is_empty());
            }
        }
    }

    #[test]
    fn commit_chain_hash_tracks_sequence() {
        let c = committee4();
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(7);
        let dag = b.into_dag();
        let mut e1 = engine(&c);
        let mut e2 = engine(&c);
        feed_all(&mut e1, &dag, 6);
        feed_all(&mut e2, &dag, 4); // shorter prefix
        assert_ne!(e1.chain_hash(), e2.chain_hash());
        // Prefix property: e2's anchors are a prefix of e1's.
        assert_eq!(&e1.committed_anchors()[..e2.committed_anchors().len()], e2.committed_anchors());
    }
}
