//! Bullshark consensus over the DAG, with a pluggable leader schedule.
//!
//! This crate implements the commit rule and recursive anchor ordering of
//! eventually-synchronous Bullshark exactly as the paper's Algorithm 2
//! frames it, but with the leader schedule abstracted behind
//! [`SchedulePolicy`]:
//!
//! * anchors live on even rounds; a round-`r` vertex `v` (even `r ≥ 2`)
//!   *directly commits* the round-`r-2` anchor when the voting edges from
//!   `v.edges` (round `r-1` vertices) that reach the anchor carry at least
//!   validity-threshold stake (`f+1`);
//! * on a direct commit the engine walks back through even rounds down to
//!   the last ordered anchor, pushing every earlier anchor reachable from
//!   the later one (`orderAnchors`), then pops them oldest-first and
//!   delivers each anchor's not-yet-ordered causal sub-DAG in a
//!   deterministic `(round, author)` order (`orderHistory`);
//! * **the HammerHead hook**: before an anchor is ordered, the policy may
//!   switch schedules ([`ScheduleDecision::Switched`]). The engine then
//!   discards the remaining (stale) anchor stack and re-runs the walk under
//!   the new schedule — the retroactive re-interpretation of the DAG that
//!   §3.1 of the paper describes. [`RoundRobinPolicy`] never switches,
//!   which makes the engine vanilla Bullshark (the paper's baseline).
//!
//! Since every honest validator feeds the engine the same DAG (reliable
//! broadcast) and the policy is a deterministic function of the committed
//! prefix, all honest validators produce identical commit sequences; the
//! engine maintains a running [commit chain hash](Bullshark::chain_hash)
//! so tests can assert agreement in O(1).
//!
//! # Example
//!
//! ```
//! use hh_consensus::{Bullshark, RoundRobinPolicy, SlotSchedule};
//! use hh_dag::testkit::DagBuilder;
//! use hh_types::{Committee, Round};
//!
//! let committee = Committee::new_equal_stake(4);
//! let mut builder = DagBuilder::new(committee.clone());
//! builder.extend_full_rounds(5); // rounds 0..=4
//! let dag = builder.into_dag();
//!
//! let policy = RoundRobinPolicy::new(SlotSchedule::round_robin(&committee));
//! let mut engine = Bullshark::new(committee, policy);
//!
//! let mut commits = Vec::new();
//! for r in 0..=4u64 {
//!     let vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
//!     for v in vs {
//!         commits.extend(engine.process_vertex(&v, &dag));
//!     }
//! }
//! // Rounds 0 and 2 committed (round 4's anchor needs a round-6 vertex).
//! assert_eq!(commits.len(), 2);
//! assert_eq!(commits[0].anchor.round, Round(0));
//! assert_eq!(commits[1].anchor.round, Round(2));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod engine;
mod policy;

pub use engine::{Bullshark, CommittedSubDag};
pub use policy::{
    RoundRobinPolicy, ScheduleDecision, SchedulePolicy, SlotSchedule, StaticLeaderPolicy,
};
