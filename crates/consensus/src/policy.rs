//! Leader-schedule policies.
//!
//! [`SchedulePolicy`] is the seam between the generic Bullshark engine and
//! the scheduling mechanism. The baseline [`RoundRobinPolicy`] reproduces
//! vanilla Bullshark (static stake-weighted rotation); the `hammerhead`
//! crate provides the reputation-based policy that actually switches
//! schedules; [`StaticLeaderPolicy`] is the PBFT-style fixed leader the
//! paper's §7 discusses as an extreme.

use hh_dag::Dag;
use hh_types::{Committee, DigestSet, Round, ValidatorId, Vertex};

/// What the policy decided when shown an anchor about to be ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleDecision {
    /// Keep the active schedule; order the anchor.
    Continue,
    /// A new schedule was installed starting at this anchor's round. The
    /// engine must discard the pending anchor stack (it was derived under
    /// the old schedule) and re-interpret the DAG.
    Switched,
}

/// Maps rounds to leaders and decides schedule changes.
///
/// Implementations must be **deterministic functions of the committed
/// prefix**: every honest validator feeds the policy the same ordered
/// sequence of anchors and vertices, so every honest validator must derive
/// the same schedule (the paper's Proposition 1 relies on exactly this).
pub trait SchedulePolicy {
    /// The leader of (even) `round` under the active schedule.
    fn leader_at(&self, round: Round) -> ValidatorId;

    /// First round covered by the active schedule
    /// (`activeSchedule.initialRound` in Algorithm 2).
    fn initial_round(&self) -> Round;

    /// Monotone schedule counter: 0 for S0, 1 for S1, …
    fn epoch(&self) -> u64;

    /// Called with each committed anchor, oldest-first, *before* its
    /// sub-DAG is ordered. `ordered` is the set of already-ordered vertex
    /// digests (the anchor's unordered causal history is exactly the part
    /// of the DAG reachable from it and not in `ordered`).
    fn before_order_anchor(
        &mut self,
        anchor: &Vertex,
        dag: &Dag,
        ordered: &DigestSet,
    ) -> ScheduleDecision;

    /// Called for every vertex as it is ordered (in delivery order), after
    /// the decision to order its anchor. Reputation scoring lives here.
    fn on_vertex_ordered(&mut self, vertex: &Vertex, dag: &Dag);
}

/// A leader slot table: `leader(round) = slots[(round / 2) % len]`.
///
/// Slots repeat validators proportionally to stake, so election frequency
/// matches voting power (§3: each validator `u` leads
/// `TR × stake(u) / Σ stake` rounds). An optional seeded permutation
/// unbiases the initial order, as the paper prescribes for S0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotSchedule {
    slots: Vec<ValidatorId>,
}

impl SlotSchedule {
    /// Stake-weighted slots in validator-id order (deterministic).
    pub fn round_robin(committee: &Committee) -> Self {
        let mut slots = Vec::new();
        for v in committee.iter() {
            for _ in 0..v.stake().0 {
                slots.push(v.id());
            }
        }
        SlotSchedule { slots }
    }

    /// Stake-weighted slots permuted by a deterministic seed (the paper's
    /// "randomly permute" for the initial schedule; all validators must use
    /// the same seed, e.g. derived from the epoch randomness).
    pub fn permuted(committee: &Committee, seed: u64) -> Self {
        let mut schedule = Self::round_robin(committee);
        // Fisher–Yates driven by a splitmix64 stream: no dependency on a
        // particular RNG crate's stability guarantees.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let n = schedule.slots.len();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            schedule.slots.swap(i, j);
        }
        schedule
    }

    /// Builds a schedule from explicit slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    pub fn from_slots(slots: Vec<ValidatorId>) -> Self {
        assert!(!slots.is_empty(), "schedule needs at least one slot");
        SlotSchedule { slots }
    }

    /// The slot table.
    pub fn slots(&self) -> &[ValidatorId] {
        &self.slots
    }

    /// Mutable access for swap-table surgery (used by the reputation
    /// scheduler when replacing `B` slots with `G` validators).
    pub fn slots_mut(&mut self) -> &mut Vec<ValidatorId> {
        &mut self.slots
    }

    /// The leader of (even) `round`.
    pub fn leader_at(&self, round: Round) -> ValidatorId {
        debug_assert!(round.is_even(), "leaders live on even rounds");
        self.slots[((round.0 / 2) as usize) % self.slots.len()]
    }

    /// How many slots each validator owns (for tests and monitoring).
    pub fn slot_count(&self, v: ValidatorId) -> usize {
        self.slots.iter().filter(|s| **s == v).count()
    }
}

/// Vanilla Bullshark: a fixed stake-weighted rotation, never switching.
#[derive(Clone, Debug)]
pub struct RoundRobinPolicy {
    schedule: SlotSchedule,
}

impl RoundRobinPolicy {
    /// Wraps a slot schedule as a static policy.
    pub fn new(schedule: SlotSchedule) -> Self {
        RoundRobinPolicy { schedule }
    }

    /// The underlying slot table.
    pub fn schedule(&self) -> &SlotSchedule {
        &self.schedule
    }
}

impl SchedulePolicy for RoundRobinPolicy {
    fn leader_at(&self, round: Round) -> ValidatorId {
        self.schedule.leader_at(round)
    }

    fn initial_round(&self) -> Round {
        Round(0)
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn before_order_anchor(
        &mut self,
        _anchor: &Vertex,
        _dag: &Dag,
        _ordered: &DigestSet,
    ) -> ScheduleDecision {
        ScheduleDecision::Continue
    }

    fn on_vertex_ordered(&mut self, _vertex: &Vertex, _dag: &Dag) {}
}

/// PBFT-style fixed leader (§7's "classic static leader" extreme). Used by
/// the scoring-rule ablation; a single slow leader degrades every round.
#[derive(Clone, Debug)]
pub struct StaticLeaderPolicy {
    leader: ValidatorId,
}

impl StaticLeaderPolicy {
    /// Fixes `leader` for every round.
    pub fn new(leader: ValidatorId) -> Self {
        StaticLeaderPolicy { leader }
    }
}

impl SchedulePolicy for StaticLeaderPolicy {
    fn leader_at(&self, _round: Round) -> ValidatorId {
        self.leader
    }

    fn initial_round(&self) -> Round {
        Round(0)
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn before_order_anchor(
        &mut self,
        _anchor: &Vertex,
        _dag: &Dag,
        _ordered: &DigestSet,
    ) -> ScheduleDecision {
        ScheduleDecision::Continue
    }

    fn on_vertex_ordered(&mut self, _vertex: &Vertex, _dag: &Dag) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_types::{CommitteeBuilder, Stake};

    #[test]
    fn round_robin_slots_follow_stake() {
        let committee =
            CommitteeBuilder::new().add(Stake(3)).add(Stake(1)).add(Stake(2)).build().unwrap();
        let s = SlotSchedule::round_robin(&committee);
        assert_eq!(s.slots().len(), 6);
        assert_eq!(s.slot_count(ValidatorId(0)), 3);
        assert_eq!(s.slot_count(ValidatorId(1)), 1);
        assert_eq!(s.slot_count(ValidatorId(2)), 2);
    }

    #[test]
    fn leader_cycles_over_even_rounds() {
        let committee = Committee::new_equal_stake(3);
        let s = SlotSchedule::round_robin(&committee);
        assert_eq!(s.leader_at(Round(0)), ValidatorId(0));
        assert_eq!(s.leader_at(Round(2)), ValidatorId(1));
        assert_eq!(s.leader_at(Round(4)), ValidatorId(2));
        assert_eq!(s.leader_at(Round(6)), ValidatorId(0));
    }

    #[test]
    fn permutation_is_deterministic_and_stake_preserving() {
        let committee = CommitteeBuilder::new()
            .add(Stake(2))
            .add(Stake(2))
            .add(Stake(2))
            .add(Stake(2))
            .build()
            .unwrap();
        let a = SlotSchedule::permuted(&committee, 7);
        let b = SlotSchedule::permuted(&committee, 7);
        assert_eq!(a, b, "same seed, same permutation");
        for i in 0..4 {
            assert_eq!(a.slot_count(ValidatorId(i)), 2, "stake preserved");
        }
        // Different seeds almost surely differ on 8 slots; check a few.
        let c = SlotSchedule::permuted(&committee, 8);
        let d = SlotSchedule::permuted(&committee, 9);
        assert!(a != c || a != d, "permutation actually permutes");
    }

    #[test]
    fn static_leader_never_rotates() {
        let p = StaticLeaderPolicy::new(ValidatorId(2));
        for r in [0u64, 2, 4, 100] {
            assert_eq!(p.leader_at(Round(r)), ValidatorId(2));
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_slots_panics() {
        SlotSchedule::from_slots(vec![]);
    }
}
