//! Configuration for the HammerHead policy and the validator node.

use hh_rbc::BroadcastMode;
use hh_types::{Committee, Stake, ValidatorId};
use std::fmt;

/// A [`HammerheadConfig`] that cannot run (see
/// [`HammerheadConfig::validate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `period_rounds` below 2: anchors live on even rounds, so an epoch
    /// shorter than 2 rounds can never contain a committed anchor to
    /// trigger the switch.
    PeriodTooShort {
        /// The rejected period.
        period_rounds: u64,
    },
    /// `max_excluded_stake` above the committee's `f`: excluding more
    /// than `f` stake could hand every leader slot of an epoch to fewer
    /// than `2f+1` validators and break the liveness argument of Lemma 6.
    ExcludedStakeAboveF {
        /// The rejected budget.
        requested: Stake,
        /// The committee's maximum tolerable faulty stake.
        max_faulty: Stake,
    },
    /// `VoteEma` smoothing weight outside `1..=100` percent.
    InvalidEmaAlpha {
        /// The rejected weight.
        alpha_percent: u8,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::PeriodTooShort { period_rounds } => write!(
                f,
                "period_rounds must be at least 2 (anchors live on even rounds), got {period_rounds}"
            ),
            ConfigError::ExcludedStakeAboveF { requested, max_faulty } => write!(
                f,
                "max_excluded_stake {} exceeds the committee's f = {}",
                requested.0, max_faulty.0
            ),
            ConfigError::InvalidEmaAlpha { alpha_percent } => write!(
                f,
                "vote-ema alpha_percent must be in 1..=100, got {alpha_percent}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How reputation points are assigned (ablation A3 in `DESIGN.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoringRule {
    /// The paper's rule: +1 to a validator each time one of its vertices
    /// votes for (links to) the previous round's leader. Discourages vote
    /// withholding (§7).
    VoteBased,
    /// Shoal-style (§7): reward leaders whose anchors commit; voters earn
    /// nothing. Skipped leaders simply accrue nothing.
    LeaderOutcome,
    /// The "more adaptive reputation scoring" the paper's §7 leaves as an
    /// open question, implemented here as an extension: vote-based scores
    /// smoothed across epochs with an exponential moving average,
    /// `ema' = (alpha·score + (100−alpha)·ema) / 100`. Long memory
    /// (small `alpha_percent`) tolerates brief hiccups but readmits
    /// recovered validators more slowly; `alpha_percent = 100` degenerates
    /// to [`ScoringRule::VoteBased`].
    VoteEma {
        /// Weight (percent) of the just-finished epoch's score.
        alpha_percent: u8,
    },
}

/// Parameters of the HammerHead scheduling mechanism.
#[derive(Clone, Debug)]
pub struct HammerheadConfig {
    /// Schedule-epoch length `T` in rounds (Algorithm 2 line 30). Anchors
    /// arrive every 2 rounds, so the paper's benchmark setting of
    /// "recompute every 10 commits" is ≈ 20 rounds; Sui mainnet's
    /// 300 commits ≈ 600 rounds (footnote 15).
    pub period_rounds: u64,
    /// Maximum total stake removable from the schedule (set `B`). The
    /// paper's benchmarks exclude the bottom 33% (= `f`); Sui mainnet uses
    /// a more conservative 20%. `None` means "use the committee's `f`".
    pub max_excluded_stake: Option<Stake>,
    /// The scoring rule in force.
    pub scoring_rule: ScoringRule,
    /// Seed for the unbiased permutation of the initial schedule S0.
    pub schedule_seed: u64,
    /// Recompute each epoch's B→G slot swap against the *base* schedule
    /// S0 instead of the previously patched schedule — the production
    /// implementation's leader-swap-table semantics. Under the default
    /// incremental rule an excluded validator only regains slots by
    /// ranking into `G`, so a recovered validator can stay locked out of
    /// the schedule forever once scores saturate into ties; swapping from
    /// the base schedule re-includes every validator that leaves the
    /// bottom set automatically, which is what makes crash-recovery
    /// re-inclusion observable. Off by default to preserve the historical
    /// schedule trajectories of the checked-in figure scenarios.
    pub swap_from_base: bool,
}

impl HammerheadConfig {
    /// Checks the parameters against the committee they will schedule.
    ///
    /// Rejects periods too short to ever contain a committed anchor,
    /// exclusion budgets above the committee's `f`, and out-of-range EMA
    /// weights. The scenario engine calls this before building a run;
    /// programmatic users should too.
    pub fn validate(&self, committee: &Committee) -> Result<(), ConfigError> {
        if self.period_rounds < 2 {
            return Err(ConfigError::PeriodTooShort { period_rounds: self.period_rounds });
        }
        if let Some(requested) = self.max_excluded_stake {
            let max_faulty = committee.max_faulty_stake();
            if requested > max_faulty {
                return Err(ConfigError::ExcludedStakeAboveF { requested, max_faulty });
            }
        }
        if let ScoringRule::VoteEma { alpha_percent } = self.scoring_rule {
            if alpha_percent == 0 || alpha_percent > 100 {
                return Err(ConfigError::InvalidEmaAlpha { alpha_percent });
            }
        }
        Ok(())
    }
}

impl Default for HammerheadConfig {
    fn default() -> Self {
        HammerheadConfig {
            // The paper's benchmark setting: 10 commits ≈ 20 rounds.
            period_rounds: 20,
            max_excluded_stake: None,
            scoring_rule: ScoringRule::VoteBased,
            schedule_seed: 0,
            swap_from_base: false,
        }
    }
}

/// Which leader schedule the validator runs.
#[derive(Clone, Debug)]
pub enum ScheduleConfig {
    /// Vanilla Bullshark: static stake-weighted round-robin (the baseline).
    RoundRobin,
    /// HammerHead reputation scheduling.
    Hammerhead(HammerheadConfig),
    /// PBFT-style fixed leader (§7 extreme; ablations only).
    StaticLeader(ValidatorId),
}

/// Full configuration of a validator node.
///
/// Durations are in microseconds of simulation time; defaults are the
/// calibration used by the experiment harness (see `DESIGN.md` §2 for what
/// each models).
#[derive(Clone, Debug)]
pub struct ValidatorConfig {
    /// Leader schedule (HammerHead vs baseline).
    pub schedule: ScheduleConfig,
    /// Vertex dissemination mode.
    pub broadcast_mode: BroadcastMode,
    /// Minimum spacing between a validator's own proposals (µs). Paces the
    /// DAG; Narwhal's `min_header_delay` analogue.
    pub min_round_delay_us: u64,
    /// How long a proposer leaving an even round waits for that round's
    /// anchor vertex before giving up (µs). This is what makes crashed
    /// leaders expensive for the baseline.
    pub leader_timeout_us: u64,
    /// Max transactions per vertex.
    pub max_block_txs: usize,
    /// Max modeled wire bytes per vertex block (transaction headers plus
    /// payloads). The proposer stops batching once the next transaction
    /// would cross this bound, except that a block always carries at
    /// least one transaction (an oversized single transaction must not
    /// wedge the pool). `usize::MAX` — the default — disables the bound,
    /// leaving `max_block_txs` as the only batch limit.
    pub max_block_bytes: usize,
    /// Transaction pool capacity; submissions beyond it are shed.
    pub pool_capacity: usize,
    /// Backpressure budget: own transactions proposed but not yet committed
    /// before the proposer stops pulling from the pool (models Narwhal's
    /// bounded pending state).
    pub max_uncommitted_txs: usize,
    /// Execution drain rate (transactions per second) — the stand-in for
    /// the Sui execution pipeline; the system-wide capacity ceiling.
    pub exec_rate_tps: u64,
    /// Rounds retained below the last committed anchor before GC.
    pub gc_depth: u64,
    /// Commits between durable checkpoints.
    pub checkpoint_interval: u64,
    /// Broadcast-layer maintenance tick (µs): sync retries, proposal
    /// re-broadcast.
    pub sync_tick_us: u64,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        ValidatorConfig {
            schedule: ScheduleConfig::RoundRobin,
            broadcast_mode: BroadcastMode::BestEffort,
            // Calibrated so that vertices from remote regions (one-way
            // ≈ 75–165 ms in the geo matrix) sometimes miss the voting
            // window — the effect behind the paper's faultless latency gap
            // (Fig. 1) and the reputation signal for slow validators.
            min_round_delay_us: 100_000,
            // Must comfortably exceed the worst one-way geo delay (~180 ms
            // with jitter); the ratio to the round time (~6x) mirrors the
            // production timeout-to-round ratio, keeping the Fig. 2
            // latency degradation factors in the paper's range.
            leader_timeout_us: 600_000,
            max_block_txs: 2_000,
            max_block_bytes: usize::MAX,
            pool_capacity: 20_000,
            max_uncommitted_txs: 10_000,
            exec_rate_tps: 4_200,
            gc_depth: 200,
            checkpoint_interval: 10,
            sync_tick_us: 500_000,
        }
    }
}

impl ValidatorConfig {
    /// Baseline Bullshark with defaults.
    pub fn bullshark() -> Self {
        ValidatorConfig::default()
    }

    /// HammerHead with the paper's benchmark parameters.
    pub fn hammerhead() -> Self {
        ValidatorConfig {
            schedule: ScheduleConfig::Hammerhead(HammerheadConfig::default()),
            ..ValidatorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ValidatorConfig::default();
        assert!(c.min_round_delay_us < c.leader_timeout_us);
        assert!(c.max_block_txs <= c.pool_capacity);
        assert!(matches!(c.schedule, ScheduleConfig::RoundRobin));
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_bad_knobs() {
        let committee = Committee::new_equal_stake(10);
        assert!(HammerheadConfig::default().validate(&committee).is_ok());

        let short = HammerheadConfig { period_rounds: 1, ..HammerheadConfig::default() };
        assert!(matches!(
            short.validate(&committee),
            Err(ConfigError::PeriodTooShort { period_rounds: 1 })
        ));

        // f = 3 for n = 10 equal-stake validators; 4 is over budget.
        let greedy =
            HammerheadConfig { max_excluded_stake: Some(Stake(4)), ..HammerheadConfig::default() };
        assert!(matches!(
            greedy.validate(&committee),
            Err(ConfigError::ExcludedStakeAboveF { .. })
        ));
        let exact = HammerheadConfig {
            max_excluded_stake: Some(committee.max_faulty_stake()),
            ..HammerheadConfig::default()
        };
        assert!(exact.validate(&committee).is_ok());

        let ema = HammerheadConfig {
            scoring_rule: ScoringRule::VoteEma { alpha_percent: 0 },
            ..HammerheadConfig::default()
        };
        assert!(matches!(
            ema.validate(&committee),
            Err(ConfigError::InvalidEmaAlpha { alpha_percent: 0 })
        ));
    }

    #[test]
    fn hammerhead_preset_enables_reputation() {
        let c = ValidatorConfig::hammerhead();
        match c.schedule {
            ScheduleConfig::Hammerhead(h) => {
                assert_eq!(h.period_rounds, 20);
                assert_eq!(h.scoring_rule, ScoringRule::VoteBased);
            }
            other => panic!("unexpected schedule {other:?}"),
        }
    }
}
