//! **HammerHead** — reputation-based leader scheduling for DAG BFT.
//!
//! This crate is the paper's contribution, layered on the substrates in
//! this workspace exactly the way the production implementation layers on
//! Narwhal-Bullshark:
//!
//! * [`ReputationScores`] — the on-chain metric (§3): a validator earns a
//!   point whenever one of its vertices *votes* for a leader (carries a
//!   parent edge to the previous round's anchor). Scores are computed only
//!   from committed sub-DAGs, so every honest validator derives identical
//!   scores.
//! * [`compute_next_schedule`] — the schedule switch: the lowest-scoring
//!   validators (set `B`, at most `f` by stake) lose their slots to the
//!   highest-scoring ones (set `G`, `|G| = |B|`), round-robin, with
//!   deterministic tie-breaks.
//! * [`HammerheadPolicy`] — plugs the above into the Bullshark engine's
//!   [`SchedulePolicy`](hh_consensus::SchedulePolicy) seam. Epochs last
//!   `T` rounds; the switch triggers
//!   on the first committed anchor at or past the boundary, finalizing
//!   scores from the anchor's (agreed) causal history *up to but excluding
//!   the committed leader*, and the engine re-interprets the DAG under the
//!   new schedule — the retroactive application §3.1 describes. A schedule
//!   history keyed by initial round keeps `getLeader` well-defined across
//!   switches (Proposition 1's agreement argument in code).
//! * [`Validator`] — the production-shaped node: proposer with
//!   leader-await, reliable broadcast, consensus, transaction pool with
//!   backpressure, execution-rate model, persistence and crash-recovery.
//!   The Bullshark baseline is the same node with
//!   [`ScheduleConfig::RoundRobin`].
//!
//! # Quickstart
//!
//! ```
//! use hammerhead::{HammerheadConfig, HammerheadPolicy};
//! use hh_consensus::{Bullshark, SchedulePolicy};
//! use hh_dag::testkit::DagBuilder;
//! use hh_types::{Committee, Round};
//!
//! let committee = Committee::new_equal_stake(4);
//! let config = HammerheadConfig { period_rounds: 4, ..HammerheadConfig::default() };
//! let policy = HammerheadPolicy::new(committee.clone(), config);
//! let mut engine = Bullshark::new(committee.clone(), policy);
//!
//! // Drive a fully-connected DAG through the engine: schedules rotate
//! // every 4 rounds, and with everyone voting everywhere the swap is a
//! // deterministic function of the tie-break.
//! let mut b = DagBuilder::new(committee);
//! b.extend_full_rounds(13);
//! let dag = b.into_dag();
//! for r in 0..13u64 {
//!     let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
//!     vs.sort_by_key(|v| v.author());
//!     for v in vs {
//!         engine.process_vertex(&v, &dag);
//!     }
//! }
//! assert!(engine.policy().epoch() >= 2, "schedule rotated");
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod config;
pub mod monitor;
mod node;
mod policy;
mod schedule;
mod scores;

pub use config::{ConfigError, HammerheadConfig, ScheduleConfig, ScoringRule, ValidatorConfig};
pub use node::{CommitRecord, ExecRecord, Output, Validator, ValidatorMessage, ValidatorMetrics};
pub use policy::{EpochSummary, HammerheadPolicy};
pub use schedule::{compute_next_schedule, ScheduleChange};
pub use scores::ReputationScores;
