//! Monitoring: a text status report for a running validator.
//!
//! The production implementation ships Prometheus metrics and Grafana
//! dashboards (§4, Appendix A). This module provides the equivalent
//! observability surface for the reproduction: a flat list of
//! `name value` gauges in Prometheus text-exposition style, plus a compact
//! human-readable report. The `schedule_explorer` example and operators
//! debugging simulations are the consumers.

use crate::node::Validator;
use hh_consensus::SchedulePolicy;
use hh_storage::LogBackend;
use std::fmt::Write as _;

/// One exported gauge.
#[derive(Clone, Debug, PartialEq)]
pub struct Gauge {
    /// Metric name (snake_case, `hammerhead_` prefix).
    pub name: &'static str,
    /// Current value.
    pub value: f64,
}

/// Collects the validator's monitoring gauges.
pub fn gauges<B: LogBackend>(validator: &Validator<B>) -> Vec<Gauge> {
    let m = validator.metrics();
    let mut out = vec![
        Gauge { name: "hammerhead_current_round", value: validator.current_round().0 as f64 },
        Gauge { name: "hammerhead_commits_total", value: validator.commit_count() as f64 },
        Gauge { name: "hammerhead_txs_accepted_total", value: m.txs_accepted as f64 },
        Gauge { name: "hammerhead_txs_shed_total", value: m.txs_shed as f64 },
        Gauge { name: "hammerhead_own_txs_committed_total", value: m.own_txs_committed as f64 },
        Gauge { name: "hammerhead_proposals_total", value: m.proposals as f64 },
        Gauge { name: "hammerhead_bytes_proposed_total", value: m.bytes_proposed as f64 },
        Gauge { name: "hammerhead_bytes_committed_total", value: m.bytes_committed as f64 },
        Gauge { name: "hammerhead_leader_timeouts_total", value: m.leader_timeouts as f64 },
        Gauge { name: "hammerhead_restarts_total", value: m.restarts as f64 },
        Gauge { name: "hammerhead_storage_errors_total", value: m.storage_errors as f64 },
        Gauge { name: "hammerhead_pool_depth", value: validator.pool_len() as f64 },
        Gauge { name: "hammerhead_dag_vertices", value: validator.dag().len() as f64 },
        Gauge {
            name: "hammerhead_dag_equivocations_total",
            value: validator.dag().equivocations() as f64,
        },
    ];
    if let Some(policy) = validator.hammerhead_policy() {
        out.push(Gauge { name: "hammerhead_schedule_epoch", value: policy.epoch() as f64 });
        out.push(Gauge {
            name: "hammerhead_reputation_score_total",
            value: policy.scores().total() as f64,
        });
    }
    out
}

/// Renders gauges in Prometheus text exposition format.
///
/// ```
/// use hammerhead::{monitor, Validator, ValidatorConfig};
/// use hh_storage::MemBackend;
/// use hh_types::{Committee, ValidatorId};
///
/// let v: Validator<MemBackend> = Validator::new(
///     Committee::new_equal_stake(4), ValidatorId(0),
///     ValidatorConfig::hammerhead(), None);
/// let text = monitor::prometheus_text(&v);
/// assert!(text.contains("hammerhead_commits_total 0"));
/// ```
pub fn prometheus_text<B: LogBackend>(validator: &Validator<B>) -> String {
    let mut s = String::new();
    for g in gauges(validator) {
        // Integral gauges print without a trailing ".0" for readability.
        if g.value.fract() == 0.0 {
            let _ = writeln!(s, "{} {}", g.name, g.value as i64);
        } else {
            let _ = writeln!(s, "{} {}", g.name, g.value);
        }
    }
    s
}

/// Renders a compact single-validator status line for logs.
pub fn status_line<B: LogBackend>(validator: &Validator<B>) -> String {
    let m = validator.metrics();
    let epoch = validator
        .hammerhead_policy()
        .map(|p| p.epoch().to_string())
        .unwrap_or_else(|| "-".to_string());
    format!(
        "{} round={} commits={} epoch={} pool={} timeouts={} chain={}",
        validator.id(),
        validator.current_round(),
        validator.commit_count(),
        epoch,
        validator.pool_len(),
        m.leader_timeouts,
        validator.chain_hash(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ValidatorConfig;
    use hh_storage::MemBackend;
    use hh_types::{Committee, ValidatorId};

    fn validator() -> Validator<MemBackend> {
        Validator::new(
            Committee::new_equal_stake(1),
            ValidatorId(0),
            ValidatorConfig { min_round_delay_us: 1_000, ..ValidatorConfig::hammerhead() },
            None,
        )
    }

    #[test]
    fn gauges_cover_core_counters() {
        let v = validator();
        let gs = gauges(&v);
        let names: Vec<&str> = gs.iter().map(|g| g.name).collect();
        for expected in [
            "hammerhead_current_round",
            "hammerhead_commits_total",
            "hammerhead_leader_timeouts_total",
            "hammerhead_bytes_proposed_total",
            "hammerhead_bytes_committed_total",
            "hammerhead_schedule_epoch",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn prometheus_text_is_line_oriented() {
        let v = validator();
        let text = prometheus_text(&v);
        assert!(text.lines().count() >= 11);
        for line in text.lines() {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            assert!(name.starts_with("hammerhead_"), "{line}");
            assert!(parts.next().unwrap().parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn gauges_track_progress() {
        let mut v = validator();
        let mut time = 0u64;
        let mut timers: Vec<(u64, u64)> = Vec::new();
        for o in v.on_start(0) {
            if let crate::Output::SetTimer { delay_us, token } = o {
                timers.push((delay_us, token));
            }
        }
        // Pump a few timer rounds to make the solo validator commit.
        for _ in 0..200 {
            timers.sort();
            let Some((at, token)) = timers.first().copied() else { break };
            timers.remove(0);
            time = time.max(at);
            for o in v.on_timer(token, time) {
                if let crate::Output::SetTimer { delay_us, token } = o {
                    timers.push((time + delay_us, token));
                }
            }
        }
        let gs = gauges(&v);
        let commits = gs.iter().find(|g| g.name == "hammerhead_commits_total").unwrap();
        assert!(commits.value > 0.0);
        assert!(status_line(&v).contains("commits="));
    }
}
