//! The validator node: proposer, broadcast, consensus, transaction pool,
//! execution model, persistence and crash-recovery.
//!
//! [`Validator`] is a runtime-agnostic state machine: handlers take the
//! current time in microseconds and return [`Output`]s (messages to send,
//! timers to arm). The simulation harness (`hh-sim`) adapts it to the
//! discrete-event network; `hh-net::threaded` can drive the same type on
//! real threads. The Bullshark baseline and HammerHead are the *same*
//! node, differing only in [`ScheduleConfig`].
//!
//! Protocol flow per round `r`:
//!
//! 1. wait for quorum stake of round `r-1` vertices;
//! 2. pace (`min_round_delay_us`), and when leaving an *even* round wait up
//!    to `leader_timeout_us` for that round's anchor vertex — the leader-
//!    await that makes crashed leaders expensive for static schedules;
//! 3. propose: batch transactions (bounded by block size and the
//!    uncommitted-tx backpressure budget), link to all known `r-1`
//!    vertices, broadcast via the reliable-broadcast layer;
//! 4. feed every delivered vertex to the consensus engine; committed
//!    sub-DAGs drain through the execution-rate model, release
//!    backpressure budget, trigger checkpoints and DAG garbage collection.

use crate::config::{ScheduleConfig, ValidatorConfig};
use crate::policy::HammerheadPolicy;
use hh_consensus::{
    Bullshark, CommittedSubDag, RoundRobinPolicy, ScheduleDecision, SchedulePolicy, SlotSchedule,
    StaticLeaderPolicy,
};
use hh_crypto::{Digest, Keypair, Sha256};
use hh_dag::{Dag, EvidenceLedger};
use hh_rbc::{Rbc, RbcMessage};
use hh_storage::{LogBackend, ValidatorStore};
use hh_types::codec::{Decoder, Encode, EncodeExt};
use hh_types::{Block, Committee, Round, Transaction, TypeError, ValidatorId, Vertex, VertexRef};
use std::collections::VecDeque;
use std::sync::Arc;

/// Timer token: re-check round advancement (pacing deadline).
pub const TOKEN_ROUND: u64 = 1;
/// Timer token: leader-await deadline.
pub const TOKEN_LEADER: u64 = 2;
/// Timer token: broadcast-layer maintenance tick.
pub const TOKEN_TICK: u64 = 3;

/// Messages a validator exchanges (with peers and with clients).
#[derive(Clone, Debug)]
pub enum ValidatorMessage {
    /// Broadcast-layer traffic between validators.
    Rbc(RbcMessage),
    /// A client submitting a transaction.
    Submit(Transaction),
    /// Finality confirmation back to the submitting client (the paper
    /// measures latency to exactly this event). `executed_at` is the
    /// execution-pipeline completion instant; a confirmation carrying
    /// `executed_at == u64::MAX` reports a shed (failed) transaction.
    Confirm {
        /// The confirmed transaction.
        id: hh_types::TxId,
        /// Execution completion time (µs), or `u64::MAX` for a shed tx.
        executed_at: u64,
    },
}

impl Encode for ValidatorMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ValidatorMessage::Rbc(m) => {
                buf.put_u8(0);
                m.encode(buf);
            }
            ValidatorMessage::Submit(tx) => {
                buf.put_u8(1);
                tx.encode(buf);
            }
            ValidatorMessage::Confirm { id, executed_at } => {
                buf.put_u8(2);
                id.encode(buf);
                buf.put_u64(*executed_at);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(match d.take_u8()? {
            0 => ValidatorMessage::Rbc(RbcMessage::decode(d)?),
            1 => ValidatorMessage::Submit(Transaction::decode(d)?),
            2 => ValidatorMessage::Confirm {
                id: hh_types::TxId::decode(d)?,
                executed_at: d.take_u64()?,
            },
            _ => return Err(TypeError::Decode("invalid validator message tag")),
        })
    }
}

/// One committed sub-DAG as this validator observed it — the unit the
/// safety invariant checker consumes. Records are appended on every
/// commit, *including* commits recomputed during crash-recovery replay,
/// so the checker can hold replayed history to the same prefix the
/// validator had already exposed before the crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Position in the total order of commits (0-based, the engine's
    /// `commit_index`).
    pub index: u64,
    /// The committed anchor.
    pub anchor: VertexRef,
    /// Every vertex of the sub-DAG, in commit (deterministic traversal)
    /// order.
    pub vertices: Vec<VertexRef>,
    /// Whether this record was produced by crash-recovery replay rather
    /// than live consensus.
    pub replayed: bool,
}

/// Effects a handler asks the runtime to perform.
#[derive(Clone, Debug)]
pub enum Output {
    /// Send to one validator.
    Send(ValidatorId, ValidatorMessage),
    /// Send to every other validator.
    Broadcast(ValidatorMessage),
    /// Arm a one-shot timer.
    SetTimer {
        /// Delay from now, in microseconds.
        delay_us: u64,
        /// Token passed back to [`Validator::on_timer`].
        token: u64,
    },
    /// The durable store rejected a write (or could not be read during
    /// recovery). The validator has fail-stopped: it drops the failed
    /// operation and ignores further input until [`Validator::on_restart`]
    /// — a node that cannot uphold the write-ahead discipline must not keep
    /// acting, but a storage fault is the *runtime's* problem to surface,
    /// never a reason to panic the whole process.
    StorageError {
        /// What the node was persisting ("persist vertex", "persist
        /// checkpoint", "recover").
        context: &'static str,
        /// The underlying I/O error.
        detail: String,
    },
}

/// Latency record for one of this validator's own transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecRecord {
    /// Client submission time (µs).
    pub submitted_at: u64,
    /// Consensus commit time (µs).
    pub committed_at: u64,
    /// Execution completion time (µs) — the paper's "finality" instant.
    pub executed_at: u64,
    /// Modeled wire bytes of the transaction (header + payload) — the
    /// unit behind byte-goodput metrics.
    pub bytes: u32,
}

/// Counters exposed for the experiment harness and monitoring.
#[derive(Clone, Debug, Default)]
pub struct ValidatorMetrics {
    /// Transactions accepted into the pool.
    pub txs_accepted: u64,
    /// Transactions shed because the pool was full (backpressure).
    pub txs_shed: u64,
    /// Transactions committed in this validator's own vertices.
    pub own_txs_committed: u64,
    /// Vertices proposed.
    pub proposals: u64,
    /// Modeled wire bytes batched into own proposals.
    pub bytes_proposed: u64,
    /// Modeled wire bytes across all committed transactions (every
    /// validator's blocks, not just our own).
    pub bytes_committed: u64,
    /// Leader-await deadlines that expired (anchor never arrived in time).
    pub leader_timeouts: u64,
    /// Committed sub-DAGs observed.
    pub commits: u64,
    /// Times the node restarted from persistent storage.
    pub restarts: u64,
    /// Storage writes (or recovery reads) that failed; each one halts the
    /// node until the next restart.
    pub storage_errors: u64,
    /// Set if post-restart recomputation diverged from the last durable
    /// checkpoint (should never happen; monitoring tripwire).
    pub recovery_divergence: bool,
    /// Per-own-transaction latency records.
    pub exec_records: Vec<ExecRecord>,
}

/// Leader-schedule policy dispatch (the three configurations of
/// [`ScheduleConfig`]).
enum PolicyKind {
    RoundRobin(RoundRobinPolicy),
    Hammerhead(Box<HammerheadPolicy>),
    Static(StaticLeaderPolicy),
}

impl SchedulePolicy for PolicyKind {
    fn leader_at(&self, round: Round) -> ValidatorId {
        match self {
            PolicyKind::RoundRobin(p) => p.leader_at(round),
            PolicyKind::Hammerhead(p) => p.leader_at(round),
            PolicyKind::Static(p) => p.leader_at(round),
        }
    }
    fn initial_round(&self) -> Round {
        match self {
            PolicyKind::RoundRobin(p) => p.initial_round(),
            PolicyKind::Hammerhead(p) => p.initial_round(),
            PolicyKind::Static(p) => p.initial_round(),
        }
    }
    fn epoch(&self) -> u64 {
        match self {
            PolicyKind::RoundRobin(p) => p.epoch(),
            PolicyKind::Hammerhead(p) => p.epoch(),
            PolicyKind::Static(p) => p.epoch(),
        }
    }
    fn before_order_anchor(
        &mut self,
        anchor: &Vertex,
        dag: &Dag,
        ordered: &hh_types::DigestSet,
    ) -> ScheduleDecision {
        match self {
            PolicyKind::RoundRobin(p) => p.before_order_anchor(anchor, dag, ordered),
            PolicyKind::Hammerhead(p) => p.before_order_anchor(anchor, dag, ordered),
            PolicyKind::Static(p) => p.before_order_anchor(anchor, dag, ordered),
        }
    }
    fn on_vertex_ordered(&mut self, vertex: &Vertex, dag: &Dag) {
        match self {
            PolicyKind::RoundRobin(p) => p.on_vertex_ordered(vertex, dag),
            PolicyKind::Hammerhead(p) => p.on_vertex_ordered(vertex, dag),
            PolicyKind::Static(p) => p.on_vertex_ordered(vertex, dag),
        }
    }
}

/// A full HammerHead (or baseline Bullshark) validator.
///
/// See the module docs for the protocol flow and `hh-sim` for how nodes are
/// assembled into a network.
pub struct Validator<B: LogBackend> {
    id: ValidatorId,
    committee: Committee,
    config: ValidatorConfig,
    keypair: Keypair,

    dag: Dag,
    rbc: Rbc,
    engine: Bullshark<PolicyKind>,
    store: Option<ValidatorStore<B>>,

    /// The round of this validator's next proposal.
    next_round: Round,
    /// Time of the last own proposal (pacing basis).
    last_proposal_at: u64,
    /// Highest round known to hold quorum stake (cached).
    best_quorum_round: Option<Round>,

    tx_pool: VecDeque<Transaction>,
    /// Own transactions proposed but not yet committed (backpressure).
    uncommitted_txs: u64,

    /// When the (modelled) execution pipeline becomes free.
    exec_free_at: u64,

    /// Earliest armed wake-up, to suppress redundant timers.
    next_wake: u64,
    /// Suppress metric/persistence side effects during recovery replay.
    replaying: bool,
    /// Fail-stopped after a storage error; cleared by the next restart.
    halted: bool,
    /// Network address each client submitted from, for finality
    /// confirmations. Client addresses live outside the committee's id
    /// range; `ValidatorId` doubles as the generic network address here.
    client_addr: std::collections::HashMap<u32, ValidatorId>,

    /// Commit records awaiting collection by the safety checker (see
    /// [`Validator::take_commit_records`]). Replay commits land here
    /// too, flagged `replayed`.
    commit_log: Vec<CommitRecord>,

    metrics: ValidatorMetrics,
    /// Deduplicated equivocation evidence observed by this node. Like
    /// `metrics`, it survives [`Validator::on_restart`]: crash-recovery
    /// replay inserts straight into the DAG, so replayed vertices can
    /// never re-count evidence.
    evidence: EvidenceLedger,
}

impl<B: LogBackend> Validator<B> {
    /// Builds a validator. `backend` enables persistence and
    /// crash-recovery; pass `None` for a volatile node.
    pub fn new(
        committee: Committee,
        id: ValidatorId,
        config: ValidatorConfig,
        backend: Option<B>,
    ) -> Self {
        let keypair = committee.keypair(id);
        let policy = Self::build_policy(&committee, &config);
        Validator {
            id,
            keypair,
            dag: Self::build_dag(&committee, &config),
            rbc: Rbc::new(committee.clone(), id, config.broadcast_mode),
            engine: Bullshark::new(committee.clone(), policy),
            store: backend.map(ValidatorStore::new),
            next_round: Round(0),
            last_proposal_at: 0,
            best_quorum_round: None,
            tx_pool: VecDeque::new(),
            uncommitted_txs: 0,
            exec_free_at: 0,
            next_wake: u64::MAX,
            replaying: false,
            halted: false,
            client_addr: std::collections::HashMap::new(),
            commit_log: Vec::new(),
            metrics: ValidatorMetrics::default(),
            evidence: EvidenceLedger::new(),
            committee,
            config,
        }
    }

    /// Builds the DAG with a reachability window matched to the node's GC
    /// horizon: ancestry below `gc_depth` rounds is collected before it can
    /// be queried, so a deeper bitset index would only cost memory. The
    /// default window caps it for nodes configured with huge horizons.
    fn build_dag(committee: &Committee, config: &ValidatorConfig) -> Dag {
        let window = (config.gc_depth as usize).clamp(2, hh_dag::DEFAULT_REACH_WINDOW);
        Dag::with_reach_window(committee.clone(), window)
    }

    fn build_policy(committee: &Committee, config: &ValidatorConfig) -> PolicyKind {
        match &config.schedule {
            ScheduleConfig::RoundRobin => {
                PolicyKind::RoundRobin(RoundRobinPolicy::new(SlotSchedule::round_robin(committee)))
            }
            ScheduleConfig::Hammerhead(h) => PolicyKind::Hammerhead(Box::new(
                HammerheadPolicy::new(committee.clone(), h.clone()),
            )),
            ScheduleConfig::StaticLeader(leader) => {
                PolicyKind::Static(StaticLeaderPolicy::new(*leader))
            }
        }
    }

    /// This validator's id.
    pub fn id(&self) -> ValidatorId {
        self.id
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &ValidatorMetrics {
        &self.metrics
    }

    /// Takes the latency records accumulated since the last call,
    /// leaving the buffer empty.
    ///
    /// Streaming harnesses drain this periodically so per-transaction
    /// state never accumulates for a whole run; the other counters in
    /// [`ValidatorMetrics`] are untouched.
    pub fn take_exec_records(&mut self) -> Vec<ExecRecord> {
        std::mem::take(&mut self.metrics.exec_records)
    }

    /// The local DAG (inspection).
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Takes the commit records accumulated since the last call, in
    /// commit order, leaving the buffer empty. The safety invariant
    /// checker (`hh-sim`) drains this after every run slice.
    pub fn take_commit_records(&mut self) -> Vec<CommitRecord> {
        std::mem::take(&mut self.commit_log)
    }

    /// Broadcast-layer retransmissions (sync re-requests + proposal
    /// re-broadcasts) since the last restart — the self-healing
    /// delivery's cost metric. Resets with the RBC state on restart.
    pub fn rbc_retransmits(&self) -> u64 {
        self.rbc.retransmits()
    }

    /// Deduplicated equivocation evidence observed by this node: each
    /// distinct twin pair per `(round, author)` slot is charged exactly
    /// once, no matter how often it is retransmitted.
    pub fn equivocation_evidence(&self) -> &EvidenceLedger {
        &self.evidence
    }

    /// Number of commits observed.
    pub fn commit_count(&self) -> u64 {
        self.engine.commit_count()
    }

    /// The commit chain hash (agreement checks).
    pub fn chain_hash(&self) -> Digest {
        self.engine.chain_hash()
    }

    /// Committed anchors in order.
    pub fn committed_anchors(&self) -> &[hh_types::VertexRef] {
        self.engine.committed_anchors()
    }

    /// The round of this validator's next proposal.
    pub fn current_round(&self) -> Round {
        self.next_round
    }

    /// The HammerHead policy, when configured.
    pub fn hammerhead_policy(&self) -> Option<&HammerheadPolicy> {
        match self.engine.policy() {
            PolicyKind::Hammerhead(p) => Some(p),
            _ => None,
        }
    }

    /// The leader this validator's schedule assigns to `round` (past
    /// rounds resolve through the schedule history) — the probe the
    /// re-inclusion analysis uses to find a validator's first
    /// post-recovery leader slot.
    pub fn leader_at(&self, round: Round) -> ValidatorId {
        self.engine.current_leader(round)
    }

    /// Whether the node has fail-stopped after a storage error (see
    /// [`Output::StorageError`]).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current pool depth (monitoring).
    pub fn pool_len(&self) -> usize {
        self.tx_pool.len()
    }

    /// Startup: arm the maintenance tick and propose the genesis vertex.
    pub fn on_start(&mut self, now: u64) -> Vec<Output> {
        if self.halted {
            return Vec::new();
        }
        let mut out = Vec::new();
        out.push(Output::SetTimer { delay_us: self.config.sync_tick_us, token: TOKEN_TICK });
        self.drive(now, &mut out);
        out
    }

    /// Handles a message from a peer validator or a client.
    ///
    /// Borrows the message: the network layer shares one frame between
    /// all recipients, and the broadcast layer's `Arc`'d vertex payloads
    /// mean nothing on this path needs an owned copy (a submitted
    /// transaction is the one small exception, cloned into the pool).
    pub fn on_message(
        &mut self,
        from: ValidatorId,
        msg: &ValidatorMessage,
        now: u64,
    ) -> Vec<Output> {
        if self.halted {
            return Vec::new();
        }
        let mut out = Vec::new();
        match msg {
            ValidatorMessage::Submit(tx) => {
                self.client_addr.insert(tx.id.client, from);
                if self.tx_pool.len() < self.config.pool_capacity {
                    self.tx_pool.push_back(*tx);
                    self.metrics.txs_accepted += 1;
                } else {
                    self.metrics.txs_shed += 1;
                    // Failure confirmation so the client's in-flight window
                    // does not leak.
                    out.push(Output::Send(
                        from,
                        ValidatorMessage::Confirm { id: tx.id, executed_at: u64::MAX },
                    ));
                }
            }
            ValidatorMessage::Rbc(rbc_msg) => {
                let sender = Self::rbc_sender(rbc_msg, from);
                let fx = self.rbc.handle(sender, rbc_msg, &mut self.dag);
                self.absorb_rbc(fx, now, &mut out);
            }
            ValidatorMessage::Confirm { .. } => {
                // Validators never consume confirmations.
            }
        }
        self.drive(now, &mut out);
        out
    }

    /// Handles a timer armed through an earlier [`Output::SetTimer`].
    pub fn on_timer(&mut self, token: u64, now: u64) -> Vec<Output> {
        if self.halted {
            return Vec::new();
        }
        let mut out = Vec::new();
        match token {
            TOKEN_TICK => {
                let fx = self.rbc.tick(&self.dag);
                self.absorb_rbc(fx, now, &mut out);
                out.push(Output::SetTimer {
                    delay_us: self.config.sync_tick_us,
                    token: TOKEN_TICK,
                });
            }
            TOKEN_ROUND | TOKEN_LEADER if self.next_wake <= now => {
                self.next_wake = u64::MAX;
            }
            _ => {}
        }
        self.drive(now, &mut out);
        out
    }

    /// Restart after a crash: drop all volatile state and rebuild from the
    /// persistent store (if any), then resume proposing.
    ///
    /// Commits are recomputed by replaying persisted vertices through a
    /// fresh engine — never trusted from disk — and cross-checked against
    /// the last durable checkpoint.
    pub fn on_restart(&mut self, now: u64) -> Vec<Output> {
        self.metrics.restarts += 1;
        // A restart clears a storage-fault halt: the node retries against
        // its (possibly repaired) store from scratch.
        self.halted = false;
        // Volatile state dies with the crash.
        self.dag = Self::build_dag(&self.committee, &self.config);
        self.rbc = Rbc::new(self.committee.clone(), self.id, self.config.broadcast_mode);
        self.engine = Bullshark::new(
            self.committee.clone(),
            Self::build_policy(&self.committee, &self.config),
        );
        self.tx_pool.clear();
        self.uncommitted_txs = 0;
        self.exec_free_at = now;
        self.next_wake = u64::MAX;
        self.next_round = Round(0);
        self.best_quorum_round = None;

        if let Some(store) = &self.store {
            let recovered = match store.recover() {
                Ok(recovered) => recovered,
                Err(e) => {
                    let mut out = Vec::new();
                    self.halt_on_storage_error("recover", &e, &mut out);
                    return out;
                }
            };
            self.replaying = true;
            for vertex in recovered.vertices {
                let digest = vertex.digest();
                let author = vertex.author();
                let round = vertex.round();
                if self.dag.try_insert(vertex).is_ok() {
                    if author == self.id {
                        self.uncommitted_txs +=
                            self.dag.get(&digest).map(|v| v.block().len() as u64).unwrap_or(0);
                        if round >= self.next_round {
                            self.next_round = round.next();
                        }
                    }
                    let arc = self.dag.get(&digest).expect("just inserted").clone();
                    self.note_quorum(arc.round());
                    let commits = self.engine.process_vertex(&arc, &self.dag);
                    let mut replay_out = Vec::new();
                    for sd in commits {
                        self.on_commit(sd, now, &mut replay_out);
                    }
                    debug_assert!(replay_out.is_empty(), "replay must not emit effects");
                }
            }
            self.replaying = false;
            // Cross-check the recomputed chain against the durable
            // checkpoint.
            if let Some((idx, expected)) = recovered.last_checkpoint {
                let anchors = self.engine.committed_anchors();
                if anchors.len() < idx as usize
                    || chain_hash_prefix(&anchors[..idx as usize]) != expected
                {
                    self.metrics.recovery_divergence = true;
                }
            }
        }

        self.last_proposal_at = now;
        let mut out = Vec::new();
        out.push(Output::SetTimer { delay_us: self.config.sync_tick_us, token: TOKEN_TICK });
        // Re-announce our latest vertex so peers learn we are back and can
        // serve us anything we missed (their responses resync us forward).
        if self.next_round.0 > 0 {
            if let Some(v) = self.dag.vertex_by_author(self.next_round.prev(), self.id) {
                out.push(Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Vertex(v.clone()))));
            }
        }
        self.drive(now, &mut out);
        out
    }

    /// Graceful shutdown: persist a final commit checkpoint and force the
    /// store to durable media, so a subsequent [`Validator::on_restart`]
    /// recovers to the exact shutdown state without replay divergence.
    ///
    /// Idempotent and safe on a halted node (a storage fault during the
    /// flush is surfaced as [`Output::StorageError`], like any other write
    /// failure). The real-node runtime (`hh-node`) calls this when its
    /// control stdin closes, before exiting; the simulator never needs it
    /// because `MemBackend` has nothing to flush.
    pub fn on_shutdown(&mut self, _now: u64) -> Vec<Output> {
        let mut out = Vec::new();
        if let Some(store) = &mut self.store {
            let result = store
                .persist_checkpoint(self.engine.commit_count(), self.engine.chain_hash())
                .and_then(|()| store.sync());
            if let Err(e) = result {
                self.halt_on_storage_error("shutdown flush", &e, &mut out);
            }
        }
        out
    }

    /// Routes broadcast-layer outputs and feeds delivered vertices to the
    /// consensus engine.
    fn absorb_rbc(&mut self, fx: hh_rbc::RbcEffects, now: u64, out: &mut Vec<Output>) {
        for (to, msg) in fx.send {
            out.push(Output::Send(to, ValidatorMessage::Rbc(msg)));
        }
        for msg in fx.broadcast {
            out.push(Output::Broadcast(ValidatorMessage::Rbc(msg)));
        }
        for ev in &fx.evidence {
            self.evidence.observe_evidence(ev);
        }
        for vertex in fx.delivered {
            self.on_delivered(vertex, now, out);
        }
    }

    fn on_delivered(&mut self, vertex: Arc<Vertex>, now: u64, out: &mut Vec<Output>) {
        if self.halted {
            return;
        }
        if !self.replaying {
            if let Some(store) = &mut self.store {
                // Persist before acting (write-ahead discipline): on an
                // I/O failure the vertex is dropped un-acted-upon and the
                // node fail-stops.
                if let Err(e) = store.persist_vertex(&vertex) {
                    self.halt_on_storage_error("persist vertex", &e, out);
                    return;
                }
            }
        }
        self.note_quorum(vertex.round());
        let commits = self.engine.process_vertex(&vertex, &self.dag);
        for sd in commits {
            self.on_commit(sd, now, out);
        }
    }

    /// Fail-stop on a storage fault: record it, surface a typed
    /// [`Output::StorageError`], and ignore further input until restart.
    fn halt_on_storage_error(
        &mut self,
        context: &'static str,
        error: &dyn std::fmt::Display,
        out: &mut Vec<Output>,
    ) {
        self.metrics.storage_errors += 1;
        self.halted = true;
        out.push(Output::StorageError { context, detail: error.to_string() });
    }

    fn note_quorum(&mut self, round: Round) {
        if self.best_quorum_round.is_none_or(|b| round > b) && self.dag.is_quorum_at(round) {
            self.best_quorum_round = Some(round);
        }
    }

    fn on_commit(&mut self, sd: CommittedSubDag, now: u64, out: &mut Vec<Output>) {
        self.metrics.commits += 1;
        self.commit_log.push(CommitRecord {
            index: sd.commit_index,
            anchor: sd.anchor,
            vertices: sd.vertices.iter().map(|v| v.reference()).collect(),
            replayed: self.replaying,
        });
        let tx_interval_us = 1_000_000 / self.config.exec_rate_tps.max(1);
        for vertex in &sd.vertices {
            let own = vertex.author() == self.id;
            if own {
                self.uncommitted_txs =
                    self.uncommitted_txs.saturating_sub(vertex.block().len() as u64);
            }
            for tx in vertex.block().transactions() {
                // Every validator executes every committed transaction at a
                // bounded rate (the Sui execution-pipeline stand-in).
                let start = self.exec_free_at.max(now);
                let finish = start + tx_interval_us;
                self.exec_free_at = finish;
                if !self.replaying {
                    self.metrics.bytes_committed += tx.wire_bytes() as u64;
                }
                if own && !self.replaying {
                    self.metrics.own_txs_committed += 1;
                    self.metrics.exec_records.push(ExecRecord {
                        submitted_at: tx.submitted_at,
                        committed_at: now,
                        executed_at: finish,
                        bytes: tx.wire_bytes().min(u32::MAX as usize) as u32,
                    });
                    // Finality confirmation to the submitting client.
                    if let Some(addr) = self.client_addr.get(&tx.id.client) {
                        out.push(Output::Send(
                            *addr,
                            ValidatorMessage::Confirm { id: tx.id, executed_at: finish },
                        ));
                    }
                }
            }
        }
        if !self.replaying {
            if let Some(store) = &mut self.store {
                if sd.commit_index.is_multiple_of(self.config.checkpoint_interval.max(1)) {
                    let result = store
                        .persist_checkpoint(self.engine.commit_count(), self.engine.chain_hash());
                    if let Err(e) = result {
                        self.halt_on_storage_error("persist checkpoint", &e, out);
                        return;
                    }
                }
            }
        }
        // Garbage-collect far-ordered history.
        let anchor_round = sd.anchor.round;
        if anchor_round.0 > self.config.gc_depth {
            self.dag.gc(Round(anchor_round.0 - self.config.gc_depth));
        }
    }

    /// The proposer loop: advance as many rounds as conditions allow; on a
    /// time-gated condition, arm a precise wake-up timer.
    fn drive(&mut self, now: u64, out: &mut Vec<Output>) {
        loop {
            if self.halted {
                return;
            }
            if self.next_round == Round(0) {
                self.propose(Round(0), now, out);
                continue;
            }
            // Catch-up: if some higher round already has quorum, jump.
            let mut prev = self.next_round.prev();
            if let Some(best) = self.best_quorum_round {
                if best >= self.next_round {
                    self.next_round = best.next();
                    prev = best;
                }
            }
            if !self.dag.is_quorum_at(prev) {
                return; // wait for deliveries
            }
            let elapsed = now.saturating_sub(self.last_proposal_at);
            if elapsed < self.config.min_round_delay_us {
                self.arm_wake(
                    now,
                    self.last_proposal_at + self.config.min_round_delay_us,
                    TOKEN_ROUND,
                    out,
                );
                return;
            }
            if prev.is_even() {
                let leader = self.engine.current_leader(prev);
                if leader != self.id && self.dag.vertex_by_author(prev, leader).is_none() {
                    if elapsed < self.config.leader_timeout_us {
                        self.arm_wake(
                            now,
                            self.last_proposal_at + self.config.leader_timeout_us,
                            TOKEN_LEADER,
                            out,
                        );
                        return;
                    }
                    self.metrics.leader_timeouts += 1;
                }
            }
            let round = self.next_round;
            self.propose(round, now, out);
        }
    }

    fn arm_wake(&mut self, now: u64, deadline: u64, token: u64, out: &mut Vec<Output>) {
        if deadline < self.next_wake || self.next_wake <= now {
            self.next_wake = deadline;
            out.push(Output::SetTimer { delay_us: deadline.saturating_sub(now).max(1), token });
        }
    }

    fn propose(&mut self, round: Round, now: u64, out: &mut Vec<Output>) {
        let parents: Vec<Digest> = if round.0 == 0 {
            Vec::new()
        } else {
            // `round_vertices` iterates the round's author-indexed slot
            // table, so parents come out in ascending author order —
            // identical DAG state yields identical vertex digests.
            self.dag.round_vertices(round.prev()).map(|v| v.digest()).collect()
        };
        // Backpressure: stop pulling from the pool once too many of our
        // transactions sit uncommitted.
        let budget = (self.config.max_uncommitted_txs as u64).saturating_sub(self.uncommitted_txs);
        let max_take = self.tx_pool.len().min(self.config.max_block_txs).min(budget as usize);
        // Byte bound: batch until the next transaction would overflow
        // `max_block_bytes`; the first transaction always fits so an
        // oversized one cannot wedge the pool.
        let mut take = 0;
        let mut batch_bytes = 0usize;
        while take < max_take {
            let wire = self.tx_pool[take].wire_bytes();
            if take > 0 && batch_bytes.saturating_add(wire) > self.config.max_block_bytes {
                break;
            }
            batch_bytes += wire;
            take += 1;
        }
        let batch: Vec<Transaction> = self.tx_pool.drain(..take).collect();
        self.uncommitted_txs += batch.len() as u64;
        if !batch.is_empty() {
            self.metrics.bytes_proposed += batch_bytes as u64;
        }

        let vertex = Vertex::new(round, self.id, Block::new(batch), parents, &self.keypair);
        self.metrics.proposals += 1;
        let fx = self.rbc.broadcast_own(vertex, &mut self.dag);
        self.absorb_rbc(fx, now, out);
        self.next_round = round.next();
        self.last_proposal_at = now;
    }

    /// The logical sender of an RBC message (used for sync responses). For
    /// vertex pushes the author is authoritative; for acks and syncs the
    /// network-level sender is what matters.
    fn rbc_sender(msg: &RbcMessage, network_from: ValidatorId) -> ValidatorId {
        match msg {
            RbcMessage::Vertex(_)
            | RbcMessage::Propose(_)
            | RbcMessage::Certified(_, _)
            | RbcMessage::Ack { .. }
            | RbcMessage::SyncRequest(_)
            | RbcMessage::RangeRequest { .. }
            | RbcMessage::SyncResponse(_) => network_from,
        }
    }
}

/// Recomputes the commit chain hash over an anchor prefix (checkpoint
/// cross-check during recovery).
fn chain_hash_prefix(anchors: &[hh_types::VertexRef]) -> Digest {
    let mut hash = Digest::ZERO;
    for a in anchors {
        let mut h = Sha256::new();
        h.update(hash.as_bytes());
        h.update(a.digest.as_bytes());
        hash = h.finalize();
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_storage::MemBackend;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Drives a single validator through its timers: a committee of one has
    /// quorum 1, so the node self-paces rounds and commits alone —
    /// exercising the full propose → deliver → commit → execute pipeline
    /// without a network.
    struct SoloPump {
        v: Validator<MemBackend>,
        now: u64,
        timers: BinaryHeap<Reverse<(u64, u64)>>,
    }

    impl SoloPump {
        fn new(config: ValidatorConfig, backend: Option<MemBackend>) -> Self {
            let committee = Committee::new_equal_stake(1);
            let v = Validator::new(committee, ValidatorId(0), config, backend);
            SoloPump { v, now: 0, timers: BinaryHeap::new() }
        }

        fn start(&mut self) {
            let out = self.v.on_start(self.now);
            self.absorb(out);
        }

        fn absorb(&mut self, out: Vec<Output>) {
            for o in out {
                match o {
                    Output::SetTimer { delay_us, token } => {
                        self.timers.push(Reverse((self.now + delay_us, token)));
                    }
                    // Committee of one: no peers to send to.
                    Output::Send(_, _) | Output::Broadcast(_) => {}
                    Output::StorageError { context, detail } => {
                        panic!("unexpected storage error ({context}): {detail}")
                    }
                }
            }
        }

        fn run_until(&mut self, deadline: u64) {
            while let Some(Reverse((at, token))) = self.timers.peek().copied() {
                if at > deadline {
                    break;
                }
                self.timers.pop();
                self.now = at;
                let out = self.v.on_timer(token, self.now);
                self.absorb(out);
            }
            self.now = deadline;
        }

        fn submit(&mut self, tx: Transaction) {
            let out = self.v.on_message(ValidatorId(0), &ValidatorMessage::Submit(tx), self.now);
            self.absorb(out);
        }
    }

    fn fast_config() -> ValidatorConfig {
        ValidatorConfig {
            min_round_delay_us: 1_000,
            leader_timeout_us: 10_000,
            sync_tick_us: 50_000,
            ..ValidatorConfig::default()
        }
    }

    #[test]
    fn solo_validator_commits_and_executes() {
        let mut pump = SoloPump::new(fast_config(), None);
        pump.start();
        for i in 0..10 {
            pump.submit(Transaction::new(0, i, 0));
        }
        pump.run_until(1_000_000);
        assert!(pump.v.commit_count() > 10, "commits: {}", pump.v.commit_count());
        assert_eq!(pump.v.metrics().txs_accepted, 10);
        assert_eq!(pump.v.metrics().own_txs_committed, 10);
        assert_eq!(pump.v.metrics().exec_records.len(), 10);
        for rec in &pump.v.metrics().exec_records {
            assert!(rec.committed_at >= rec.submitted_at);
            assert!(rec.executed_at > rec.committed_at);
        }
        // No leader timeouts: the solo node is always its own leader.
        assert_eq!(pump.v.metrics().leader_timeouts, 0);
    }

    #[test]
    fn pool_capacity_sheds_excess() {
        let config = ValidatorConfig { pool_capacity: 5, ..fast_config() };
        let mut pump = SoloPump::new(config, None);
        pump.start();
        // Submit while the proposer is paced out, so the pool fills up.
        for i in 0..10 {
            pump.submit(Transaction::new(0, i, 0));
        }
        let m = pump.v.metrics();
        assert_eq!(m.txs_accepted + m.txs_shed, 10);
        assert!(m.txs_shed > 0, "pool should shed beyond capacity");
    }

    #[test]
    fn rounds_are_paced() {
        let config = ValidatorConfig { min_round_delay_us: 100_000, ..fast_config() };
        let mut pump = SoloPump::new(config, None);
        pump.start();
        pump.run_until(1_000_000);
        // ~1s / 100ms pacing → about 10 proposals (plus genesis).
        let proposals = pump.v.metrics().proposals;
        assert!((8..=13).contains(&proposals), "proposals: {proposals}");
    }

    #[test]
    fn crash_recovery_restores_commits_from_storage() {
        let backend = MemBackend::new();
        let mut pump = SoloPump::new(fast_config(), Some(backend.clone()));
        pump.start();
        for i in 0..5 {
            pump.submit(Transaction::new(0, i, 0));
        }
        pump.run_until(500_000);
        let commits_before = pump.v.commit_count();
        let chain_before = pump.v.chain_hash();
        assert!(commits_before > 0);

        // Crash: rebuild the validator object from the same backend.
        let committee = Committee::new_equal_stake(1);
        let mut revived: Validator<MemBackend> =
            Validator::new(committee, ValidatorId(0), fast_config(), Some(backend));
        let out = revived.on_restart(600_000);
        assert!(!out.is_empty());
        assert!(revived.commit_count() >= commits_before.saturating_sub(1));
        assert!(!revived.metrics().recovery_divergence, "checkpoint must match");
        // The recomputed prefix extends the pre-crash chain.
        let prefix = chain_hash_prefix(&revived.committed_anchors()[..commits_before as usize]);
        assert_eq!(prefix, chain_before);
        // Replay must not duplicate execution records.
        assert!(revived.metrics().exec_records.is_empty());
        // And the node keeps committing after recovery.
        let mut pump2 = SoloPump { v: revived, now: 600_000, timers: BinaryHeap::new() };
        pump2.absorb(out);
        pump2.run_until(1_200_000);
        assert!(pump2.v.commit_count() > commits_before);
    }

    /// A backend that accepts a fixed number of appends, then fails every
    /// write — the "disk full / device gone" shape.
    #[derive(Clone, Debug)]
    struct FailingBackend {
        inner: MemBackend,
        appends_left: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl FailingBackend {
        fn failing_after(appends: usize) -> Self {
            FailingBackend {
                inner: MemBackend::new(),
                appends_left: std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(appends)),
            }
        }
    }

    impl hh_storage::LogBackend for FailingBackend {
        fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            use std::sync::atomic::Ordering;
            let left = self.appends_left.load(Ordering::SeqCst);
            if left == 0 {
                return Err(std::io::Error::other("injected append failure"));
            }
            self.appends_left.store(left - 1, Ordering::SeqCst);
            self.inner.append(bytes)
        }
        fn read_all(&self) -> std::io::Result<Vec<u8>> {
            self.inner.read_all()
        }
        fn rewrite(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            self.inner.rewrite(bytes)
        }
        fn len(&self) -> usize {
            hh_storage::LogBackend::len(&self.inner)
        }
    }

    #[test]
    fn storage_failure_fail_stops_instead_of_panicking() {
        // A solo validator on a backend that dies after 3 appends: the
        // node must surface Output::StorageError, halt, and never panic.
        let committee = Committee::new_equal_stake(1);
        let backend = FailingBackend::failing_after(3);
        let appends_left = backend.appends_left.clone();
        let mut v: Validator<FailingBackend> =
            Validator::new(committee, ValidatorId(0), fast_config(), Some(backend));
        let mut timers: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut storage_errors = Vec::new();
        let absorb = |out: Vec<Output>,
                      now: u64,
                      timers: &mut BinaryHeap<Reverse<(u64, u64)>>,
                      errors: &mut Vec<&'static str>| {
            for o in out {
                match o {
                    Output::SetTimer { delay_us, token } => {
                        timers.push(Reverse((now + delay_us, token)));
                    }
                    Output::StorageError { context, detail } => {
                        assert!(detail.contains("injected append failure"), "{detail}");
                        errors.push(context);
                    }
                    Output::Send(_, _) | Output::Broadcast(_) => {}
                }
            }
        };

        let out = v.on_start(0);
        absorb(out, 0, &mut timers, &mut storage_errors);
        let mut now = 0u64;
        while let Some(Reverse((at, token))) = timers.peek().copied() {
            if at > 2_000_000 {
                break;
            }
            timers.pop();
            now = at;
            let out = v.on_timer(token, now);
            absorb(out, now, &mut timers, &mut storage_errors);
        }

        assert_eq!(storage_errors.len(), 1, "one typed error, then silence: {storage_errors:?}");
        assert!(
            storage_errors[0] == "persist vertex" || storage_errors[0] == "persist checkpoint",
            "{storage_errors:?}"
        );
        assert_eq!(v.metrics().storage_errors, 1);
        assert!(v.is_halted(), "the node fail-stops");
        let proposals_at_halt = v.metrics().proposals;
        // Further input is ignored without panicking.
        let out = v.on_message(
            ValidatorId(0),
            &ValidatorMessage::Submit(Transaction::new(0, 0, now)),
            now,
        );
        assert!(out.is_empty(), "halted node emits nothing");
        assert_eq!(v.metrics().proposals, proposals_at_halt);

        // A restart against a repaired store clears the halt and resumes.
        appends_left.store(usize::MAX, std::sync::atomic::Ordering::SeqCst);
        let out = v.on_restart(now + 1_000);
        assert!(!v.is_halted());
        assert!(!out.is_empty(), "restart resumes the protocol");
        assert!(!v.metrics().recovery_divergence);
    }

    #[test]
    fn block_bytes_cap_bounds_batches_by_payload() {
        // 1000-byte payloads (1020 wire bytes each) under a 4 KiB block
        // cap: at most 4 transactions fit a block, although
        // max_block_txs would allow all 10 at once.
        let config = ValidatorConfig {
            max_block_bytes: 4_096,
            max_block_txs: 100,
            min_round_delay_us: 100_000,
            ..fast_config()
        };
        let mut pump = SoloPump::new(config, None);
        pump.start();
        for i in 0..10 {
            pump.submit(Transaction::with_payload(0, i, 0, 1_000));
        }
        pump.run_until(2_000_000);
        let m = pump.v.metrics();
        assert_eq!(m.own_txs_committed, 10, "everything commits across several blocks");
        assert_eq!(m.bytes_proposed, 10 * 1_020, "all batched bytes are accounted");
        assert_eq!(m.bytes_committed, 10 * 1_020);
        for rec in &m.exec_records {
            assert_eq!(rec.bytes, 1_020);
        }
        // With 100 ms pacing and all 10 txs pooled up front, an
        // unbounded proposer drains the pool into one block (one commit
        // instant); the byte cap forces several blocks across rounds.
        let commit_instants = m
            .exec_records
            .iter()
            .map(|r| r.committed_at)
            .collect::<std::collections::BTreeSet<_>>();
        assert!(
            commit_instants.len() >= 2,
            "payloads must spread across blocks, got commit instants {commit_instants:?}"
        );
    }

    #[test]
    fn oversized_transaction_still_ships_alone() {
        // One transaction bigger than the whole block cap must still be
        // proposed (alone) instead of wedging the pool forever.
        let config = ValidatorConfig { max_block_bytes: 64, max_block_txs: 100, ..fast_config() };
        let mut pump = SoloPump::new(config, None);
        pump.start();
        pump.submit(Transaction::with_payload(0, 0, 0, 10_000));
        pump.submit(Transaction::with_payload(0, 1, 0, 10_000));
        pump.run_until(1_000_000);
        assert_eq!(pump.v.metrics().own_txs_committed, 2);
    }

    #[test]
    fn backpressure_limits_uncommitted() {
        // Tiny budget: only 3 txs may be in flight.
        let config = ValidatorConfig { max_uncommitted_txs: 3, max_block_txs: 10, ..fast_config() };
        let mut pump = SoloPump::new(config, None);
        pump.start();
        for i in 0..9 {
            pump.submit(Transaction::new(0, i, 0));
        }
        pump.run_until(2_000_000);
        // All eventually commit (budget releases on commit), but never more
        // than 3 in one block.
        assert_eq!(pump.v.metrics().own_txs_committed, 9);
    }

    #[test]
    fn hammerhead_config_builds_and_runs_solo() {
        let config = ValidatorConfig {
            schedule: ScheduleConfig::Hammerhead(crate::HammerheadConfig {
                period_rounds: 4,
                ..Default::default()
            }),
            ..fast_config()
        };
        let mut pump = SoloPump::new(config, None);
        pump.start();
        pump.run_until(1_000_000);
        assert!(pump.v.commit_count() > 4);
        let policy = pump.v.hammerhead_policy().expect("hammerhead policy");
        assert!(policy.epoch() >= 1, "schedule rotated for solo committee");
    }
}
