//! The HammerHead schedule policy: epochs, score finalization, retroactive
//! switching (Algorithm 2's `updateSchedule` + the schedule bookkeeping).

use crate::config::{HammerheadConfig, ScoringRule};
use crate::schedule::compute_next_schedule;
use crate::scores::ReputationScores;
use hh_consensus::{ScheduleDecision, SchedulePolicy, SlotSchedule};
use hh_dag::{Dag, SubDagScratch};
use hh_types::{Committee, DigestSet, Round, ValidatorId, Vertex};

/// Bonus awarded to a committed anchor's author under
/// [`ScoringRule::LeaderOutcome`].
const LEADER_COMMIT_BONUS: u64 = 10;

/// Monitoring record for one completed schedule epoch.
#[derive(Clone, Debug)]
pub struct EpochSummary {
    /// The epoch that just *ended* (scores below were accumulated in it).
    pub epoch: u64,
    /// First round of the new schedule.
    pub new_initial_round: Round,
    /// Validators who lost their slots (the `B` set).
    pub excluded: Vec<ValidatorId>,
    /// Validators who gained those slots (the `G` set).
    pub promoted: Vec<ValidatorId>,
    /// Final scores of the ended epoch, indexed by validator id.
    pub final_scores: Vec<u64>,
}

/// One entry of the schedule history: `slots` governs rounds
/// `[initial_round, next_entry.initial_round)`.
#[derive(Clone, Debug)]
struct ScheduleEntry {
    initial_round: Round,
    slots: SlotSchedule,
}

/// The reputation-based leader schedule (the paper's contribution).
///
/// Plugs into [`hh_consensus::Bullshark`] via [`SchedulePolicy`]. All state
/// transitions are driven exclusively by the committed sequence, so every
/// honest validator's policy walks through identical schedules
/// (Proposition 1).
#[derive(Clone, Debug)]
pub struct HammerheadPolicy {
    committee: Committee,
    config: HammerheadConfig,
    /// Piecewise schedule history; the last entry is active. Keyed by
    /// initial round so `leader_at` stays well-defined for rounds committed
    /// late across a switch (the retroactive re-interpretation of §3.1).
    schedules: Vec<ScheduleEntry>,
    scores: ReputationScores,
    /// Cross-epoch smoothed scores (milli-points), maintained only under
    /// [`ScoringRule::VoteEma`].
    ema_milli: Vec<u64>,
    epoch: u64,
    history: Vec<EpochSummary>,
    /// Reusable traversal state for the epoch-boundary pending walk.
    scratch: SubDagScratch,
}

impl HammerheadPolicy {
    /// Creates the policy with the unbiased initial schedule S0
    /// (stake-weighted slots, seeded permutation — §3).
    ///
    /// # Panics
    ///
    /// Panics if `config.period_rounds < 2`: anchors arrive every 2 rounds,
    /// so shorter epochs would re-trigger the switch on the same anchor and
    /// the engine's re-walk would never make progress.
    pub fn new(committee: Committee, config: HammerheadConfig) -> Self {
        assert!(
            config.period_rounds >= 2,
            "period_rounds must be at least 2 (one anchor per epoch)"
        );
        let s0 = SlotSchedule::permuted(&committee, config.schedule_seed);
        let scores = ReputationScores::new(&committee);
        let n = committee.size();
        HammerheadPolicy {
            committee,
            config,
            schedules: vec![ScheduleEntry { initial_round: Round(0), slots: s0 }],
            scores,
            ema_milli: vec![0; n],
            epoch: 0,
            history: Vec::new(),
            scratch: SubDagScratch::new(),
        }
    }

    /// The live (not yet finalized) scores of the current epoch.
    pub fn scores(&self) -> &ReputationScores {
        &self.scores
    }

    /// Cross-epoch smoothed scores in milli-points (only meaningful under
    /// [`ScoringRule::VoteEma`]).
    pub fn ema_scores_milli(&self) -> &[u64] {
        &self.ema_milli
    }

    /// Completed-epoch records, oldest first.
    pub fn epoch_history(&self) -> &[EpochSummary] {
        &self.history
    }

    /// The active slot table.
    pub fn active_schedule(&self) -> &SlotSchedule {
        &self.schedules.last().expect("never empty").slots
    }

    /// The schedule entry covering `round`.
    fn entry_for(&self, round: Round) -> &ScheduleEntry {
        // Entries are ascending by initial_round; pick the last one at or
        // below `round`. Rounds before round 0 cannot occur.
        self.schedules
            .iter()
            .rev()
            .find(|e| e.initial_round <= round)
            .unwrap_or_else(|| self.schedules.first().expect("never empty"))
    }

    /// Counts `vertex`'s vote (if any) toward the current epoch.
    ///
    /// A vote is a parent edge from an odd-round vertex to the previous
    /// (even) round's leader vertex. Only leader rounds at or after the
    /// active schedule's initial round count: earlier rounds belong to a
    /// closed epoch, which prevents double counting across switches.
    ///
    /// The edge test reads the DAG's reachability bitset
    /// ([`Dag::links_to_author`]): one probe instead of a digest scan
    /// over the parent list, and no leader-vertex lookup on the miss path.
    fn accumulate_vote(&mut self, vertex: &Vertex, dag: &Dag) {
        let round = vertex.round();
        if round.is_even() || round.0 == 0 {
            return;
        }
        let leader_round = round - 1;
        if leader_round < self.initial_round() {
            return;
        }
        let leader = self.leader_at(leader_round);
        if dag.links_to_author(vertex, leader) {
            self.scores.record_vote(vertex.author());
        }
    }

    fn stake_bound(&self) -> hh_types::Stake {
        self.config.max_excluded_stake.unwrap_or_else(|| self.committee.max_faulty_stake())
    }
}

impl SchedulePolicy for HammerheadPolicy {
    fn leader_at(&self, round: Round) -> ValidatorId {
        self.entry_for(round).slots.leader_at(round)
    }

    fn initial_round(&self) -> Round {
        self.schedules.last().expect("never empty").initial_round
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn before_order_anchor(
        &mut self,
        anchor: &Vertex,
        dag: &Dag,
        ordered: &DigestSet,
    ) -> ScheduleDecision {
        let boundary = self.initial_round() + self.config.period_rounds;
        if anchor.round() < boundary {
            // Not switching: under the leader-outcome rule, the committed
            // anchor's author earns the bonus now.
            if self.config.scoring_rule == ScoringRule::LeaderOutcome {
                self.scores.add(anchor.author(), LEADER_COMMIT_BONUS);
            }
            return ScheduleDecision::Continue;
        }

        // Epoch boundary crossed (Algorithm 2 lines 30-33). Finalize the
        // epoch's scores from committed information only: the accumulated
        // ordered vertices plus the anchor's still-unordered causal history
        // — which Observation 2 makes identical at every honest validator —
        // up to but excluding the committed leader itself.
        if matches!(self.config.scoring_rule, ScoringRule::VoteBased | ScoringRule::VoteEma { .. })
        {
            // The indexed walk already emits canonically — ascending
            // (round, author) — so the votes accumulate in deterministic
            // order with no sorting and no vertex clones.
            let pending =
                dag.causal_sub_dag_with(anchor, |d| ordered.contains(d), &mut self.scratch);
            for v in pending.iter().filter(|v| v.digest() != anchor.digest()) {
                self.accumulate_vote(v, dag);
            }
        }

        // Under EMA scoring, the ranking input is the smoothed cross-epoch
        // score; plain integer arithmetic keeps it deterministic.
        let ranking_scores =
            if let ScoringRule::VoteEma { alpha_percent } = self.config.scoring_rule {
                let alpha = alpha_percent.min(100) as u64;
                let mut smoothed = ReputationScores::new(&self.committee);
                for id in self.committee.ids() {
                    let epoch_milli = self.scores.get(id) * 1000;
                    let prev_milli = self.ema_milli[id.index()];
                    let next = (alpha * epoch_milli + (100 - alpha) * prev_milli) / 100;
                    self.ema_milli[id.index()] = next;
                    smoothed.add(id, next);
                }
                smoothed
            } else {
                self.scores.clone()
            };

        // The swap base: the production implementation recomputes the
        // bad→good swap against S0 every epoch (validators leaving the
        // bottom set regain their base slots — the re-inclusion path);
        // the incremental rule patches the active schedule cumulatively.
        let prev = if self.config.swap_from_base {
            self.schedules.first().expect("never empty").slots.clone()
        } else {
            self.active_schedule().clone()
        };
        let change =
            compute_next_schedule(&prev, &ranking_scores, &self.committee, self.stake_bound());
        self.history.push(EpochSummary {
            epoch: self.epoch,
            new_initial_round: anchor.round(),
            excluded: change.excluded.clone(),
            promoted: change.promoted.clone(),
            final_scores: self.scores.as_slice().to_vec(),
        });
        self.schedules
            .push(ScheduleEntry { initial_round: anchor.round(), slots: change.schedule });
        self.epoch += 1;
        self.scores.reset();
        ScheduleDecision::Switched
    }

    fn on_vertex_ordered(&mut self, vertex: &Vertex, dag: &Dag) {
        if matches!(self.config.scoring_rule, ScoringRule::VoteBased | ScoringRule::VoteEma { .. })
        {
            self.accumulate_vote(vertex, dag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_consensus::Bullshark;
    use hh_dag::testkit::DagBuilder;

    fn committee4() -> Committee {
        Committee::new_equal_stake(4)
    }

    fn engine_with(c: &Committee, config: HammerheadConfig) -> Bullshark<HammerheadPolicy> {
        Bullshark::new(c.clone(), HammerheadPolicy::new(c.clone(), config))
    }

    fn feed_all(engine: &mut Bullshark<HammerheadPolicy>, dag: &Dag, max: u64) {
        for r in 0..=max {
            let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
            vs.sort_by_key(|v| v.author());
            for v in vs {
                engine.process_vertex(&v, dag);
            }
        }
    }

    #[test]
    fn epoch_rolls_over_at_period_boundary() {
        let c = committee4();
        let config = HammerheadConfig { period_rounds: 4, ..Default::default() };
        let mut e = engine_with(&c, config);
        let mut b = DagBuilder::new(c);
        b.extend_full_rounds(13);
        let dag = b.into_dag();
        feed_all(&mut e, &dag, 12);
        // Anchors at rounds 0,2,4,...; boundary at initial+4: the anchor at
        // round 4 triggers S0→S1, round 8 S1→S2, round 12 commits at r14.
        assert!(e.policy().epoch() >= 2, "epoch = {}", e.policy().epoch());
        let hist = e.policy().epoch_history();
        assert_eq!(hist[0].new_initial_round, Round(4));
        assert_eq!(hist[1].new_initial_round, Round(8));
    }

    #[test]
    fn full_dag_everyone_scores_equally() {
        let c = committee4();
        let config = HammerheadConfig { period_rounds: 8, ..Default::default() };
        let mut e = engine_with(&c, config);
        let mut b = DagBuilder::new(c);
        b.extend_full_rounds(13);
        let dag = b.into_dag();
        feed_all(&mut e, &dag, 12);
        let hist = e.policy().epoch_history();
        assert!(!hist.is_empty());
        let scores = &hist[0].final_scores;
        // Fully-connected DAG: every validator voted for every leader; all
        // scores in the closed epoch are equal and positive.
        assert!(scores.iter().all(|s| *s == scores[0] && *s > 0), "{scores:?}");
    }

    #[test]
    fn silent_validator_scores_zero_and_is_excluded() {
        let c = committee4();
        let config = HammerheadConfig { period_rounds: 4, ..Default::default() };
        let mut e = engine_with(&c, config.clone());

        // v3 authors vertices but never links to leaders (withholds votes):
        // exclude the previous leader from v3's parent set each odd round.
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(1); // round 0
        let p0 = HammerheadPolicy::new(c.clone(), config);
        for r in 1..=12u64 {
            let round = Round(r);
            if !round.is_even() {
                let leader = p0.leader_at(round - 1);
                if leader != ValidatorId(3) {
                    b.extend_round_custom(&c.ids().collect::<Vec<_>>(), move |author| {
                        if author == ValidatorId(3) {
                            Some(vec![leader])
                        } else {
                            None
                        }
                    });
                    continue;
                }
            }
            b.extend_full_rounds(1);
        }
        let dag = b.into_dag();
        feed_all(&mut e, &dag, 12);
        let hist = e.policy().epoch_history();
        assert!(!hist.is_empty());
        // v3 withheld votes, so its score is strictly the lowest and it is
        // the excluded validator of the first epoch.
        let scores = &hist[0].final_scores;
        assert!(scores[3] < scores[0].min(scores[1]).min(scores[2]), "{scores:?}");
        assert_eq!(hist[0].excluded, vec![ValidatorId(3)]);
        // Note: leader_at for v3's slots now maps elsewhere.
        let excluded_slots = e.policy().active_schedule().slot_count(ValidatorId(3));
        assert_eq!(excluded_slots, 0);
    }

    /// Builds a DAG where v3 withholds votes during epoch 0 (rounds
    /// 1..=4) and participates fully afterwards, and feeds it to an
    /// engine with the given config.
    fn engine_after_rebound(config: HammerheadConfig) -> Bullshark<HammerheadPolicy> {
        let c = committee4();
        let p0 = HammerheadPolicy::new(c.clone(), config.clone());
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(1); // round 0
        for r in 1..=12u64 {
            let round = Round(r);
            if !round.is_even() && r <= 4 {
                let leader = p0.leader_at(round - 1);
                if leader != ValidatorId(3) {
                    b.extend_round_custom(&c.ids().collect::<Vec<_>>(), move |author| {
                        if author == ValidatorId(3) {
                            Some(vec![leader])
                        } else {
                            None
                        }
                    });
                    continue;
                }
            }
            b.extend_full_rounds(1);
        }
        let dag = b.into_dag();
        let mut e = engine_with(&c, config);
        feed_all(&mut e, &dag, 12);
        e
    }

    #[test]
    fn swap_from_base_reincludes_a_rebounded_validator() {
        // v3 loses its slots in epoch 0; from epoch 1 on its score ties
        // everyone's. Epoch 1's switch puts v3 in G (highest tied id not
        // in B), and the two swap bases differ in what that restores:
        //
        // * incremental (default): v3 only receives the demoted v0's
        //   single slot — its own base slot is gone for good;
        // * swap-from-base (the production leader-swap-table semantics):
        //   v3 regains its base slot *and* takes v0's, because the swap
        //   is recomputed against S0 every epoch.
        let config = HammerheadConfig { period_rounds: 4, ..Default::default() };
        let incremental = engine_after_rebound(config.clone());
        assert!(incremental.policy().epoch() >= 2);
        let sched = incremental.policy().active_schedule();
        assert_eq!(sched.slot_count(ValidatorId(3)), 1, "only the swapped slot comes back");
        assert_eq!(sched.slot_count(ValidatorId(2)), 2, "epoch 0's promotee keeps the spoils");

        let rebased = engine_after_rebound(HammerheadConfig { swap_from_base: true, ..config });
        assert!(rebased.policy().epoch() >= 2);
        let sched = rebased.policy().active_schedule();
        assert_eq!(sched.slot_count(ValidatorId(3)), 2, "base slot restored plus v0's");
        assert_eq!(sched.slot_count(ValidatorId(2)), 1, "promotions do not compound");
    }

    #[test]
    fn schedule_history_keeps_old_rounds_interpretable() {
        let c = committee4();
        let config = HammerheadConfig { period_rounds: 4, ..Default::default() };
        let mut e = engine_with(&c, config);
        let mut b = DagBuilder::new(c);
        b.extend_full_rounds(13);
        let dag = b.into_dag();

        // Record pre-switch leader assignments.
        let before: Vec<ValidatorId> = (0..3).map(|i| e.policy().leader_at(Round(i * 2))).collect();
        feed_all(&mut e, &dag, 12);
        assert!(e.policy().epoch() >= 1);
        // Old rounds still resolve to the same leaders after switches.
        let after: Vec<ValidatorId> = (0..3).map(|i| e.policy().leader_at(Round(i * 2))).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn leader_outcome_rule_rewards_committed_leaders() {
        let c = committee4();
        let config = HammerheadConfig {
            period_rounds: 8,
            scoring_rule: ScoringRule::LeaderOutcome,
            ..Default::default()
        };
        let mut e = engine_with(&c, config);
        let mut b = DagBuilder::new(c);
        b.extend_full_rounds(9);
        let dag = b.into_dag();
        feed_all(&mut e, &dag, 8);
        // Committed anchors at rounds 0,2,4,6 → their authors hold bonuses.
        let committed_authors: std::collections::HashSet<ValidatorId> =
            e.committed_anchors().iter().map(|a| a.author).collect();
        for author in committed_authors {
            assert!(e.policy().scores().get(author) >= LEADER_COMMIT_BONUS);
        }
    }

    #[test]
    fn deep_catch_up_crosses_multiple_epochs_in_one_walk() {
        // Proposition 1's induction case: anchors fail to commit directly
        // for a long stretch (votes stay below validity), then one late
        // vertex commits transitively — the single `process_vertex` call
        // must walk back through several epoch boundaries, switching
        // schedules mid-walk and re-interpreting the DAG each time.
        let c = committee4();
        let config = HammerheadConfig { period_rounds: 4, ..Default::default() };
        let probe = HammerheadPolicy::new(c.clone(), config.clone());

        // Rounds 1..=13: at every odd round, all but one validator exclude
        // the previous leader from their parents (1 vote < validity 2), so
        // no anchor commits directly under any schedule.
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(1);
        for r in 1..=13u64 {
            let round = Round(r);
            if round.is_even() {
                b.extend_full_rounds(1);
                continue;
            }
            // The leader under ANY schedule the engine might be in — use
            // S0's leader; what matters is keeping direct votes scarce.
            let leader = probe.leader_at(round - 1);
            let committee_ids = c.ids().collect::<Vec<_>>();
            let voter = committee_ids.iter().find(|id| **id != leader).copied().expect("n > 1");
            b.extend_round_custom(&committee_ids, move |author| {
                if author == voter {
                    None
                } else {
                    Some(vec![leader])
                }
            });
        }
        // Rounds 14..=16 fully connected: round 16's vertices finally carry
        // validity votes for round 14's anchor, unleashing the walk.
        b.extend_full_rounds(3);
        let dag = b.into_dag();

        let mut e = engine_with(&c, config);
        for r in 0..=16u64 {
            let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
            vs.sort_by_key(|v| v.author());
            for v in vs {
                e.process_vertex(&v, &dag);
            }
        }
        // The walk crossed at least two epoch boundaries (rounds 4 and 8
        // under T=4) and still committed a consistent sequence.
        assert!(e.policy().epoch() >= 2, "epochs: {}", e.policy().epoch());
        assert!(e.commit_count() >= 1);
        // Anchor rounds strictly increase (total order sanity).
        let rounds: Vec<u64> = e.committed_anchors().iter().map(|a| a.round.0).collect();
        let mut sorted = rounds.clone();
        sorted.sort();
        assert_eq!(rounds, sorted);

        // A second engine fed in reverse author order agrees exactly.
        let mut e2 = engine_with(&c, HammerheadConfig { period_rounds: 4, ..Default::default() });
        for r in 0..=16u64 {
            let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
            vs.sort_by_key(|v| std::cmp::Reverse(v.author()));
            for v in vs {
                e2.process_vertex(&v, &dag);
            }
        }
        assert_eq!(e.chain_hash(), e2.chain_hash());
        assert_eq!(e.policy().epoch(), e2.policy().epoch());
    }

    #[test]
    fn ema_alpha_100_matches_vote_based() {
        let c = committee4();
        let mut dag_builder = DagBuilder::new(c.clone());
        dag_builder.extend_full_rounds(13);
        let dag = dag_builder.into_dag();

        let vote = HammerheadConfig { period_rounds: 4, ..Default::default() };
        let ema = HammerheadConfig {
            period_rounds: 4,
            scoring_rule: ScoringRule::VoteEma { alpha_percent: 100 },
            ..Default::default()
        };
        let mut ev = engine_with(&c, vote);
        let mut ee = engine_with(&c, ema);
        feed_all(&mut ev, &dag, 12);
        feed_all(&mut ee, &dag, 12);
        assert_eq!(ev.chain_hash(), ee.chain_hash());
        assert_eq!(ev.policy().active_schedule().slots(), ee.policy().active_schedule().slots());
        // EMA with alpha=1 carries score×1000 exactly.
        let hist = ee.policy().epoch_history();
        assert!(!hist.is_empty());
    }

    #[test]
    fn ema_smooths_across_epochs() {
        // A validator with a perfect first epoch and an empty second epoch
        // keeps a positive smoothed score; pure per-epoch scores forget.
        let c = committee4();
        let config = HammerheadConfig {
            period_rounds: 4,
            scoring_rule: ScoringRule::VoteEma { alpha_percent: 50 },
            ..Default::default()
        };
        let mut e = engine_with(&c, config);
        let mut b = DagBuilder::new(c);
        b.extend_full_rounds(13);
        let dag = b.into_dag();
        feed_all(&mut e, &dag, 12);
        assert!(e.policy().epoch() >= 2);
        // Fully-connected DAG: every epoch every validator scored; EMA is
        // positive and equal across validators.
        let ema = e.policy().ema_scores_milli();
        assert!(ema.iter().all(|m| *m > 0 && *m == ema[0]), "{ema:?}");
    }

    #[test]
    fn agreement_across_validators_with_switches() {
        let c = committee4();
        let config = HammerheadConfig { period_rounds: 4, ..Default::default() };
        let mut b = DagBuilder::new(c.clone());
        b.extend_full_rounds(17);
        let dag = b.into_dag();

        let mut e1 = engine_with(&c, config.clone());
        let mut e2 = engine_with(&c, config);
        feed_all(&mut e1, &dag, 16);
        // e2 sees vertices in a different (reverse-author) order.
        for r in 0..=16u64 {
            let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
            vs.sort_by_key(|v| std::cmp::Reverse(v.author()));
            for v in vs {
                e2.process_vertex(&v, &dag);
            }
        }
        assert_eq!(e1.chain_hash(), e2.chain_hash());
        assert_eq!(e1.policy().epoch(), e2.policy().epoch());
        assert_eq!(e1.policy().active_schedule().slots(), e2.policy().active_schedule().slots());
    }
}
