//! The schedule switch (§3): replace the worst-scoring validators' leader
//! slots with the best-scoring ones.

use crate::scores::ReputationScores;
use hh_consensus::SlotSchedule;
use hh_types::{Committee, Stake, ValidatorId};

/// The outcome of one schedule recomputation: the new slot table plus the
/// `B`/`G` sets, for monitoring and tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleChange {
    /// The new schedule `S'`.
    pub schedule: SlotSchedule,
    /// The demoted set `B` (lowest scores, at most the stake bound).
    pub excluded: Vec<ValidatorId>,
    /// The promoted set `G` (highest scores, `|G| = |B|`).
    pub promoted: Vec<ValidatorId>,
}

/// Computes `S'` from `S` per the paper's rule:
///
/// 1. Rank validators by `(score, id)` ascending.
/// 2. `B` = lowest-ranked validators, greedily added while their total
///    stake stays within `max_excluded_stake` (the paper's "at most `f`
///    validators (by stake)").
/// 3. `G` = highest-ranked validators not in `B`, `|G| = |B|` (shrinking
///    `B` if the committee is too small to keep the sets disjoint).
/// 4. Every slot of `S` owned by a `B` member is replaced round-robin by
///    `G` members; all other slots are untouched (the `pos` table update).
///
/// Ties resolve deterministically by validator id, so every honest
/// validator computes the identical `S'` from the identical scores.
pub fn compute_next_schedule(
    prev: &SlotSchedule,
    scores: &ReputationScores,
    committee: &Committee,
    max_excluded_stake: Stake,
) -> ScheduleChange {
    let ranked = scores.ranked_ascending();

    // Step 2: greedy B from the bottom, bounded by stake.
    let mut excluded: Vec<ValidatorId> = Vec::new();
    let mut b_stake = Stake(0);
    for (id, _) in &ranked {
        let s = committee.stake_of(*id);
        if b_stake + s <= max_excluded_stake {
            excluded.push(*id);
            b_stake += s;
        } else {
            break;
        }
    }

    // Step 3: G from the top, disjoint from B, |G| = |B|.
    let mut promoted: Vec<ValidatorId> = Vec::new();
    for (id, _) in ranked.iter().rev() {
        if promoted.len() == excluded.len() {
            break;
        }
        if !excluded.contains(id) {
            promoted.push(*id);
        }
    }
    // Small committees: keep the sets the same size and disjoint.
    excluded.truncate(promoted.len());

    // Step 4: round-robin slot replacement.
    let mut slots = prev.slots().to_vec();
    if !promoted.is_empty() {
        let mut g_cursor = 0usize;
        for slot in slots.iter_mut() {
            if excluded.contains(slot) {
                *slot = promoted[g_cursor % promoted.len()];
                g_cursor += 1;
            }
        }
    }

    ScheduleChange { schedule: SlotSchedule::from_slots(slots), excluded, promoted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committee(n: usize) -> Committee {
        Committee::new_equal_stake(n)
    }

    fn scores_from(c: &Committee, values: &[u64]) -> ReputationScores {
        let mut s = ReputationScores::new(c);
        for (i, v) in values.iter().enumerate() {
            s.add(ValidatorId(i as u16), *v);
        }
        s
    }

    #[test]
    fn worst_scorers_lose_slots_to_best() {
        let c = committee(4); // f = 1
        let prev = SlotSchedule::round_robin(&c);
        // v2 crashed (score 0); v0 is the most active.
        let scores = scores_from(&c, &[10, 5, 0, 5]);
        let change = compute_next_schedule(&prev, &scores, &c, c.max_faulty_stake());
        assert_eq!(change.excluded, vec![ValidatorId(2)]);
        assert_eq!(change.promoted, vec![ValidatorId(0)]);
        // v2's slot now belongs to v0; everyone else keeps theirs.
        assert_eq!(change.schedule.slot_count(ValidatorId(2)), 0);
        assert_eq!(change.schedule.slot_count(ValidatorId(0)), 2);
        assert_eq!(change.schedule.slot_count(ValidatorId(1)), 1);
        assert_eq!(change.schedule.slot_count(ValidatorId(3)), 1);
        // Slot count is conserved.
        assert_eq!(change.schedule.slots().len(), prev.slots().len());
    }

    #[test]
    fn stake_bound_limits_exclusions() {
        let c = committee(10); // f = 3
        let prev = SlotSchedule::round_robin(&c);
        // Five validators at score 0, but only f=3 may be excluded.
        let scores = scores_from(&c, &[0, 0, 0, 0, 0, 9, 9, 9, 9, 9]);
        let change = compute_next_schedule(&prev, &scores, &c, c.max_faulty_stake());
        assert_eq!(change.excluded.len(), 3);
        assert_eq!(
            change.excluded,
            vec![ValidatorId(0), ValidatorId(1), ValidatorId(2)],
            "ties break by id"
        );
        assert_eq!(change.promoted.len(), 3);
    }

    #[test]
    fn promoted_cycle_round_robin_over_slots() {
        let c = committee(10);
        let prev = SlotSchedule::round_robin(&c);
        let scores = scores_from(&c, &[0, 0, 0, 5, 5, 5, 5, 9, 9, 9]);
        let change = compute_next_schedule(&prev, &scores, &c, c.max_faulty_stake());
        assert_eq!(change.excluded, vec![ValidatorId(0), ValidatorId(1), ValidatorId(2)]);
        // G ranked descending: v9, v8, v7 — one slot each (3 B-slots).
        for promoted in &change.promoted {
            assert_eq!(change.schedule.slot_count(*promoted), 2, "{promoted}");
        }
    }

    #[test]
    fn b_and_g_always_disjoint() {
        // Tiny committee where naive selection would overlap.
        let c = committee(4);
        let prev = SlotSchedule::round_robin(&c);
        let scores = scores_from(&c, &[0, 0, 0, 0]); // everyone tied at 0
        let change = compute_next_schedule(&prev, &scores, &c, c.max_faulty_stake());
        for e in &change.excluded {
            assert!(!change.promoted.contains(e));
        }
        assert_eq!(change.excluded.len(), change.promoted.len());
    }

    #[test]
    fn zero_exclusion_bound_changes_nothing() {
        let c = committee(4);
        let prev = SlotSchedule::round_robin(&c);
        let scores = scores_from(&c, &[0, 1, 2, 3]);
        let change = compute_next_schedule(&prev, &scores, &c, Stake(0));
        assert!(change.excluded.is_empty());
        assert!(change.promoted.is_empty());
        assert_eq!(change.schedule, prev);
    }

    #[test]
    fn weighted_stake_respects_bound() {
        // v0 is a whale (stake 4); excluding it alone would exceed f.
        let c = hh_types::CommitteeBuilder::new()
            .add(Stake(4))
            .add(Stake(1))
            .add(Stake(1))
            .add(Stake(1))
            .build()
            .unwrap(); // total 7, f = 2
        let prev = SlotSchedule::round_robin(&c);
        // Whale has the worst score but cannot be excluded (stake 4 > f=2);
        // greedy selection skips... the greedy rule stops at the first
        // validator that does not fit, so nothing after the whale enters B.
        let scores = scores_from(&c, &[0, 1, 2, 3]);
        let change = compute_next_schedule(&prev, &scores, &c, c.max_faulty_stake());
        assert!(change.excluded.is_empty(), "{:?}", change.excluded);
    }

    #[test]
    fn determinism_same_inputs_same_schedule() {
        let c = committee(7);
        let prev = SlotSchedule::permuted(&c, 3);
        let scores = scores_from(&c, &[3, 1, 4, 1, 5, 9, 2]);
        let a = compute_next_schedule(&prev, &scores, &c, c.max_faulty_stake());
        let b = compute_next_schedule(&prev, &scores, &c, c.max_faulty_stake());
        assert_eq!(a, b);
    }
}
