//! Reputation scores (§3): the on-chain activity metric.

use hh_types::{Committee, ValidatorId};
use std::fmt;

/// Per-validator reputation accumulated during one schedule epoch.
///
/// Scores are a pure function of the committed sub-DAG sequence: both the
/// vote-counting rule and the leader-outcome rule only look at ordered
/// vertices, which all honest validators observe identically
/// (Observation 2), so schedules derived from scores agree everywhere.
///
/// ```
/// use hammerhead::ReputationScores;
/// use hh_types::{Committee, ValidatorId};
///
/// let committee = Committee::new_equal_stake(4);
/// let mut scores = ReputationScores::new(&committee);
/// scores.record_vote(ValidatorId(2));
/// scores.record_vote(ValidatorId(2));
/// assert_eq!(scores.get(ValidatorId(2)), 2);
/// assert_eq!(scores.get(ValidatorId(0)), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReputationScores {
    scores: Vec<u64>,
}

impl ReputationScores {
    /// Zeroed scores for every committee member.
    pub fn new(committee: &Committee) -> Self {
        ReputationScores { scores: vec![0; committee.size()] }
    }

    /// +1: `voter` voted for a leader's proposal (the paper's rule).
    pub fn record_vote(&mut self, voter: ValidatorId) {
        if let Some(s) = self.scores.get_mut(voter.index()) {
            *s += 1;
        }
    }

    /// Adds `points` (used by the leader-outcome ablation rule).
    pub fn add(&mut self, validator: ValidatorId, points: u64) {
        if let Some(s) = self.scores.get_mut(validator.index()) {
            *s += points;
        }
    }

    /// The score of `validator` (0 for foreign ids).
    pub fn get(&self, validator: ValidatorId) -> u64 {
        self.scores.get(validator.index()).copied().unwrap_or(0)
    }

    /// All scores, indexed by validator id.
    pub fn as_slice(&self) -> &[u64] {
        &self.scores
    }

    /// Resets every score to zero (epoch rollover).
    pub fn reset(&mut self) {
        self.scores.iter_mut().for_each(|s| *s = 0);
    }

    /// Validators sorted ascending by `(score, id)` — the deterministic
    /// order used to pick the `B` (worst) set; reverse for `G`.
    pub fn ranked_ascending(&self) -> Vec<(ValidatorId, u64)> {
        let mut ranked: Vec<(ValidatorId, u64)> =
            self.scores.iter().enumerate().map(|(i, s)| (ValidatorId(i as u16), *s)).collect();
        ranked.sort_by_key(|(id, s)| (*s, *id));
        ranked
    }

    /// Sum of all scores (monitoring).
    pub fn total(&self) -> u64 {
        self.scores.iter().sum()
    }
}

impl fmt::Display for ReputationScores {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.scores.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "v{i}:{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn votes_accumulate() {
        let c = Committee::new_equal_stake(3);
        let mut s = ReputationScores::new(&c);
        s.record_vote(ValidatorId(0));
        s.record_vote(ValidatorId(0));
        s.record_vote(ValidatorId(1));
        assert_eq!(s.as_slice(), &[2, 1, 0]);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn foreign_ids_ignored() {
        let c = Committee::new_equal_stake(2);
        let mut s = ReputationScores::new(&c);
        s.record_vote(ValidatorId(5));
        s.add(ValidatorId(9), 100);
        assert_eq!(s.total(), 0);
        assert_eq!(s.get(ValidatorId(5)), 0);
    }

    #[test]
    fn reset_zeroes() {
        let c = Committee::new_equal_stake(2);
        let mut s = ReputationScores::new(&c);
        s.record_vote(ValidatorId(1));
        s.reset();
        assert_eq!(s.as_slice(), &[0, 0]);
    }

    #[test]
    fn ranking_breaks_ties_by_id() {
        let c = Committee::new_equal_stake(4);
        let mut s = ReputationScores::new(&c);
        s.add(ValidatorId(0), 5);
        s.add(ValidatorId(1), 1);
        s.add(ValidatorId(2), 5);
        s.add(ValidatorId(3), 1);
        let ranked = s.ranked_ascending();
        assert_eq!(
            ranked,
            vec![
                (ValidatorId(1), 1),
                (ValidatorId(3), 1),
                (ValidatorId(0), 5),
                (ValidatorId(2), 5),
            ]
        );
    }

    #[test]
    fn display_lists_everyone() {
        let c = Committee::new_equal_stake(2);
        let mut s = ReputationScores::new(&c);
        s.record_vote(ValidatorId(1));
        assert_eq!(s.to_string(), "[v0:0 v1:1]");
    }
}
