//! CRC-32 (IEEE 802.3 polynomial), used by the storage write-ahead log and
//! the wire framing to detect torn or corrupted records.
//!
//! Implemented as slicing-by-8: eight 256-entry lookup tables, built at
//! compile time from the bitwise definition, let the hot loop fold eight
//! input bytes per iteration with no loop-carried dependency on any one
//! table read. Same polynomial, same reflection, same init/final xor as
//! the textbook bit-at-a-time form — every output bit is identical; the
//! tables only change how fast it gets there (~10× on WAL-sized records,
//! which matters because the simulator CRCs one record per persisted
//! vertex per validator).

/// Eight slicing tables: `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[j][b]` is the CRC of byte `b` followed by `j` zero bytes.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// Computes the CRC-32 (IEEE) checksum of `data`.
///
/// Standard reflected CRC with polynomial `0xEDB88320`, initial value
/// `0xFFFFFFFF` and final xor `0xFFFFFFFF`, matching zlib's `crc32`.
///
/// ```
/// // The well-known check value for "123456789".
/// assert_eq!(hh_crypto::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bit-at-a-time definition the tables were derived from, kept as
    /// the oracle the sliced implementation is checked against.
    fn crc32_bitwise(data: &[u8]) -> u32 {
        let mut crc: u32 = 0xFFFF_FFFF;
        for &byte in data {
            crc ^= byte as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn matches_bitwise_oracle_at_every_length() {
        // Cover every remainder length and several full 8-byte blocks,
        // with bytes that exercise all table lanes.
        let data: Vec<u8> =
            (0u32..97).map(|i| (i.wrapping_mul(131).wrapping_add(17) % 251) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_bitwise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"hammerhead-wal-record";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.to_vec();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = b"record-body";
        assert_ne!(crc32(data), crc32(&data[..data.len() - 1]));
    }
}
