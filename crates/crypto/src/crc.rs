//! CRC-32 (IEEE 802.3 polynomial), used by the storage write-ahead log to
//! detect torn or corrupted records.

/// Computes the CRC-32 (IEEE) checksum of `data`.
///
/// Standard reflected CRC with polynomial `0xEDB88320`, initial value
/// `0xFFFFFFFF` and final xor `0xFFFFFFFF`, matching zlib's `crc32`.
///
/// ```
/// // The well-known check value for "123456789".
/// assert_eq!(hh_crypto::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"hammerhead-wal-record";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.to_vec();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = b"record-body";
        assert_ne!(crc32(data), crc32(&data[..data.len() - 1]));
    }
}
