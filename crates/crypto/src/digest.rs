//! 32-byte content digests.

use std::fmt;

/// A 32-byte content address, produced by [`crate::sha256`].
///
/// `Digest` is the universal identifier for vertices, blocks and certificates
/// throughout the reproduction. It orders lexicographically, hashes cheaply,
/// and displays as an abbreviated hex string.
///
/// ```
/// use hh_crypto::{sha256, Digest};
/// let d = sha256(b"block");
/// let restored = Digest::from_hex(&d.to_hex()).unwrap();
/// assert_eq!(d, restored);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest, used as a placeholder for "no parent".
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Wraps raw bytes as a digest.
    pub fn new(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Extracts the raw bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Lowercase hex encoding (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push(hex_digit(b >> 4));
            s.push(hex_digit(b & 0xf));
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// Returns `None` on bad length or non-hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            let hi = hex_val(bytes[i * 2])?;
            let lo = hex_val(bytes[i * 2 + 1])?;
            out[i] = (hi << 4) | lo;
        }
        Some(Digest(out))
    }

    /// First 8 bytes interpreted big-endian; handy as a deterministic seed.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

fn hex_digit(v: u8) -> char {
    match v {
        0..=9 => (b'0' + v) as char,
        _ => (b'a' + v - 10) as char,
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", &self.to_hex()[..12])
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
        assert_eq!(Digest::from_hex(&"0".repeat(65)), None);
    }

    #[test]
    fn from_hex_accepts_uppercase() {
        let d = sha256(b"case");
        let upper = d.to_hex().to_uppercase();
        assert_eq!(Digest::from_hex(&upper), Some(d));
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(Digest::default(), Digest::ZERO);
        assert_eq!(Digest::ZERO.to_hex(), "0".repeat(64));
    }

    #[test]
    fn display_is_abbreviated() {
        let d = sha256(b"abc");
        assert_eq!(format!("{d}"), "ba7816bf8f01");
        assert!(format!("{d:?}").starts_with("Digest(ba7816bf8f01"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        a[0] = 1;
        b[0] = 2;
        assert!(Digest::new(a) < Digest::new(b));
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut raw = [0u8; 32];
        raw[7] = 1;
        assert_eq!(Digest::new(raw).prefix_u64(), 1);
        raw[0] = 1;
        assert_eq!(Digest::new(raw).prefix_u64(), (1 << 56) + 1);
    }
}
