//! Cryptographic substrate for the HammerHead reproduction.
//!
//! The production HammerHead implementation (Sui/Narwhal) uses
//! [fastcrypto](https://github.com/MystenLabs/fastcrypto) Ed25519 signatures
//! and BLAKE2 digests. This crate provides the equivalents the protocol
//! actually depends on:
//!
//! * [`sha256`] — a real, from-scratch FIPS 180-4 SHA-256 implementation
//!   (validated against NIST test vectors in this crate's tests), used for
//!   all content digests.
//! * [`Digest`] — a 32-byte content address.
//! * [`crc32`] — CRC-32 (IEEE) used by the storage write-ahead log to detect
//!   torn writes.
//! * [`Keypair`] / [`Signature`] — *simulated* authenticated signatures:
//!   `sig = SHA-256(seed ‖ context ‖ msg)`. These authenticate messages
//!   against the committee's key registry but are **not** secure against a
//!   real adversary holding the registry; the simulated adversary in this
//!   reproduction never forges (the paper's evaluation is crash-fault only).
//!   The substitution is documented in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use hh_crypto::{sha256, Digest, Keypair};
//!
//! let d: Digest = sha256(b"abc");
//! assert_eq!(
//!     d.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//!
//! let kp = Keypair::from_seed(7);
//! let sig = kp.sign(b"vote", b"hello");
//! assert!(kp.public().verify(b"vote", b"hello", &sig));
//! assert!(!kp.public().verify(b"vote", b"tampered", &sig));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod crc;
mod digest;
pub mod prof;
mod sha256;
mod sign;

pub use crc::crc32;
pub use digest::Digest;
pub use sha256::{sha256, Sha256};
pub use sign::{Keypair, PublicKey, Signature};
