//! Flag-gated profiling counters for the crypto and codec hot paths.
//!
//! Off by default; while off, every instrumented call pays exactly one
//! relaxed atomic load. When enabled (`hh-cli run --profile`), digest
//! computations, signature operations and framed-codec passes accrue
//! wall-nanos and op counts into thread-local cells, so a worker thread
//! profiling its own run never contends with its siblings. Callers take
//! a [`snapshot`] before and after a run on the same thread and diff the
//! two to attribute cost to that run.
//!
//! Wall-clock is inherently nondeterministic, so nothing here may ever
//! reach report rows or JSON — profiling output is stderr-only.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns crypto/codec profiling on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is on: one relaxed load, the entire off-cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    static DIGEST_NS: Cell<u64> = const { Cell::new(0) };
    static DIGEST_OPS: Cell<u64> = const { Cell::new(0) };
    static SIG_NS: Cell<u64> = const { Cell::new(0) };
    static SIG_OPS: Cell<u64> = const { Cell::new(0) };
    static CODEC_NS: Cell<u64> = const { Cell::new(0) };
    static CODEC_OPS: Cell<u64> = const { Cell::new(0) };
}

fn accrue(
    ns_cell: &'static std::thread::LocalKey<Cell<u64>>,
    ops_cell: &'static std::thread::LocalKey<Cell<u64>>,
    t: Instant,
) {
    let ns = t.elapsed().as_nanos() as u64;
    ns_cell.with(|c| c.set(c.get() + ns));
    ops_cell.with(|c| c.set(c.get() + 1));
}

/// Times `f` as one content-digest computation when profiling is on.
#[inline]
pub fn time_digest<R>(f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let t = Instant::now();
    let r = f();
    accrue(&DIGEST_NS, &DIGEST_OPS, t);
    r
}

/// Times `f` as one signature operation (sign or verify) when profiling
/// is on.
#[inline]
pub fn time_sig<R>(f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let t = Instant::now();
    let r = f();
    accrue(&SIG_NS, &SIG_OPS, t);
    r
}

/// Times `f` as one framed encode/decode pass when profiling is on.
#[inline]
pub fn time_codec<R>(f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let t = Instant::now();
    let r = f();
    accrue(&CODEC_NS, &CODEC_OPS, t);
    r
}

/// This thread's accumulated crypto/codec profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoProf {
    /// Nanos spent computing content digests.
    pub digest_ns: u64,
    /// Content-digest computations.
    pub digest_ops: u64,
    /// Nanos spent in signature operations (sign + verify).
    pub sig_ns: u64,
    /// Signature operations.
    pub sig_ops: u64,
    /// Nanos spent in framed encode/decode passes.
    pub codec_ns: u64,
    /// Framed encode/decode passes.
    pub codec_ops: u64,
}

impl CryptoProf {
    /// Counter movement from `earlier` (taken on the same thread) to
    /// `self`.
    pub fn since(&self, earlier: &CryptoProf) -> CryptoProf {
        CryptoProf {
            digest_ns: self.digest_ns - earlier.digest_ns,
            digest_ops: self.digest_ops - earlier.digest_ops,
            sig_ns: self.sig_ns - earlier.sig_ns,
            sig_ops: self.sig_ops - earlier.sig_ops,
            codec_ns: self.codec_ns - earlier.codec_ns,
            codec_ops: self.codec_ops - earlier.codec_ops,
        }
    }
}

/// Reads this thread's counters (cheap; does not reset them).
pub fn snapshot() -> CryptoProf {
    CryptoProf {
        digest_ns: DIGEST_NS.with(Cell::get),
        digest_ops: DIGEST_OPS.with(Cell::get),
        sig_ns: SIG_NS.with(Cell::get),
        sig_ops: SIG_OPS.with(Cell::get),
        codec_ns: CODEC_NS.with(Cell::get),
        codec_ops: CODEC_OPS.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_only_move_when_enabled() {
        let before = snapshot();
        time_digest(|| std::hint::black_box(1 + 1));
        assert_eq!(snapshot().since(&before).digest_ops, 0);

        set_enabled(true);
        time_digest(|| std::hint::black_box(1 + 1));
        time_sig(|| std::hint::black_box(2 + 2));
        time_codec(|| std::hint::black_box(3 + 3));
        set_enabled(false);

        let moved = snapshot().since(&before);
        assert_eq!(moved.digest_ops, 1);
        assert_eq!(moved.sig_ops, 1);
        assert_eq!(moved.codec_ops, 1);
    }
}
