//! SHA-256 implemented from FIPS 180-4.
//!
//! A streaming [`Sha256`] hasher plus the one-shot [`sha256`] convenience
//! function. The implementation is the straightforward 64-round compression
//! function over 512-bit blocks with standard Merkle–Damgård padding; it is
//! validated against the NIST FIPS 180-4 example vectors and the
//! one-million-`a` vector in the tests below.

use crate::Digest;

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
///
/// ```
/// use hh_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), hh_crypto::sha256(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Buffered partial block.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self { state: H0, buf: [0u8; 64], buf_len: 0, len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.update_padding_byte();
        while self.buf_len != 56 {
            self.update_zero_byte();
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bit_len.to_be_bytes());
        // Manual append: these 8 bytes complete the final block.
        self.buf[56..64].copy_from_slice(&len_bytes);
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::new(out)
    }

    fn update_padding_byte(&mut self) {
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn update_zero_byte(&mut self) {
        self.buf[self.buf_len] = 0;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            // SAFETY: `available` runtime-detected sha/ssse3/sse4.1.
            unsafe { ni::compress(&mut self.state, block) };
            return;
        }
        self.compress_soft(block);
    }

    fn compress_soft(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// ```
/// let d = hh_crypto::sha256(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-NI accelerated compression (Intel SHA extensions).
///
/// The exact FIPS 180-4 function — same state, same output bits — just
/// computed by the `sha256rnds2`/`sha256msg1`/`sha256msg2` instructions
/// instead of the scalar round loop, so digests are identical whichever
/// path runs. Selected per-process by runtime CPUID detection; every
/// non-x86 or pre-SHA-NI machine keeps the portable implementation.
#[cfg(target_arch = "x86_64")]
mod ni {
    use super::K;
    use core::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Whether this CPU has the SHA extensions (cached CPUID probe).
    pub fn available() -> bool {
        static CACHE: AtomicU8 = AtomicU8::new(0);
        match CACHE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let has = std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                CACHE.store(if has { 1 } else { 2 }, Ordering::Relaxed);
                has
            }
        }
    }

    /// Four round constants `K[i..i + 4]` in one lane-ordered vector.
    #[inline(always)]
    unsafe fn kvec(i: usize) -> __m128i {
        _mm_set_epi32(K[i + 3] as i32, K[i + 2] as i32, K[i + 1] as i32, K[i] as i32)
    }

    /// One FIPS 180-4 compression of `block` into `state`.
    ///
    /// # Safety
    ///
    /// The CPU must support the `sha`, `ssse3` and `sse4.1` features
    /// (check [`available`] first).
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Big-endian word loads via one byte shuffle per 16 bytes.
        let bswap = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0b_u64 as i64, 0x0405_0607_0001_0203);

        // Repack [a,b,c,d] / [e,f,g,h] into the ABEF / CDGH layout the
        // sha256rnds2 instruction works on.
        let tmp = _mm_shuffle_epi32(_mm_loadu_si128(state.as_ptr().cast()), 0xB1);
        let efgh = _mm_shuffle_epi32(_mm_loadu_si128(state.as_ptr().add(4).cast()), 0x1B);
        let mut abef = _mm_alignr_epi8(tmp, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, tmp, 0xF0);
        let abef_save = abef;
        let cdgh_save = cdgh;

        // Two sha256rnds2 per group: the instruction consumes two K+W
        // words per issue (lower pair, then upper pair).
        macro_rules! rounds4 {
            ($w:expr, $k:expr) => {{
                let wk = _mm_add_epi32($w, kvec($k));
                cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(wk, 0x0E));
            }};
        }

        let mut m0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), bswap);
        let mut m1 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), bswap);
        let mut m2 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), bswap);
        let mut m3 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), bswap);

        rounds4!(m0, 0);
        rounds4!(m1, 4);
        rounds4!(m2, 8);
        rounds4!(m3, 12);

        // w[i] = w[i-16] + σ0(w[i-15]) + w[i-7] + σ1(w[i-2]): msg1 covers
        // the first two terms, the alignr add injects w[i-7], msg2 the σ1
        // feedback. `m0..m3` is the sliding 16-word window.
        let mut k = 16;
        while k < 64 {
            m0 = _mm_sha256msg1_epu32(m0, m1);
            m0 = _mm_add_epi32(m0, _mm_alignr_epi8(m3, m2, 4));
            m0 = _mm_sha256msg2_epu32(m0, m3);
            rounds4!(m0, k);
            (m0, m1, m2, m3) = (m1, m2, m3, m0);
            k += 4;
        }

        abef = _mm_add_epi32(abef, abef_save);
        cdgh = _mm_add_epi32(cdgh, cdgh_save);

        // Back to the [a,b,c,d] / [e,f,g,h] memory layout.
        let tmp = _mm_shuffle_epi32(abef, 0x1B);
        let dchg = _mm_shuffle_epi32(cdgh, 0xB1);
        _mm_storeu_si128(state.as_mut_ptr().cast(), _mm_blend_epi16(tmp, dchg, 0xF0));
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), _mm_alignr_epi8(dchg, tmp, 8));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_two_blocks() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            sha256(msg).to_hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&msg).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let msg: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let want = sha256(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn streaming_many_small_updates() {
        let msg: Vec<u8> = (0..1000u32).map(|i| (i * 7 % 256) as u8).collect();
        let want = sha256(&msg);
        let mut h = Sha256::new();
        for chunk in msg.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), want);
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64 padding boundaries must all differ and
        // round-trip through the streaming API.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let msg = vec![0xABu8; len];
            let one = sha256(&msg);
            let mut h = Sha256::new();
            h.update(&msg);
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let a = sha256(b"hammerhead");
        let b = sha256(b"hammerheaD");
        assert_ne!(a, b);
    }

    /// Runs the full hash over `msg` through one specific compression
    /// function, bypassing the runtime dispatch in `compress`.
    fn digest_via(msg: &[u8], compress: impl Fn(&mut [u32; 8], &[u8; 64])) -> Digest {
        let mut padded = msg.to_vec();
        let bit_len = (msg.len() as u64).wrapping_mul(8);
        padded.push(0x80);
        while padded.len() % 64 != 56 {
            padded.push(0);
        }
        padded.extend_from_slice(&bit_len.to_be_bytes());
        let mut state = H0;
        for chunk in padded.chunks_exact(64) {
            compress(&mut state, chunk.try_into().expect("64-byte chunk"));
        }
        let mut out = [0u8; 32];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::new(out)
    }

    /// The portable round loop stays covered (and equal to the public
    /// entry point) even on machines where dispatch picks SHA-NI.
    #[test]
    fn software_path_matches_public_digest() {
        for len in [0usize, 1, 31, 55, 56, 63, 64, 65, 127, 128, 500] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let soft = digest_via(&msg, |state, block| {
                let mut h = Sha256 { state: *state, buf: [0; 64], buf_len: 0, len: 0 };
                h.compress_soft(block);
                *state = h.state;
            });
            assert_eq!(soft, sha256(&msg), "len {len}");
        }
    }

    /// On SHA-NI hardware, the accelerated compression is bit-identical
    /// to the portable one for every padding shape.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn ni_path_matches_software_path() {
        if !ni::available() {
            return;
        }
        for len in [0usize, 1, 31, 55, 56, 63, 64, 65, 127, 128, 500, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 37 % 253) as u8).collect();
            // SAFETY: gated on `ni::available`.
            let fast = digest_via(&msg, |state, block| unsafe { ni::compress(state, block) });
            let soft = digest_via(&msg, |state, block| {
                let mut h = Sha256 { state: *state, buf: [0; 64], buf_len: 0, len: 0 };
                h.compress_soft(block);
                *state = h.state;
            });
            assert_eq!(fast, soft, "len {len}");
        }
    }
}
