//! Simulated authenticated signatures.
//!
//! The production system signs vertices and certificate votes with Ed25519.
//! This reproduction replaces them with a keyed-hash construction:
//! `sig = SHA-256(seed ‖ len(context) ‖ context ‖ msg)`. Verification
//! recomputes the same hash from the "public key", which (in this simulation)
//! carries the seed. This provides:
//!
//! * **authentication within the simulation** — a message only verifies
//!   against the keypair that signed it, and any tampering with the context
//!   or message is detected;
//! * **determinism** — identical runs produce identical bytes, which the
//!   reproducible experiments rely on.
//!
//! It intentionally does **not** provide security against an adversary who
//! can read the key registry; the paper's evaluation is crash-fault-only and
//! the simulated Byzantine behaviours used in tests (equivocation, vote
//! withholding) do not involve forgery. See `DESIGN.md` §2.

use crate::{sha256, Digest, Sha256};
use std::fmt;

/// A signature produced by [`Keypair::sign`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Signature(Digest);

impl Signature {
    /// Borrows the underlying digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }

    /// Wraps raw bytes (used by the codec when decoding).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Signature(Digest::new(bytes))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({})", self.0)
    }
}

/// The verifying half of a [`Keypair`].
///
/// In this simulation the public key embeds the seed (see module docs); it
/// still only verifies messages signed by the matching keypair.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    seed: [u8; 32],
    id: u64,
}

impl PublicKey {
    /// Checks that `sig` is `kp.sign(context, msg)` for the matching keypair.
    pub fn verify(&self, context: &[u8], msg: &[u8], sig: &Signature) -> bool {
        crate::prof::time_sig(|| sign_inner(&self.seed, context, msg) == sig.0)
    }

    /// A stable numeric identifier derived from the seed, handy for logs.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey(#{})", self.id)
    }
}

/// A signing keypair, deterministically derived from a numeric seed.
///
/// ```
/// use hh_crypto::Keypair;
/// let kp = Keypair::from_seed(42);
/// let sig = kp.sign(b"ctx", b"payload");
/// assert!(kp.public().verify(b"ctx", b"payload", &sig));
/// // A different keypair does not verify it.
/// assert!(!Keypair::from_seed(43).public().verify(b"ctx", b"payload", &sig));
/// ```
#[derive(Clone)]
pub struct Keypair {
    seed: [u8; 32],
    id: u64,
}

impl Keypair {
    /// Derives a keypair from a numeric seed (e.g. a validator index).
    pub fn from_seed(seed: u64) -> Self {
        let expanded = sha256(&seed.to_be_bytes()).into_bytes();
        Keypair { seed: expanded, id: seed }
    }

    /// Signs `msg` under a domain-separation `context`.
    ///
    /// Distinct contexts (e.g. `b"vertex"` vs `b"ack"`) guarantee a signature
    /// from one protocol message type can never be replayed as another.
    pub fn sign(&self, context: &[u8], msg: &[u8]) -> Signature {
        crate::prof::time_sig(|| Signature(sign_inner(&self.seed, context, msg)))
    }

    /// Returns the verifying half.
    pub fn public(&self) -> PublicKey {
        PublicKey { seed: self.seed, id: self.id }
    }
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Keypair(#{})", self.id)
    }
}

fn sign_inner(seed: &[u8; 32], context: &[u8], msg: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(seed);
    h.update(&(context.len() as u64).to_be_bytes());
    h.update(context);
    h.update(msg);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed(1);
        let sig = kp.sign(b"vertex", b"data");
        assert!(kp.public().verify(b"vertex", b"data", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = Keypair::from_seed(1);
        let sig = kp.sign(b"vertex", b"data");
        assert!(!kp.public().verify(b"vertex", b"other", &sig));
    }

    #[test]
    fn wrong_context_rejected() {
        let kp = Keypair::from_seed(1);
        let sig = kp.sign(b"vertex", b"data");
        assert!(!kp.public().verify(b"ack", b"data", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let sig = Keypair::from_seed(1).sign(b"vertex", b"data");
        assert!(!Keypair::from_seed(2).public().verify(b"vertex", b"data", &sig));
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Keypair::from_seed(9).sign(b"c", b"m");
        let b = Keypair::from_seed(9).sign(b"c", b"m");
        assert_eq!(a, b);
    }

    #[test]
    fn context_length_is_domain_separated() {
        // (context="ab", msg="c") must differ from (context="a", msg="bc").
        let kp = Keypair::from_seed(5);
        assert_ne!(kp.sign(b"ab", b"c"), kp.sign(b"a", b"bc"));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = Keypair::from_seed(3);
        let sig = kp.sign(b"x", b"y");
        let restored = Signature::from_bytes(*sig.as_bytes());
        assert_eq!(sig, restored);
        assert!(kp.public().verify(b"x", b"y", &restored));
    }
}
