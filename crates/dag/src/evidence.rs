//! Equivocation evidence accounting.
//!
//! The DAG and broadcast layers *reject* a second distinct vertex per
//! `(round, author)` slot, but rejection alone double-counts: retransmits
//! of the same twin hit the same rejection path again, and a node that
//! garbage-collected the slot cannot tell a twin from a stale push. The
//! [`EvidenceLedger`] sits above those raw counters and keeps the set of
//! distinct digests observed per slot, so each twin pair is charged
//! exactly once no matter how many times it is re-delivered — the
//! per-validator metric the adversary analysis reads.

use hh_crypto::Digest;
use hh_types::{Round, ValidatorId};
use std::collections::BTreeMap;

/// One observed equivocation: two distinct vertices claiming the same
/// `(round, author)` slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EquivocationEvidence {
    /// The round both vertices claim.
    pub round: Round,
    /// The equivocating author.
    pub author: ValidatorId,
    /// Digest of the vertex this node accepted first.
    pub stored: Digest,
    /// Digest of the conflicting vertex.
    pub offending: Digest,
}

/// Deduplicating ledger of equivocation evidence.
///
/// [`EvidenceLedger::observe`] records the distinct digests seen at each
/// `(round, author)` slot; every distinct digest beyond the slot's first
/// is one evidence unit. Re-observing a known pair (RBC retransmits, sync
/// re-deliveries, recovery replays) adds nothing, so the per-author
/// counts are stable across message duplication — the property the
/// evidence oracle test pins.
#[derive(Clone, Debug, Default)]
pub struct EvidenceLedger {
    /// Distinct digests observed per slot (tiny vectors: a real attacker
    /// produces a handful of twins per slot at most).
    slots: BTreeMap<(Round, ValidatorId), Vec<Digest>>,
    /// Evidence units per author (deterministic iteration for reports).
    per_author: BTreeMap<ValidatorId, u64>,
    /// Total evidence units.
    total: u64,
}

impl EvidenceLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a conflicting pair at `(round, author)`, returning how many
    /// *new* evidence units this observation added (0 when both digests
    /// were already known for the slot).
    pub fn observe(
        &mut self,
        round: Round,
        author: ValidatorId,
        stored: Digest,
        offending: Digest,
    ) -> u64 {
        let digests = self.slots.entry((round, author)).or_default();
        let mut added = 0u64;
        for d in [stored, offending] {
            if !digests.contains(&d) {
                // The slot's first digest is the legitimate vertex; every
                // further distinct digest is one unit of evidence.
                if !digests.is_empty() {
                    added += 1;
                }
                digests.push(d);
            }
        }
        if added > 0 {
            *self.per_author.entry(author).or_insert(0) += added;
            self.total += added;
        }
        added
    }

    /// Records an [`EquivocationEvidence`] (see [`EvidenceLedger::observe`]).
    pub fn observe_evidence(&mut self, ev: &EquivocationEvidence) -> u64 {
        self.observe(ev.round, ev.author, ev.stored, ev.offending)
    }

    /// Evidence units charged to `author`.
    pub fn count_for(&self, author: ValidatorId) -> u64 {
        self.per_author.get(&author).copied().unwrap_or(0)
    }

    /// Total evidence units across all authors.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no evidence has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Authors with evidence, ascending, with their unit counts.
    pub fn by_author(&self) -> impl Iterator<Item = (ValidatorId, u64)> + '_ {
        self.per_author.iter().map(|(a, c)| (*a, *c))
    }

    /// Number of `(round, author)` slots with observed digests. A
    /// single-twin attacker yields exactly one evidence unit per slot, so
    /// `total() == slot_count()` is the exactly-once invariant the
    /// evidence oracle test pins across retransmits, GC and recovery.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(tag: &[u8]) -> Digest {
        hh_crypto::sha256(tag)
    }

    #[test]
    fn first_pair_counts_once() {
        let mut ledger = EvidenceLedger::new();
        assert_eq!(ledger.observe(Round(4), ValidatorId(2), d(b"a"), d(b"b")), 1);
        assert_eq!(ledger.count_for(ValidatorId(2)), 1);
        assert_eq!(ledger.total(), 1);
    }

    #[test]
    fn retransmits_add_nothing() {
        let mut ledger = EvidenceLedger::new();
        ledger.observe(Round(4), ValidatorId(2), d(b"a"), d(b"b"));
        for _ in 0..5 {
            assert_eq!(ledger.observe(Round(4), ValidatorId(2), d(b"a"), d(b"b")), 0);
            // Order of the pair must not matter either.
            assert_eq!(ledger.observe(Round(4), ValidatorId(2), d(b"b"), d(b"a")), 0);
        }
        assert_eq!(ledger.count_for(ValidatorId(2)), 1);
    }

    #[test]
    fn third_distinct_digest_is_a_second_unit() {
        let mut ledger = EvidenceLedger::new();
        ledger.observe(Round(4), ValidatorId(2), d(b"a"), d(b"b"));
        assert_eq!(ledger.observe(Round(4), ValidatorId(2), d(b"a"), d(b"c")), 1);
        assert_eq!(ledger.count_for(ValidatorId(2)), 2);
    }

    #[test]
    fn slots_and_authors_are_independent() {
        let mut ledger = EvidenceLedger::new();
        ledger.observe(Round(4), ValidatorId(2), d(b"a"), d(b"b"));
        ledger.observe(Round(6), ValidatorId(2), d(b"c"), d(b"e"));
        ledger.observe(Round(4), ValidatorId(3), d(b"a2"), d(b"b2"));
        assert_eq!(ledger.count_for(ValidatorId(2)), 2);
        assert_eq!(ledger.count_for(ValidatorId(3)), 1);
        assert_eq!(ledger.total(), 3);
        let authors: Vec<_> = ledger.by_author().collect();
        assert_eq!(authors, vec![(ValidatorId(2), 2), (ValidatorId(3), 1)]);
    }
}
