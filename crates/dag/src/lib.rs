//! The round-structured DAG substrate.
//!
//! Every DAG-based BFT protocol in the paper's family (Bullshark, Tusk,
//! DAG-Rider, Fino) interprets the same structure: vertices arranged in
//! rounds, each vertex linking to at least quorum-stake vertices of the
//! previous round. This crate owns that structure:
//!
//! * [`Dag`] — insertion with full structural validation (Algorithm 1's
//!   `struct vertex` invariants). Vertices are interned into dense `u32`
//!   slots with index-array adjacency and per-round reachability bitsets;
//!   the digest map survives only at the boundary;
//! * reachability ([`Dag::reachable`], the paper's `path(v, u)`) — a
//!   single bitset probe within the lookback window, with
//!   [`Dag::reachable_bfs`] as the beyond-window fallback and test oracle;
//! * causal histories ([`Dag::causal_history`], [`Dag::causal_sub_dag`],
//!   allocation-free via [`Dag::causal_sub_dag_with`] + [`SubDagScratch`])
//!   — the sub-DAG a committed anchor orders, emitted in ascending
//!   `(round, author)` order;
//! * garbage collection of ordered prefixes (slots retire and recycle);
//! * equivocation detection (two vertices by one author in one round);
//! * [`testkit`] — deterministic DAG construction helpers shared by the
//!   consensus and scheduling test suites.
//!
//! # Example
//!
//! ```
//! use hh_dag::{Dag, testkit::DagBuilder};
//! use hh_types::{Committee, Round};
//!
//! let committee = Committee::new_equal_stake(4);
//! // Three full rounds where everyone links to everyone.
//! let mut builder = DagBuilder::new(committee.clone());
//! builder.extend_full_rounds(3);
//! let dag: &Dag = builder.dag();
//! assert_eq!(dag.highest_round(), Some(Round(2)));
//! assert!(dag.is_quorum_at(Round(2)));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod evidence;
mod store;
pub mod testkit;

pub use evidence::{EquivocationEvidence, EvidenceLedger};
pub use store::{Dag, DagError, InsertOutcome, SubDagScratch, DEFAULT_REACH_WINDOW};
