//! The DAG store: validated insertion, indices, reachability, histories, GC.

use hh_crypto::Digest;
use hh_types::{Committee, Round, Stake, TypeError, ValidatorId, Vertex};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Errors rejecting a vertex at insertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The author is not a committee member.
    UnknownAuthor(ValidatorId),
    /// One or more parents are not in the DAG yet. The caller (the broadcast
    /// layer) should fetch them and retry; the missing digests are listed.
    MissingParents(Vec<Digest>),
    /// A parent is present but lives in the wrong round.
    WrongParentRound {
        /// The inserted vertex's round.
        round: Round,
        /// The misplaced parent.
        parent: Digest,
        /// The round that parent actually occupies.
        parent_round: Round,
    },
    /// The parents carry less than quorum stake.
    InsufficientParentStake {
        /// Stake carried by the vertex's parents.
        have: Stake,
        /// The committee's quorum threshold.
        need: Stake,
    },
    /// The parents list contains a duplicate digest or duplicate author.
    DuplicateParents,
    /// A non-genesis vertex carries no parents, or a genesis vertex carries
    /// some.
    MalformedParents(&'static str),
    /// The vertex's round is below the garbage-collection horizon.
    BelowGc {
        /// The rejected vertex's round.
        round: Round,
        /// The current horizon (lowest retained round).
        gc_round: Round,
    },
    /// The author already has a different vertex in this round
    /// (equivocation); the original is kept.
    Equivocation {
        /// The equivocating author.
        author: ValidatorId,
        /// The round in which two distinct vertices were observed.
        round: Round,
    },
    /// A structural error bubbled up from type validation.
    Type(TypeError),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownAuthor(id) => write!(f, "unknown author {id}"),
            DagError::MissingParents(p) => write!(f, "{} parents missing from the dag", p.len()),
            DagError::WrongParentRound { round, parent, parent_round } => {
                write!(f, "parent {parent} of round-{round} vertex lives in round {parent_round}")
            }
            DagError::InsufficientParentStake { have, need } => {
                write!(f, "parent stake {have} below quorum {need}")
            }
            DagError::DuplicateParents => write!(f, "duplicate parent digest or author"),
            DagError::MalformedParents(why) => write!(f, "malformed parents: {why}"),
            DagError::BelowGc { round, gc_round } => {
                write!(f, "vertex round {round} below gc horizon {gc_round}")
            }
            DagError::Equivocation { author, round } => {
                write!(f, "equivocation by {author} in round {round}")
            }
            DagError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DagError {}

impl From<TypeError> for DagError {
    fn from(e: TypeError) -> Self {
        DagError::Type(e)
    }
}

/// Result of a successful [`Dag::try_insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The vertex is new and was stored.
    Inserted,
    /// The identical vertex was already present (idempotent re-insert).
    AlreadyPresent,
}

/// The round-structured DAG (the paper's `DAG_i[]`).
///
/// Holds at most one vertex per `(round, author)`; a second, different
/// vertex from the same author in the same round is rejected as
/// equivocation and counted (with best-effort broadcast a Byzantine author
/// can attempt this; with certified broadcast it cannot happen).
#[derive(Clone, Debug)]
pub struct Dag {
    committee: Committee,
    rounds: BTreeMap<Round, HashMap<ValidatorId, Arc<Vertex>>>,
    by_digest: HashMap<Digest, Arc<Vertex>>,
    /// Cached per-round author stake; `round_stake`/`is_quorum_at` are on
    /// the per-message hot path and must be O(1).
    stake_by_round: HashMap<Round, Stake>,
    /// Stake of the vertices linking to each vertex (its *votes*), indexed
    /// by target digest and maintained at insert time. Powers the O(1)
    /// direct-commit check.
    vote_stake: HashMap<Digest, Stake>,
    gc_round: Round,
    equivocations: u64,
}

impl Dag {
    /// An empty DAG for `committee`.
    pub fn new(committee: Committee) -> Self {
        Dag {
            committee,
            rounds: BTreeMap::new(),
            by_digest: HashMap::new(),
            stake_by_round: HashMap::new(),
            vote_stake: HashMap::new(),
            gc_round: Round(0),
            equivocations: 0,
        }
    }

    /// The committee this DAG validates against.
    pub fn committee(&self) -> &Committee {
        &self.committee
    }

    /// Validates and stores a vertex.
    ///
    /// Validation enforces Algorithm 1's invariants:
    /// * the author is a committee member;
    /// * round 0 vertices have no parents; later rounds have parents that
    ///   (a) are all present, (b) all live in `round - 1`, (c) have distinct
    ///   authors, and (d) carry at least quorum stake;
    /// * the author has no *different* vertex in this round.
    ///
    /// # Errors
    ///
    /// See [`DagError`]. On [`DagError::MissingParents`] the caller should
    /// sync the listed digests and retry — this is the signal driving the
    /// broadcast layer's fetcher.
    pub fn try_insert(&mut self, vertex: Vertex) -> Result<InsertOutcome, DagError> {
        let round = vertex.round();
        let author = vertex.author();

        if !self.committee.contains(author) {
            return Err(DagError::UnknownAuthor(author));
        }
        if round < self.gc_round {
            return Err(DagError::BelowGc { round, gc_round: self.gc_round });
        }
        if let Some(existing) = self.rounds.get(&round).and_then(|r| r.get(&author)) {
            if existing.digest() == vertex.digest() {
                return Ok(InsertOutcome::AlreadyPresent);
            }
            self.equivocations += 1;
            return Err(DagError::Equivocation { author, round });
        }

        if round == Round(0) {
            if !vertex.parents().is_empty() {
                return Err(DagError::MalformedParents("genesis vertex with parents"));
            }
        } else {
            if vertex.parents().is_empty() {
                return Err(DagError::MalformedParents("non-genesis vertex without parents"));
            }
            // One pass, one map lookup per parent. A duplicate digest
            // implies a duplicate author (digests resolve to unique
            // vertices), so the author bitset covers both duplicate checks
            // for resolvable parents; unresolvable duplicates surface via
            // the `missing` path and are re-validated after sync.
            let mut missing = Vec::new();
            let mut seen_authors = vec![false; self.committee.size()];
            let mut stake = Stake(0);
            for parent in vertex.parents() {
                match self.by_digest.get(parent) {
                    None => missing.push(*parent),
                    Some(pv) => {
                        if pv.round() != round.prev() || round.0 == 0 {
                            return Err(DagError::WrongParentRound {
                                round,
                                parent: *parent,
                                parent_round: pv.round(),
                            });
                        }
                        let slot = &mut seen_authors[pv.author().index()];
                        if *slot {
                            return Err(DagError::DuplicateParents);
                        }
                        *slot = true;
                        stake += self.committee.stake_of(pv.author());
                    }
                }
            }
            if !missing.is_empty() {
                return Err(DagError::MissingParents(missing));
            }
            if stake < self.committee.quorum_threshold() {
                return Err(DagError::InsufficientParentStake {
                    have: stake,
                    need: self.committee.quorum_threshold(),
                });
            }
        }

        let arc = Arc::new(vertex);
        let author_stake = self.committee.stake_of(author);
        for parent in arc.parents() {
            *self.vote_stake.entry(*parent).or_insert(Stake(0)) += author_stake;
        }
        self.by_digest.insert(arc.digest(), arc.clone());
        self.rounds.entry(round).or_default().insert(author, arc);
        *self.stake_by_round.entry(round).or_insert(Stake(0)) += author_stake;
        Ok(InsertOutcome::Inserted)
    }

    /// Which of `parents` are not yet in the DAG.
    pub fn missing_from(&self, parents: &[Digest]) -> Vec<Digest> {
        parents.iter().filter(|d| !self.by_digest.contains_key(*d)).copied().collect()
    }

    /// Looks a vertex up by digest.
    pub fn get(&self, digest: &Digest) -> Option<&Arc<Vertex>> {
        self.by_digest.get(digest)
    }

    /// Whether a vertex with this digest is present.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.by_digest.contains_key(digest)
    }

    /// The vertex authored by `author` in `round`, if any.
    pub fn vertex_by_author(&self, round: Round, author: ValidatorId) -> Option<&Arc<Vertex>> {
        self.rounds.get(&round).and_then(|r| r.get(&author))
    }

    /// All vertices of `round`, in unspecified order.
    pub fn round_vertices(&self, round: Round) -> impl Iterator<Item = &Arc<Vertex>> {
        self.rounds.get(&round).into_iter().flat_map(|r| r.values())
    }

    /// Number of vertices in `round`.
    pub fn round_len(&self, round: Round) -> usize {
        self.rounds.get(&round).map(|r| r.len()).unwrap_or(0)
    }

    /// Total stake of the authors present in `round` (O(1), cached).
    pub fn round_stake(&self, round: Round) -> Stake {
        self.stake_by_round.get(&round).copied().unwrap_or(Stake(0))
    }

    /// Whether `round` holds quorum stake worth of vertices.
    pub fn is_quorum_at(&self, round: Round) -> bool {
        self.round_stake(round) >= self.committee.quorum_threshold()
    }

    /// Total stake of the next-round vertices linking to (voting for) the
    /// vertex with this digest. O(1), maintained at insert time.
    ///
    /// With one vertex per `(round, author)` (enforced at insertion), each
    /// author contributes its stake at most once per target.
    pub fn vote_stake(&self, target: &Digest) -> Stake {
        self.vote_stake.get(target).copied().unwrap_or(Stake(0))
    }

    /// The highest round containing any vertex.
    pub fn highest_round(&self) -> Option<Round> {
        self.rounds.keys().next_back().copied()
    }

    /// The lowest retained round (GC horizon).
    pub fn gc_round(&self) -> Round {
        self.gc_round
    }

    /// Number of equivocation attempts rejected so far.
    pub fn equivocations(&self) -> u64 {
        self.equivocations
    }

    /// Total number of stored vertices.
    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    /// Whether the DAG holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }

    /// The paper's `path(v, u)`: is there a chain of parent edges from
    /// `from` down to `to`?
    ///
    /// Edges always descend exactly one round, so the search prunes any
    /// branch that drops below `to`'s round. Vertices pruned by GC are
    /// treated as dead ends (their history is already ordered).
    pub fn reachable(&self, from: &Vertex, to: &Vertex) -> bool {
        if from.digest() == to.digest() {
            return true;
        }
        if from.round() <= to.round() {
            return false;
        }
        let target_round = to.round();
        let target = to.digest();
        let mut frontier: VecDeque<&Arc<Vertex>> = VecDeque::new();
        let mut seen: HashSet<Digest> = HashSet::new();
        for parent in from.parents() {
            if let Some(pv) = self.by_digest.get(parent) {
                if seen.insert(*parent) {
                    frontier.push_back(pv);
                }
            }
        }
        while let Some(v) = frontier.pop_front() {
            if v.digest() == target {
                return true;
            }
            if v.round() <= target_round {
                continue;
            }
            for parent in v.parents() {
                if let Some(pv) = self.by_digest.get(parent) {
                    if pv.round() >= target_round && seen.insert(*parent) {
                        frontier.push_back(pv);
                    }
                }
            }
        }
        false
    }

    /// Every stored ancestor of `from`, including `from` itself.
    pub fn causal_history(&self, from: &Vertex) -> Vec<Arc<Vertex>> {
        self.causal_sub_dag(from, |_| false)
    }

    /// The ancestors of `anchor` (including it) for which `is_ordered`
    /// returns `false`, pruning descent at ordered vertices.
    ///
    /// This is the sub-DAG a freshly committed anchor delivers: ordering
    /// always delivers complete histories, so once a vertex is ordered its
    /// whole history is too, and the search need not descend past it.
    /// Unknown parents (garbage-collected) are likewise skipped.
    pub fn causal_sub_dag(
        &self,
        anchor: &Vertex,
        is_ordered: impl Fn(&Digest) -> bool,
    ) -> Vec<Arc<Vertex>> {
        let mut out = Vec::new();
        let mut seen: HashSet<Digest> = HashSet::new();
        let mut frontier: VecDeque<Arc<Vertex>> = VecDeque::new();
        if let Some(a) = self.by_digest.get(&anchor.digest()) {
            if !is_ordered(&a.digest()) {
                seen.insert(a.digest());
                frontier.push_back(a.clone());
            }
        }
        while let Some(v) = frontier.pop_front() {
            for parent in v.parents() {
                if let Some(pv) = self.by_digest.get(parent) {
                    if !is_ordered(parent) && seen.insert(*parent) {
                        frontier.push_back(pv.clone());
                    }
                }
            }
            out.push(v);
        }
        out
    }

    /// Drops all rounds strictly below `round`. Future inserts below the
    /// horizon are rejected with [`DagError::BelowGc`].
    ///
    /// Callers must only GC rounds whose vertices are already ordered
    /// everywhere they are needed (the validator keeps a safety margin,
    /// `gc_depth`, below its last committed round).
    pub fn gc(&mut self, round: Round) {
        if round <= self.gc_round {
            return;
        }
        let keep = self.rounds.split_off(&round);
        for (dropped_round, dropped) in std::mem::replace(&mut self.rounds, keep) {
            self.stake_by_round.remove(&dropped_round);
            for (_, v) in dropped {
                self.by_digest.remove(&v.digest());
                self.vote_stake.remove(&v.digest());
            }
        }
        self.gc_round = round;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::DagBuilder;
    use hh_types::Block;

    fn committee4() -> Committee {
        Committee::new_equal_stake(4)
    }

    #[test]
    fn genesis_round_inserts() {
        let mut builder = DagBuilder::new(committee4());
        builder.extend_full_rounds(1);
        assert_eq!(builder.dag().round_len(Round(0)), 4);
        assert!(builder.dag().is_quorum_at(Round(0)));
    }

    #[test]
    fn genesis_with_parents_rejected() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let fake_parent = hh_crypto::sha256(b"ghost");
        let v = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![fake_parent], &kp);
        assert!(matches!(dag.try_insert(v), Err(DagError::MalformedParents(_))));
    }

    #[test]
    fn non_genesis_without_parents_rejected() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let v = Vertex::new(Round(1), ValidatorId(0), Block::empty(), vec![], &kp);
        assert!(matches!(dag.try_insert(v), Err(DagError::MalformedParents(_))));
    }

    #[test]
    fn missing_parents_reported() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let ghost1 = hh_crypto::sha256(b"g1");
        let ghost2 = hh_crypto::sha256(b"g2");
        let ghost3 = hh_crypto::sha256(b"g3");
        let v = Vertex::new(
            Round(1),
            ValidatorId(0),
            Block::empty(),
            vec![ghost1, ghost2, ghost3],
            &kp,
        );
        match dag.try_insert(v) {
            Err(DagError::MissingParents(m)) => assert_eq!(m.len(), 3),
            other => panic!("expected MissingParents, got {other:?}"),
        }
    }

    #[test]
    fn insufficient_parent_stake_rejected() {
        let c = committee4();
        let mut builder = DagBuilder::new(c.clone());
        builder.extend_full_rounds(1);
        // Only 2 parents (< quorum 3 for n=4).
        let parents: Vec<Digest> =
            builder.dag().round_vertices(Round(0)).take(2).map(|v| v.digest()).collect();
        let kp = c.keypair(ValidatorId(0));
        let v = Vertex::new(Round(1), ValidatorId(0), Block::empty(), parents, &kp);
        let mut dag = builder.into_dag();
        assert!(matches!(dag.try_insert(v), Err(DagError::InsufficientParentStake { .. })));
    }

    #[test]
    fn duplicate_parent_digest_rejected() {
        let c = committee4();
        let mut builder = DagBuilder::new(c.clone());
        builder.extend_full_rounds(1);
        let first = builder.dag().vertex_by_author(Round(0), ValidatorId(0)).unwrap().digest();
        let kp = c.keypair(ValidatorId(1));
        let v =
            Vertex::new(Round(1), ValidatorId(1), Block::empty(), vec![first, first, first], &kp);
        let mut dag = builder.into_dag();
        assert_eq!(dag.try_insert(v), Err(DagError::DuplicateParents));
    }

    #[test]
    fn wrong_parent_round_rejected() {
        let c = committee4();
        let mut builder = DagBuilder::new(c.clone());
        builder.extend_full_rounds(2); // rounds 0 and 1
                                       // A round-2 vertex pointing straight at round-0 vertices.
        let parents: Vec<Digest> =
            builder.dag().round_vertices(Round(0)).map(|v| v.digest()).collect();
        let kp = c.keypair(ValidatorId(0));
        let v = Vertex::new(Round(2), ValidatorId(0), Block::empty(), parents, &kp);
        let mut dag = builder.into_dag();
        assert!(matches!(dag.try_insert(v), Err(DagError::WrongParentRound { .. })));
    }

    #[test]
    fn reinsert_is_idempotent() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let v = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![], &kp);
        assert_eq!(dag.try_insert(v.clone()), Ok(InsertOutcome::Inserted));
        assert_eq!(dag.try_insert(v), Ok(InsertOutcome::AlreadyPresent));
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn equivocation_detected_first_kept() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let v1 = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![], &kp);
        let v2 = Vertex::new(
            Round(0),
            ValidatorId(0),
            Block::new(vec![hh_types::Transaction::new(0, 0, 0)]),
            vec![],
            &kp,
        );
        assert_ne!(v1.digest(), v2.digest());
        dag.try_insert(v1.clone()).unwrap();
        assert!(matches!(
            dag.try_insert(v2),
            Err(DagError::Equivocation { author: ValidatorId(0), round: Round(0) })
        ));
        assert_eq!(dag.equivocations(), 1);
        assert_eq!(dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().digest(), v1.digest());
    }

    #[test]
    fn unknown_author_rejected() {
        let c = committee4();
        let mut dag = Dag::new(c);
        let kp = hh_crypto::Keypair::from_seed(99);
        let v = Vertex::new(Round(0), ValidatorId(9), Block::empty(), vec![], &kp);
        assert_eq!(dag.try_insert(v), Err(DagError::UnknownAuthor(ValidatorId(9))));
    }

    #[test]
    fn reachability_through_full_rounds() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(5);
        let dag = builder.dag();
        let top = dag.vertex_by_author(Round(4), ValidatorId(0)).unwrap().clone();
        let bottom = dag.vertex_by_author(Round(0), ValidatorId(3)).unwrap().clone();
        assert!(dag.reachable(&top, &bottom));
        assert!(!dag.reachable(&bottom, &top), "edges point down only");
        assert!(dag.reachable(&top, &top), "reflexive");
    }

    #[test]
    fn reachability_respects_missing_links() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(1);
        // Round 1: every vertex links to all of round 0 EXCEPT v3's vertex.
        builder.extend_round_excluding(&[ValidatorId(3)]);
        let dag = builder.dag();
        let top = dag.vertex_by_author(Round(1), ValidatorId(0)).unwrap().clone();
        let excluded = dag.vertex_by_author(Round(0), ValidatorId(3)).unwrap().clone();
        let included = dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().clone();
        assert!(!dag.reachable(&top, &excluded));
        assert!(dag.reachable(&top, &included));
    }

    #[test]
    fn causal_history_is_complete() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(4);
        let dag = builder.dag();
        let top = dag.vertex_by_author(Round(3), ValidatorId(1)).unwrap().clone();
        let history = dag.causal_history(&top);
        // Full rounds: history = self + 3 complete rounds of 4.
        assert_eq!(history.len(), 1 + 3 * 4);
        // Closure: every parent of a history vertex is in the history
        // (except genesis, which has none).
        let digests: HashSet<Digest> = history.iter().map(|v| v.digest()).collect();
        for v in &history {
            for p in v.parents() {
                assert!(digests.contains(p));
            }
        }
    }

    #[test]
    fn causal_sub_dag_prunes_ordered() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(4);
        let dag = builder.dag();
        let top = dag.vertex_by_author(Round(3), ValidatorId(1)).unwrap().clone();
        // Mark all of rounds 0-1 ordered.
        let ordered: HashSet<Digest> = dag
            .round_vertices(Round(0))
            .chain(dag.round_vertices(Round(1)))
            .map(|v| v.digest())
            .collect();
        let sub = dag.causal_sub_dag(&top, |d| ordered.contains(d));
        assert_eq!(sub.len(), 1 + 4, "self plus round 2");
        assert!(sub.iter().all(|v| v.round() >= Round(2)));
    }

    #[test]
    fn gc_drops_rounds_and_blocks_reinsertion() {
        let c = committee4();
        let mut builder = DagBuilder::new(c.clone());
        builder.extend_full_rounds(5);
        let mut dag = builder.into_dag();
        let victim = dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().clone();
        dag.gc(Round(2));
        assert_eq!(dag.gc_round(), Round(2));
        assert!(!dag.contains(&victim.digest()));
        assert_eq!(dag.round_len(Round(0)), 0);
        assert_eq!(dag.round_len(Round(2)), 4);
        let kp = c.keypair(ValidatorId(0));
        let stale =
            Vertex::new(Round(1), ValidatorId(0), Block::empty(), vec![victim.digest()], &kp);
        assert!(matches!(dag.try_insert(stale), Err(DagError::BelowGc { .. })));
        // GC going backwards is a no-op.
        dag.gc(Round(1));
        assert_eq!(dag.gc_round(), Round(2));
    }

    #[test]
    fn reachability_survives_gc_of_ordered_prefix() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(6);
        let mut dag = builder.into_dag();
        dag.gc(Round(2));
        let top = dag.vertex_by_author(Round(5), ValidatorId(0)).unwrap().clone();
        let mid = dag.vertex_by_author(Round(3), ValidatorId(2)).unwrap().clone();
        assert!(dag.reachable(&top, &mid));
    }

    #[test]
    fn missing_from_lists_unknown_digests() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(1);
        let dag = builder.dag();
        let known = dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().digest();
        let ghost = hh_crypto::sha256(b"ghost");
        assert_eq!(dag.missing_from(&[known, ghost]), vec![ghost]);
    }
}
