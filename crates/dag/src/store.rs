//! The DAG store: validated insertion, slot-interned indices, bitset
//! reachability, histories, GC.
//!
//! Internally every vertex is *interned*: [`Dag::try_insert`] assigns it a
//! dense `u32` slot id, adjacency is stored as slot-id arrays, and each
//! slot carries a per-round committee bitmask of the authors reachable
//! from it within a bounded lookback window. The digest-keyed map survives
//! only at the boundary (wire messages identify vertices by digest); every
//! internal traversal walks integers. See `docs/architecture.md` ("DAG
//! indexing & complexity") for the complexity table.

use hh_crypto::Digest;
use hh_types::{Committee, DigestMap, Round, Stake, TypeError, ValidatorId, Vertex};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Default reachability lookback window, in rounds.
///
/// The commit rule's queries descend 2 rounds in the common case and at
/// most a few epochs during catch-up; anything deeper falls back to the
/// BFS oracle. 64 rounds keeps the per-vertex index at `64 × ⌈n/64⌉`
/// words while covering every walk the paper's scenarios produce.
pub const DEFAULT_REACH_WINDOW: usize = 64;

/// Dense per-vertex index assigned at insertion.
type SlotId = u32;

/// Errors rejecting a vertex at insertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The author is not a committee member.
    UnknownAuthor(ValidatorId),
    /// One or more parents are not in the DAG yet. The caller (the broadcast
    /// layer) should fetch them and retry; the missing digests are listed.
    MissingParents(Vec<Digest>),
    /// A parent is present but lives in the wrong round.
    WrongParentRound {
        /// The inserted vertex's round.
        round: Round,
        /// The misplaced parent.
        parent: Digest,
        /// The round that parent actually occupies.
        parent_round: Round,
    },
    /// The parents carry less than quorum stake.
    InsufficientParentStake {
        /// Stake carried by the vertex's parents.
        have: Stake,
        /// The committee's quorum threshold.
        need: Stake,
    },
    /// The parents list contains a duplicate digest or duplicate author.
    DuplicateParents,
    /// A non-genesis vertex carries no parents, or a genesis vertex carries
    /// some.
    MalformedParents(&'static str),
    /// The vertex's round is below the garbage-collection horizon.
    BelowGc {
        /// The rejected vertex's round.
        round: Round,
        /// The current horizon (lowest retained round).
        gc_round: Round,
    },
    /// The author already has a different vertex in this round
    /// (equivocation); the original is kept.
    Equivocation {
        /// The equivocating author.
        author: ValidatorId,
        /// The round in which two distinct vertices were observed.
        round: Round,
    },
    /// A structural error bubbled up from type validation.
    Type(TypeError),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownAuthor(id) => write!(f, "unknown author {id}"),
            DagError::MissingParents(p) => write!(f, "{} parents missing from the dag", p.len()),
            DagError::WrongParentRound { round, parent, parent_round } => {
                write!(f, "parent {parent} of round-{round} vertex lives in round {parent_round}")
            }
            DagError::InsufficientParentStake { have, need } => {
                write!(f, "parent stake {have} below quorum {need}")
            }
            DagError::DuplicateParents => write!(f, "duplicate parent digest or author"),
            DagError::MalformedParents(why) => write!(f, "malformed parents: {why}"),
            DagError::BelowGc { round, gc_round } => {
                write!(f, "vertex round {round} below gc horizon {gc_round}")
            }
            DagError::Equivocation { author, round } => {
                write!(f, "equivocation by {author} in round {round}")
            }
            DagError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DagError {}

impl From<TypeError> for DagError {
    fn from(e: TypeError) -> Self {
        DagError::Type(e)
    }
}

/// Result of a successful [`Dag::try_insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The vertex is new and was stored.
    Inserted,
    /// The identical vertex was already present (idempotent re-insert).
    AlreadyPresent,
}

/// One interned vertex: the payload plus the integer indices every
/// traversal runs on.
#[derive(Clone, Debug)]
struct VertexSlot {
    vertex: Arc<Vertex>,
    /// Slot ids of the parents (all in `round - 1`). Cleared when the
    /// parents' round is garbage-collected, so stored ids are always live.
    parents: Vec<SlotId>,
    /// Stake of the next-round vertices linking here (its *votes*),
    /// maintained at insert time. Powers the O(1) direct-commit check.
    vote_stake: Stake,
    /// Reachable-author bitsets: row `d` (0-based) covers round
    /// `round - 1 - d` and holds one bit per committee author whose
    /// vertex of that round is an ancestor. `window × words` u64s, final
    /// at insert time (parents always precede children).
    reach: Box<[u64]>,
}

/// Per-round slot index: author position → slot id, plus the cached
/// aggregates the per-message hot path reads.
#[derive(Clone, Debug)]
struct RoundIndex {
    by_author: Vec<Option<SlotId>>,
    len: usize,
    stake: Stake,
}

impl RoundIndex {
    fn new(n: usize) -> Self {
        RoundIndex { by_author: vec![None; n], len: 0, stake: Stake(0) }
    }
}

/// Reusable traversal state for the indexed sub-DAG walk.
///
/// [`Dag::causal_sub_dag_with`] marks visited slots in two bitsets sized
/// to the slot table — `seen` (resolved either way, so the ordered-set
/// predicate runs exactly once per distinct parent) and `kept` (part of
/// the emitted sub-DAG). Owning one of these per consumer (the consensus
/// engine, the schedule policy) makes the commit walk allocation-free
/// apart from the returned vertex list itself.
#[derive(Clone, Debug, Default)]
pub struct SubDagScratch {
    /// One bit per slot id: resolved during this walk.
    seen: Vec<u64>,
    /// One bit per slot id: resolved as *unordered* (to emit).
    kept: Vec<u64>,
    /// Slot ids with `seen` set, for O(visited) clearing.
    touched: Vec<SlotId>,
}

impl SubDagScratch {
    /// An empty scratch; buffers grow to the DAG's slot count on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn grow(&mut self, slots: usize) {
        let words = slots.div_ceil(64);
        if self.seen.len() < words {
            self.seen.resize(words, 0);
            self.kept.resize(words, 0);
        }
    }

    fn is_seen(&self, id: SlotId) -> bool {
        self.seen[id as usize / 64] & (1 << (id as usize % 64)) != 0
    }

    fn note(&mut self, id: SlotId, keep: bool) {
        let (word, bit) = (id as usize / 64, 1u64 << (id as usize % 64));
        self.seen[word] |= bit;
        if keep {
            self.kept[word] |= bit;
        }
        self.touched.push(id);
    }

    fn is_kept(&self, id: SlotId) -> bool {
        self.kept[id as usize / 64] & (1 << (id as usize % 64)) != 0
    }

    fn clear(&mut self) {
        for id in self.touched.drain(..) {
            let (word, bit) = (id as usize / 64, 1u64 << (id as usize % 64));
            self.seen[word] &= !bit;
            self.kept[word] &= !bit;
        }
    }
}

/// The round-structured DAG (the paper's `DAG_i[]`).
///
/// Holds at most one vertex per `(round, author)`; a second, different
/// vertex from the same author in the same round is rejected as
/// equivocation and counted (with best-effort broadcast a Byzantine author
/// can attempt this; with certified broadcast it cannot happen).
///
/// Internally vertices are interned into dense slots with index-array
/// adjacency and per-round reachability bitsets (see the module docs);
/// digests only matter at the insertion/lookup boundary.
#[derive(Clone, Debug)]
pub struct Dag {
    committee: Committee,
    /// Slot table; `None` marks a slot retired by GC (id recycled via
    /// `free`).
    slots: Vec<Option<VertexSlot>>,
    /// Retired slot ids available for reuse.
    free: Vec<SlotId>,
    /// Boundary index: digest → slot id (pass-through hashed).
    by_digest: DigestMap<Digest, SlotId>,
    rounds: BTreeMap<Round, RoundIndex>,
    gc_round: Round,
    equivocations: u64,
    /// Bitset words per reach row: `⌈n/64⌉`.
    words: usize,
    /// Reach rows per vertex (lookback rounds).
    window: usize,
}

impl Dag {
    /// An empty DAG for `committee`, with the default reachability window.
    pub fn new(committee: Committee) -> Self {
        Self::with_reach_window(committee, DEFAULT_REACH_WINDOW)
    }

    /// An empty DAG whose per-vertex reachability index covers `window`
    /// rounds of lookback (clamped to at least 1). Queries descending
    /// deeper than the window stay correct through the BFS fallback;
    /// callers that garbage-collect aggressively can shrink the window to
    /// their `gc_depth` since nothing below the horizon is ever queried.
    pub fn with_reach_window(committee: Committee, window: usize) -> Self {
        let words = committee.size().div_ceil(64);
        Dag {
            committee,
            slots: Vec::new(),
            free: Vec::new(),
            by_digest: DigestMap::default(),
            rounds: BTreeMap::new(),
            gc_round: Round(0),
            equivocations: 0,
            words,
            window: window.max(1),
        }
    }

    /// The committee this DAG validates against.
    pub fn committee(&self) -> &Committee {
        &self.committee
    }

    /// Rounds of lookback the reachability bitsets cover.
    pub fn reach_window(&self) -> usize {
        self.window
    }

    fn slot(&self, id: SlotId) -> &VertexSlot {
        self.slots[id as usize].as_ref().expect("live slot id")
    }

    fn slot_of(&self, digest: &Digest) -> Option<SlotId> {
        self.by_digest.get(digest).copied()
    }

    /// Validates and stores a vertex.
    ///
    /// Validation enforces Algorithm 1's invariants:
    /// * the author is a committee member;
    /// * round 0 vertices have no parents; later rounds have parents that
    ///   (a) are all present, (b) all live in `round - 1`, (c) have distinct
    ///   authors, and (d) carry at least quorum stake;
    /// * the author has no *different* vertex in this round.
    ///
    /// # Errors
    ///
    /// See [`DagError`]. On [`DagError::MissingParents`] the caller should
    /// sync the listed digests and retry — this is the signal driving the
    /// broadcast layer's fetcher.
    pub fn try_insert(&mut self, vertex: Vertex) -> Result<InsertOutcome, DagError> {
        self.try_insert_arc(Arc::new(vertex))
    }

    /// [`Dag::try_insert`] for a vertex already behind an `Arc` — the
    /// broadcast layer's zero-copy intake. On success the DAG interns
    /// the *same* allocation (a refcount bump, no deep copy of the
    /// block or parent list).
    ///
    /// # Errors
    ///
    /// See [`Dag::try_insert`].
    pub fn try_insert_arc(&mut self, vertex: Arc<Vertex>) -> Result<InsertOutcome, DagError> {
        let round = vertex.round();
        let author = vertex.author();
        let n = self.committee.size();

        if !self.committee.contains(author) {
            return Err(DagError::UnknownAuthor(author));
        }
        if round < self.gc_round {
            return Err(DagError::BelowGc { round, gc_round: self.gc_round });
        }
        if let Some(existing) = self
            .rounds
            .get(&round)
            .and_then(|r| r.by_author[author.index()])
            .map(|id| self.slot(id))
        {
            if existing.vertex.digest() == vertex.digest() {
                return Ok(InsertOutcome::AlreadyPresent);
            }
            self.equivocations += 1;
            return Err(DagError::Equivocation { author, round });
        }

        let mut parent_slots: Vec<SlotId> = Vec::new();
        if round == Round(0) {
            if !vertex.parents().is_empty() {
                return Err(DagError::MalformedParents("genesis vertex with parents"));
            }
        } else {
            if vertex.parents().is_empty() {
                return Err(DagError::MalformedParents("non-genesis vertex without parents"));
            }
            // One pass, one map lookup per parent; missing parents are only
            // *counted* here so the common all-present case allocates
            // nothing beyond the adjacency array the slot keeps anyway. A
            // duplicate digest implies a duplicate author (digests resolve
            // to unique vertices), so the author bitset covers both
            // duplicate checks for resolvable parents; unresolvable
            // duplicates surface via the missing path and are re-validated
            // after sync.
            parent_slots.reserve_exact(vertex.parents().len());
            let mut missing = 0usize;
            // Stack bitset for the committee sizes we actually simulate;
            // heap spill only for n > 256.
            let mut seen_small = [0u64; 4];
            let mut seen_spill: Vec<u64>;
            let seen_authors: &mut [u64] = if n <= 256 {
                &mut seen_small
            } else {
                seen_spill = vec![0u64; n.div_ceil(64)];
                &mut seen_spill
            };
            let mut stake = Stake(0);
            for parent in vertex.parents() {
                match self.slot_of(parent) {
                    None => missing += 1,
                    Some(id) => {
                        let pv = self.slot(id);
                        if pv.vertex.round() != round.prev() || round.0 == 0 {
                            return Err(DagError::WrongParentRound {
                                round,
                                parent: *parent,
                                parent_round: pv.vertex.round(),
                            });
                        }
                        let idx = pv.vertex.author().index();
                        if seen_authors[idx / 64] & (1 << (idx % 64)) != 0 {
                            return Err(DagError::DuplicateParents);
                        }
                        seen_authors[idx / 64] |= 1 << (idx % 64);
                        stake += self.committee.stake_of(pv.vertex.author());
                        parent_slots.push(id);
                    }
                }
            }
            if missing > 0 {
                // Second pass only on the incomplete-ancestry path.
                let missing: Vec<Digest> = vertex
                    .parents()
                    .iter()
                    .filter(|d| !self.by_digest.contains_key(*d))
                    .copied()
                    .collect();
                return Err(DagError::MissingParents(missing));
            }
            if stake < self.committee.quorum_threshold() {
                return Err(DagError::InsufficientParentStake {
                    have: stake,
                    need: self.committee.quorum_threshold(),
                });
            }
        }

        // Build the reach rows: row 0 is the parents' author mask, row d
        // is the union of the parents' rows d-1 (shifted one round down).
        let words = self.words;
        let mut reach = vec![0u64; self.window * words].into_boxed_slice();
        for &p in &parent_slots {
            let pslot = self.slot(p);
            let idx = pslot.vertex.author().index();
            reach[idx / 64] |= 1 << (idx % 64);
            let carry = self.window - 1;
            for (dst, src) in reach[words..].iter_mut().zip(pslot.reach[..carry * words].iter()) {
                *dst |= *src;
            }
        }

        // Commit the insert: charge vote stake to the parents, intern the
        // vertex into a (possibly recycled) slot, index it.
        let author_stake = self.committee.stake_of(author);
        for &p in &parent_slots {
            self.slots[p as usize].as_mut().expect("live slot id").vote_stake += author_stake;
        }
        let digest = vertex.digest();
        let slot = VertexSlot { vertex, parents: parent_slots, vote_stake: Stake(0), reach };
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(slot);
                id
            }
            None => {
                let id = SlotId::try_from(self.slots.len()).expect("slot ids fit u32");
                self.slots.push(Some(slot));
                id
            }
        };
        self.by_digest.insert(digest, id);
        let ri = self.rounds.entry(round).or_insert_with(|| RoundIndex::new(n));
        ri.by_author[author.index()] = Some(id);
        ri.len += 1;
        ri.stake += author_stake;
        Ok(InsertOutcome::Inserted)
    }

    /// Which of `parents` are not yet in the DAG. Returns without
    /// allocating when everything is present (the common case on the
    /// insert path).
    pub fn missing_from(&self, parents: &[Digest]) -> Vec<Digest> {
        if parents.iter().all(|d| self.by_digest.contains_key(d)) {
            return Vec::new();
        }
        parents.iter().filter(|d| !self.by_digest.contains_key(*d)).copied().collect()
    }

    /// Looks a vertex up by digest.
    pub fn get(&self, digest: &Digest) -> Option<&Arc<Vertex>> {
        self.slot_of(digest).map(|id| &self.slot(id).vertex)
    }

    /// Whether a vertex with this digest is present.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.by_digest.contains_key(digest)
    }

    /// The vertex authored by `author` in `round`, if any.
    pub fn vertex_by_author(&self, round: Round, author: ValidatorId) -> Option<&Arc<Vertex>> {
        let ri = self.rounds.get(&round)?;
        ri.by_author.get(author.index())?.map(|id| &self.slot(id).vertex)
    }

    /// All vertices of `round`, in ascending author order.
    pub fn round_vertices(&self, round: Round) -> impl Iterator<Item = &Arc<Vertex>> {
        self.rounds
            .get(&round)
            .into_iter()
            .flat_map(|ri| ri.by_author.iter().flatten())
            .map(|id| &self.slot(*id).vertex)
    }

    /// Number of vertices in `round`.
    pub fn round_len(&self, round: Round) -> usize {
        self.rounds.get(&round).map(|r| r.len).unwrap_or(0)
    }

    /// Total stake of the authors present in `round` (O(1), cached).
    pub fn round_stake(&self, round: Round) -> Stake {
        self.rounds.get(&round).map(|r| r.stake).unwrap_or(Stake(0))
    }

    /// Whether `round` holds quorum stake worth of vertices.
    pub fn is_quorum_at(&self, round: Round) -> bool {
        self.round_stake(round) >= self.committee.quorum_threshold()
    }

    /// Total stake of the next-round vertices linking to (voting for) the
    /// vertex with this digest. O(1), maintained at insert time.
    ///
    /// With one vertex per `(round, author)` (enforced at insertion), each
    /// author contributes its stake at most once per target.
    pub fn vote_stake(&self, target: &Digest) -> Stake {
        self.slot_of(target).map(|id| self.slot(id).vote_stake).unwrap_or(Stake(0))
    }

    /// The highest round containing any vertex.
    pub fn highest_round(&self) -> Option<Round> {
        self.rounds.keys().next_back().copied()
    }

    /// The lowest retained round (GC horizon).
    pub fn gc_round(&self) -> Round {
        self.gc_round
    }

    /// Number of equivocation attempts rejected so far.
    pub fn equivocations(&self) -> u64 {
        self.equivocations
    }

    /// Total number of stored vertices.
    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    /// Whether the DAG holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }

    /// The paper's `path(v, u)`: is there a chain of parent edges from
    /// `from` down to `to`?
    ///
    /// When both endpoints are stored and the descent fits the
    /// reachability window this is a single bitset probe: `to`'s round
    /// and author address one bit of `from`'s reach index, and one vertex
    /// per `(round, author)` (enforced at insertion) makes that bit
    /// equivalent to the digest comparison the BFS does. Deeper descents
    /// and foreign vertices fall back to [`Dag::reachable_bfs`].
    pub fn reachable(&self, from: &Vertex, to: &Vertex) -> bool {
        if from.digest() == to.digest() {
            return true;
        }
        if from.round() <= to.round() {
            return false;
        }
        let depth = (from.round().0 - to.round().0) as usize;
        if depth <= self.window {
            if let Some(from_id) = self.slot_of(&from.digest()) {
                let Some(stored) = self.vertex_by_author(to.round(), to.author()) else {
                    // No vertex at (round, author): `to` is foreign (or
                    // GC'd), hence unreachable through stored edges.
                    return false;
                };
                if stored.digest() == to.digest() {
                    let idx = to.author().index();
                    let row = (depth - 1) * self.words;
                    return self.slot(from_id).reach[row + idx / 64] & (1 << (idx % 64)) != 0;
                }
                // `to` equivocates against the stored vertex: edges can
                // only reference stored parents, so it is unreachable.
                return false;
            }
        }
        self.reachable_bfs(from, to)
    }

    /// The reachability BFS over the slot adjacency: the window-depth
    /// fallback of [`Dag::reachable`] and the oracle its bitset fast path
    /// is property-tested against.
    ///
    /// Edges always descend exactly one round, so the search prunes any
    /// branch that drops below `to`'s round. Vertices pruned by GC are
    /// treated as dead ends (their history is already ordered).
    pub fn reachable_bfs(&self, from: &Vertex, to: &Vertex) -> bool {
        if from.digest() == to.digest() {
            return true;
        }
        if from.round() <= to.round() {
            return false;
        }
        let Some(target) = self.slot_of(&to.digest()) else {
            return false;
        };
        let target_round = to.round();
        let mut visited = vec![0u64; self.slots.len().div_ceil(64)];
        let mut work: Vec<SlotId> = Vec::new();
        // Seed from the parents: `from` itself may be foreign to the DAG.
        for parent in from.parents() {
            if let Some(id) = self.slot_of(parent) {
                if visited[id as usize / 64] & (1 << (id as usize % 64)) == 0 {
                    visited[id as usize / 64] |= 1 << (id as usize % 64);
                    work.push(id);
                }
            }
        }
        while let Some(id) = work.pop() {
            if id == target {
                return true;
            }
            let slot = self.slot(id);
            if slot.vertex.round() <= target_round {
                continue;
            }
            for &p in &slot.parents {
                if self.slot(p).vertex.round() >= target_round
                    && visited[p as usize / 64] & (1 << (p as usize % 64)) == 0
                {
                    visited[p as usize / 64] |= 1 << (p as usize % 64);
                    work.push(p);
                }
            }
        }
        false
    }

    /// Every stored ancestor of `from`, including `from` itself, in
    /// ascending `(round, author)` order.
    pub fn causal_history(&self, from: &Vertex) -> Vec<Arc<Vertex>> {
        self.causal_sub_dag(from, |_| false)
    }

    /// The ancestors of `anchor` (including it) for which `is_ordered`
    /// returns `false`, pruning descent at ordered vertices — with a
    /// freshly allocated scratch. Hot callers keep a [`SubDagScratch`]
    /// and use [`Dag::causal_sub_dag_with`].
    pub fn causal_sub_dag(
        &self,
        anchor: &Vertex,
        is_ordered: impl Fn(&Digest) -> bool,
    ) -> Vec<Arc<Vertex>> {
        self.causal_sub_dag_with(anchor, is_ordered, &mut SubDagScratch::new())
    }

    /// The ancestors of `anchor` (including it) for which `is_ordered`
    /// returns `false`, pruning descent at ordered vertices.
    ///
    /// This is the sub-DAG a freshly committed anchor delivers: ordering
    /// always delivers complete histories, so once a vertex is ordered its
    /// whole history is too, and the search need not descend past it.
    /// Unknown parents (garbage-collected) are likewise skipped.
    ///
    /// The walk runs level-by-level over the slot index and emits in
    /// ascending `(round, author)` order — exactly the deterministic
    /// delivery order the commit rule needs, so consumers sort nothing.
    /// Apart from the returned list, all state lives in `scratch`.
    pub fn causal_sub_dag_with(
        &self,
        anchor: &Vertex,
        is_ordered: impl Fn(&Digest) -> bool,
        scratch: &mut SubDagScratch,
    ) -> Vec<Arc<Vertex>> {
        let Some(anchor_id) = self.slot_of(&anchor.digest()) else {
            return Vec::new();
        };
        if is_ordered(&anchor.digest()) {
            return Vec::new();
        }
        scratch.grow(self.slots.len());
        scratch.note(anchor_id, true);
        let top = anchor.round();
        let mut low = top;

        // Mark phase: rounds descend one by one; when a level adds no
        // marks the frontier died out (edges never skip rounds). Siblings
        // share most parents, so each distinct parent is resolved — one
        // bit probe, and at most one ordered-set lookup — exactly once.
        let mut r = top;
        while let Some(ri) = self.rounds.get(&r) {
            let mut any_below = false;
            for id in ri.by_author.iter().flatten() {
                if !scratch.is_kept(*id) {
                    continue;
                }
                for &p in &self.slot(*id).parents {
                    if !scratch.is_seen(p) {
                        let keep = !is_ordered(&self.slot(p).vertex.digest());
                        scratch.note(p, keep);
                        any_below |= keep;
                    }
                }
            }
            if !any_below || r.0 == 0 {
                low = r;
                break;
            }
            r = r.prev();
        }

        // Emit phase: ascending rounds, authors ascending within each.
        let mut out = Vec::with_capacity(scratch.touched.len());
        for (_, ri) in self.rounds.range(low..=top) {
            for id in ri.by_author.iter().flatten() {
                if scratch.is_kept(*id) {
                    out.push(self.slot(*id).vertex.clone());
                }
            }
        }
        scratch.clear();
        out
    }

    /// Whether `from` links to (votes for) the previous-round vertex
    /// authored by `author`. Powers the reputation policy's vote
    /// accounting.
    ///
    /// For interned vertices this is one probe of the insert-time reach
    /// index, so the answer never flickers when the linked round is
    /// later garbage-collected — vote accounting stays independent of
    /// each validator's local GC timing (a live lookup could answer
    /// differently on two validators for a vertex ordered right at the
    /// horizon). Foreign vertices — never produced by the ordering path,
    /// which only traverses stored vertices — fall back to scanning
    /// their parent list against the currently stored `(round, author)`
    /// vertex.
    pub fn links_to_author(&self, from: &Vertex, author: ValidatorId) -> bool {
        if from.round().0 == 0 {
            return false;
        }
        if let Some(id) = self.slot_of(&from.digest()) {
            let idx = author.index();
            return self.slot(id).reach[idx / 64] & (1 << (idx % 64)) != 0;
        }
        self.vertex_by_author(from.round().prev(), author)
            .is_some_and(|stored| from.has_parent(&stored.digest()))
    }

    /// Drops all rounds strictly below `round`. Future inserts below the
    /// horizon are rejected with [`DagError::BelowGc`].
    ///
    /// Retired slot ids are recycled by later inserts; the lowest
    /// retained round's parent edges are detached (their targets are
    /// gone), which keeps every stored slot id live by construction.
    ///
    /// Callers must only GC rounds whose vertices are already ordered
    /// everywhere they are needed (the validator keeps a safety margin,
    /// `gc_depth`, below its last committed round).
    pub fn gc(&mut self, round: Round) {
        if round <= self.gc_round {
            return;
        }
        let keep = self.rounds.split_off(&round);
        for (_, dropped) in std::mem::replace(&mut self.rounds, keep) {
            for id in dropped.by_author.into_iter().flatten() {
                let slot = self.slots[id as usize].take().expect("live slot id");
                self.by_digest.remove(&slot.vertex.digest());
                self.free.push(id);
            }
        }
        // Only the new lowest round can reference dropped parents (edges
        // descend exactly one round; occupied rounds are contiguous).
        if let Some((first, ri)) = self.rounds.iter().next() {
            if first.0 < round.0 + 1 {
                let ids: Vec<SlotId> = ri.by_author.iter().flatten().copied().collect();
                for id in ids {
                    self.slots[id as usize].as_mut().expect("live slot id").parents.clear();
                }
            }
        }
        self.gc_round = round;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::DagBuilder;
    use hh_types::Block;
    use std::collections::HashSet;

    fn committee4() -> Committee {
        Committee::new_equal_stake(4)
    }

    #[test]
    fn genesis_round_inserts() {
        let mut builder = DagBuilder::new(committee4());
        builder.extend_full_rounds(1);
        assert_eq!(builder.dag().round_len(Round(0)), 4);
        assert!(builder.dag().is_quorum_at(Round(0)));
    }

    #[test]
    fn genesis_with_parents_rejected() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let fake_parent = hh_crypto::sha256(b"ghost");
        let v = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![fake_parent], &kp);
        assert!(matches!(dag.try_insert(v), Err(DagError::MalformedParents(_))));
    }

    #[test]
    fn non_genesis_without_parents_rejected() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let v = Vertex::new(Round(1), ValidatorId(0), Block::empty(), vec![], &kp);
        assert!(matches!(dag.try_insert(v), Err(DagError::MalformedParents(_))));
    }

    #[test]
    fn missing_parents_reported() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let ghost1 = hh_crypto::sha256(b"g1");
        let ghost2 = hh_crypto::sha256(b"g2");
        let ghost3 = hh_crypto::sha256(b"g3");
        let v = Vertex::new(
            Round(1),
            ValidatorId(0),
            Block::empty(),
            vec![ghost1, ghost2, ghost3],
            &kp,
        );
        match dag.try_insert(v) {
            Err(DagError::MissingParents(m)) => assert_eq!(m.len(), 3),
            other => panic!("expected MissingParents, got {other:?}"),
        }
    }

    #[test]
    fn insufficient_parent_stake_rejected() {
        let c = committee4();
        let mut builder = DagBuilder::new(c.clone());
        builder.extend_full_rounds(1);
        // Only 2 parents (< quorum 3 for n=4).
        let parents: Vec<Digest> =
            builder.dag().round_vertices(Round(0)).take(2).map(|v| v.digest()).collect();
        let kp = c.keypair(ValidatorId(0));
        let v = Vertex::new(Round(1), ValidatorId(0), Block::empty(), parents, &kp);
        let mut dag = builder.into_dag();
        assert!(matches!(dag.try_insert(v), Err(DagError::InsufficientParentStake { .. })));
    }

    #[test]
    fn duplicate_parent_digest_rejected() {
        let c = committee4();
        let mut builder = DagBuilder::new(c.clone());
        builder.extend_full_rounds(1);
        let first = builder.dag().vertex_by_author(Round(0), ValidatorId(0)).unwrap().digest();
        let kp = c.keypair(ValidatorId(1));
        let v =
            Vertex::new(Round(1), ValidatorId(1), Block::empty(), vec![first, first, first], &kp);
        let mut dag = builder.into_dag();
        assert_eq!(dag.try_insert(v), Err(DagError::DuplicateParents));
    }

    #[test]
    fn wrong_parent_round_rejected() {
        let c = committee4();
        let mut builder = DagBuilder::new(c.clone());
        builder.extend_full_rounds(2); // rounds 0 and 1
                                       // A round-2 vertex pointing straight at round-0 vertices.
        let parents: Vec<Digest> =
            builder.dag().round_vertices(Round(0)).map(|v| v.digest()).collect();
        let kp = c.keypair(ValidatorId(0));
        let v = Vertex::new(Round(2), ValidatorId(0), Block::empty(), parents, &kp);
        let mut dag = builder.into_dag();
        assert!(matches!(dag.try_insert(v), Err(DagError::WrongParentRound { .. })));
    }

    #[test]
    fn reinsert_is_idempotent() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let v = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![], &kp);
        assert_eq!(dag.try_insert(v.clone()), Ok(InsertOutcome::Inserted));
        assert_eq!(dag.try_insert(v), Ok(InsertOutcome::AlreadyPresent));
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn equivocation_detected_first_kept() {
        let c = committee4();
        let mut dag = Dag::new(c.clone());
        let kp = c.keypair(ValidatorId(0));
        let v1 = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![], &kp);
        let v2 = Vertex::new(
            Round(0),
            ValidatorId(0),
            Block::new(vec![hh_types::Transaction::new(0, 0, 0)]),
            vec![],
            &kp,
        );
        assert_ne!(v1.digest(), v2.digest());
        dag.try_insert(v1.clone()).unwrap();
        assert!(matches!(
            dag.try_insert(v2),
            Err(DagError::Equivocation { author: ValidatorId(0), round: Round(0) })
        ));
        assert_eq!(dag.equivocations(), 1);
        assert_eq!(dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().digest(), v1.digest());
    }

    #[test]
    fn unknown_author_rejected() {
        let c = committee4();
        let mut dag = Dag::new(c);
        let kp = hh_crypto::Keypair::from_seed(99);
        let v = Vertex::new(Round(0), ValidatorId(9), Block::empty(), vec![], &kp);
        assert_eq!(dag.try_insert(v), Err(DagError::UnknownAuthor(ValidatorId(9))));
    }

    #[test]
    fn reachability_through_full_rounds() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(5);
        let dag = builder.dag();
        let top = dag.vertex_by_author(Round(4), ValidatorId(0)).unwrap().clone();
        let bottom = dag.vertex_by_author(Round(0), ValidatorId(3)).unwrap().clone();
        assert!(dag.reachable(&top, &bottom));
        assert!(!dag.reachable(&bottom, &top), "edges point down only");
        assert!(dag.reachable(&top, &top), "reflexive");
    }

    #[test]
    fn reachability_respects_missing_links() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(1);
        // Round 1: every vertex links to all of round 0 EXCEPT v3's vertex.
        builder.extend_round_excluding(&[ValidatorId(3)]);
        let dag = builder.dag();
        let top = dag.vertex_by_author(Round(1), ValidatorId(0)).unwrap().clone();
        let excluded = dag.vertex_by_author(Round(0), ValidatorId(3)).unwrap().clone();
        let included = dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().clone();
        assert!(!dag.reachable(&top, &excluded));
        assert!(dag.reachable(&top, &included));
    }

    #[test]
    fn bitset_and_bfs_agree_beyond_window() {
        // A window of 2 forces deep queries onto the BFS fallback; both
        // paths must answer identically either side of the boundary.
        let c = committee4();
        let mut builder = DagBuilder::new(Committee::new_equal_stake(4));
        builder.extend_full_rounds(1);
        builder.extend_round_excluding(&[ValidatorId(3)]);
        builder.extend_full_rounds(6);
        let full = builder.into_dag();
        let mut windowed = Dag::with_reach_window(c, 2);
        for r in 0..8u64 {
            for v in full.round_vertices(Round(r)) {
                windowed.try_insert((**v).clone()).unwrap();
            }
        }
        for from_r in 0..8u64 {
            for to_r in 0..8u64 {
                for from in windowed.round_vertices(Round(from_r)) {
                    for to in windowed.round_vertices(Round(to_r)) {
                        assert_eq!(
                            windowed.reachable(from, to),
                            windowed.reachable_bfs(from, to),
                            "window-2 mismatch {from} -> {to}"
                        );
                        assert_eq!(
                            windowed.reachable(from, to),
                            full.reachable(from, to),
                            "window size changed the answer {from} -> {to}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn links_to_author_matches_parent_scan() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(1);
        builder.extend_round_excluding(&[ValidatorId(2)]);
        let dag = builder.dag();
        for v in dag.round_vertices(Round(1)) {
            for author in dag.committee().ids() {
                let stored = dag.vertex_by_author(Round(0), author).unwrap();
                assert_eq!(
                    dag.links_to_author(v, author),
                    v.has_parent(&stored.digest()),
                    "{v} -> {author}"
                );
            }
        }
        // Genesis vertices vote for nobody.
        let g = dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap();
        assert!(!dag.links_to_author(g, ValidatorId(1)));
    }

    #[test]
    fn causal_history_is_complete() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(4);
        let dag = builder.dag();
        let top = dag.vertex_by_author(Round(3), ValidatorId(1)).unwrap().clone();
        let history = dag.causal_history(&top);
        // Full rounds: history = self + 3 complete rounds of 4.
        assert_eq!(history.len(), 1 + 3 * 4);
        // Closure: every parent of a history vertex is in the history
        // (except genesis, which has none).
        let digests: HashSet<Digest> = history.iter().map(|v| v.digest()).collect();
        for v in &history {
            for p in v.parents() {
                assert!(digests.contains(p));
            }
        }
        // Emission is ascending (round, author) — no caller-side sort.
        let keys: Vec<_> = history.iter().map(|v| (v.round(), v.author())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn causal_sub_dag_prunes_ordered() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(4);
        let dag = builder.dag();
        let top = dag.vertex_by_author(Round(3), ValidatorId(1)).unwrap().clone();
        // Mark all of rounds 0-1 ordered.
        let ordered: HashSet<Digest> = dag
            .round_vertices(Round(0))
            .chain(dag.round_vertices(Round(1)))
            .map(|v| v.digest())
            .collect();
        let sub = dag.causal_sub_dag(&top, |d| ordered.contains(d));
        assert_eq!(sub.len(), 1 + 4, "self plus round 2");
        assert!(sub.iter().all(|v| v.round() >= Round(2)));
    }

    #[test]
    fn sub_dag_scratch_is_reusable() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(5);
        let dag = builder.dag();
        let mut scratch = SubDagScratch::new();
        let top = dag.vertex_by_author(Round(4), ValidatorId(0)).unwrap().clone();
        let a = dag.causal_sub_dag_with(&top, |_| false, &mut scratch);
        let b = dag.causal_sub_dag_with(&top, |_| false, &mut scratch);
        assert_eq!(a.len(), b.len(), "stale marks would shrink the second walk");
        assert_eq!(
            a.iter().map(|v| v.digest()).collect::<Vec<_>>(),
            b.iter().map(|v| v.digest()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gc_drops_rounds_and_blocks_reinsertion() {
        let c = committee4();
        let mut builder = DagBuilder::new(c.clone());
        builder.extend_full_rounds(5);
        let mut dag = builder.into_dag();
        let victim = dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().clone();
        dag.gc(Round(2));
        assert_eq!(dag.gc_round(), Round(2));
        assert!(!dag.contains(&victim.digest()));
        assert_eq!(dag.round_len(Round(0)), 0);
        assert_eq!(dag.round_len(Round(2)), 4);
        let kp = c.keypair(ValidatorId(0));
        let stale =
            Vertex::new(Round(1), ValidatorId(0), Block::empty(), vec![victim.digest()], &kp);
        assert!(matches!(dag.try_insert(stale), Err(DagError::BelowGc { .. })));
        // GC going backwards is a no-op.
        dag.gc(Round(1));
        assert_eq!(dag.gc_round(), Round(2));
    }

    #[test]
    fn gc_recycles_slots_and_keeps_queries_consistent() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(6);
        let mut dag = builder.into_dag();
        dag.gc(Round(3));
        assert_eq!(dag.len(), 3 * 4);
        // New rounds reuse the retired slots; every query keeps working.
        let mut b2 = DagBuilder::new(Committee::new_equal_stake(4));
        b2.extend_full_rounds(6);
        for r in 6..9u64 {
            let parents: Vec<Digest> = {
                let mut refs: Vec<(ValidatorId, Digest)> =
                    dag.round_vertices(Round(r - 1)).map(|v| (v.author(), v.digest())).collect();
                refs.sort();
                refs.into_iter().map(|(_, d)| d).collect()
            };
            for author in dag.committee().ids().collect::<Vec<_>>() {
                let kp = dag.committee().keypair(author);
                let v = Vertex::new(Round(r), author, Block::empty(), parents.clone(), &kp);
                assert_eq!(dag.try_insert(v), Ok(InsertOutcome::Inserted));
            }
        }
        assert_eq!(dag.len(), 6 * 4);
        let top = dag.vertex_by_author(Round(8), ValidatorId(0)).unwrap().clone();
        let mid = dag.vertex_by_author(Round(4), ValidatorId(2)).unwrap().clone();
        assert!(dag.reachable(&top, &mid));
        assert_eq!(dag.reachable(&top, &mid), dag.reachable_bfs(&top, &mid));
        // History bottoms out at the GC horizon (round 3).
        let history = dag.causal_history(&top);
        assert_eq!(history.len(), 6 * 4 - 3, "rounds 3..=8, minus round-8 peers");
        assert!(history.iter().all(|v| v.round() >= Round(3)));
    }

    #[test]
    fn reachability_survives_gc_of_ordered_prefix() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(6);
        let mut dag = builder.into_dag();
        dag.gc(Round(2));
        let top = dag.vertex_by_author(Round(5), ValidatorId(0)).unwrap().clone();
        let mid = dag.vertex_by_author(Round(3), ValidatorId(2)).unwrap().clone();
        assert!(dag.reachable(&top, &mid));
    }

    #[test]
    fn missing_from_lists_unknown_digests() {
        let c = committee4();
        let mut builder = DagBuilder::new(c);
        builder.extend_full_rounds(1);
        let dag = builder.dag();
        let known = dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().digest();
        let ghost = hh_crypto::sha256(b"ghost");
        assert_eq!(dag.missing_from(&[known, ghost]), vec![ghost]);
        assert!(dag.missing_from(&[known]).is_empty());
    }
}
