//! Deterministic DAG construction for tests and benchmarks.
//!
//! Consensus and scheduling tests need DAGs with precise shapes: full
//! rounds, rounds missing specific authors, rounds whose vertices skip
//! specific parents (withheld votes). [`DagBuilder`] builds them on top of
//! the real validation path ([`Dag::try_insert`]), so test DAGs obey
//! exactly the invariants production DAGs do.

use crate::store::Dag;
use hh_crypto::{Digest, Keypair};
use hh_types::{Block, Committee, Round, Transaction, ValidatorId, Vertex};

/// Builds the deterministic *twin* of `vertex`: same round, author and
/// parents, but a different block — hence a different digest — signed
/// with the author's key.
///
/// This is the canonical equivocation artifact: a DAG holding `vertex`
/// rejects the twin with `DagError::Equivocation`, and the certified
/// broadcast layer refuses to ack it after the original. Used by the
/// simulator's `equivocate` adversary and the evidence oracle tests, so
/// twins in tests and twins under attack are byte-for-byte the same
/// construction.
///
/// The twin's block is a single marker transaction whose client id is
/// `u32::MAX` — outside any real client's id space — so the twin can
/// never collide with an honestly proposed block.
pub fn twin_of(vertex: &Vertex, keypair: &Keypair) -> Vertex {
    let marker = Transaction::new(u32::MAX, vertex.round().0, 0);
    let twin = Vertex::new(
        vertex.round(),
        vertex.author(),
        Block::new(vec![marker]),
        vertex.parents().to_vec(),
        keypair,
    );
    debug_assert_ne!(twin.digest(), vertex.digest(), "twin must differ from the original");
    twin
}

/// Builds structured DAGs for tests.
///
/// ```
/// use hh_dag::testkit::DagBuilder;
/// use hh_types::{Committee, Round, ValidatorId};
///
/// let mut b = DagBuilder::new(Committee::new_equal_stake(4));
/// b.extend_full_rounds(2);              // rounds 0,1: everyone, all edges
/// b.extend_round_without(&[ValidatorId(2)]); // round 2: v2 missing
/// assert_eq!(b.dag().round_len(Round(2)), 3);
/// ```
#[derive(Debug)]
pub struct DagBuilder {
    dag: Dag,
    committee: Committee,
    next_round: Round,
    tx_seq: u64,
}

impl DagBuilder {
    /// A builder over an empty DAG.
    pub fn new(committee: Committee) -> Self {
        DagBuilder { dag: Dag::new(committee.clone()), committee, next_round: Round(0), tx_seq: 0 }
    }

    /// The round the next `extend_*` call will create.
    pub fn next_round(&self) -> Round {
        self.next_round
    }

    /// Borrows the DAG under construction.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Consumes the builder, returning the DAG.
    pub fn into_dag(self) -> Dag {
        self.dag
    }

    /// Appends `count` rounds in which every validator authors a vertex
    /// linking to every previous-round vertex.
    pub fn extend_full_rounds(&mut self, count: usize) -> &mut Self {
        for _ in 0..count {
            let all: Vec<ValidatorId> = self.committee.ids().collect();
            self.extend_round_custom(&all, |_| None);
        }
        self
    }

    /// Appends one round authored by everyone, where every vertex links to
    /// all previous-round vertices *except* those authored by `excluded`.
    ///
    /// Models "the excluded authors' vertices arrived too late to vote for".
    pub fn extend_round_excluding(&mut self, excluded: &[ValidatorId]) -> &mut Self {
        let all: Vec<ValidatorId> = self.committee.ids().collect();
        let excluded = excluded.to_vec();
        self.extend_round_custom(&all, move |_| Some(excluded.clone()))
    }

    /// Appends one round in which only validators *not* in `absent` author
    /// vertices (modelling crashed validators), each linking to all
    /// previous-round vertices.
    pub fn extend_round_without(&mut self, absent: &[ValidatorId]) -> &mut Self {
        let authors: Vec<ValidatorId> =
            self.committee.ids().filter(|id| !absent.contains(id)).collect();
        self.extend_round_custom(&authors, |_| None)
    }

    /// Appends one round authored by `authors`; for each author,
    /// `exclude_parents(author)` names previous-round authors whose vertices
    /// must *not* be linked (`None` = link everything available).
    ///
    /// # Panics
    ///
    /// Panics if the produced vertices violate DAG invariants (e.g. the
    /// remaining parents fall below quorum) — test shapes are expected to
    /// be constructed deliberately.
    pub fn extend_round_custom(
        &mut self,
        authors: &[ValidatorId],
        exclude_parents: impl Fn(ValidatorId) -> Option<Vec<ValidatorId>>,
    ) -> &mut Self {
        let round = self.next_round;
        let prev = if round.0 == 0 { None } else { Some(round.prev()) };
        for &author in authors {
            let parents: Vec<Digest> = match prev {
                None => Vec::new(),
                Some(prev_round) => {
                    let excluded = exclude_parents(author).unwrap_or_default();
                    let mut parents: Vec<(ValidatorId, Digest)> = self
                        .dag
                        .round_vertices(prev_round)
                        .filter(|v| !excluded.contains(&v.author()))
                        .map(|v| (v.author(), v.digest()))
                        .collect();
                    parents.sort(); // deterministic parent order
                    parents.into_iter().map(|(_, d)| d).collect()
                }
            };
            let tx = Transaction::new(author.0 as u32, self.tx_seq, round.0 * 1000);
            self.tx_seq += 1;
            let vertex = Vertex::new(
                round,
                author,
                Block::new(vec![tx]),
                parents,
                &self.committee.keypair(author),
            );
            self.dag
                .try_insert(vertex)
                .unwrap_or_else(|e| panic!("testkit vertex rejected in round {round}: {e}"));
        }
        self.next_round = round.next();
        self
    }

    /// The twin (see [`twin_of`]) of the vertex `author` holds in `round`.
    ///
    /// The twin is *returned, not inserted*: the DAG enforces one vertex
    /// per `(round, author)`, so feeding the twin back through
    /// `try_insert` is exactly the equivocation rejection tests exercise.
    ///
    /// # Panics
    ///
    /// Panics if `author` has no vertex in `round`.
    pub fn twin_for(&self, round: Round, author: ValidatorId) -> Vertex {
        let original = self
            .dag
            .vertex_by_author(round, author)
            .unwrap_or_else(|| panic!("no vertex by {author} in round {round}"));
        twin_of(original, &self.committee.keypair(author))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rounds_have_everyone() {
        let mut b = DagBuilder::new(Committee::new_equal_stake(7));
        b.extend_full_rounds(3);
        for r in 0..3 {
            assert_eq!(b.dag().round_len(Round(r)), 7);
        }
        assert_eq!(b.next_round(), Round(3));
    }

    #[test]
    fn excluding_removes_edges_not_vertices() {
        let mut b = DagBuilder::new(Committee::new_equal_stake(4));
        b.extend_full_rounds(1);
        b.extend_round_excluding(&[ValidatorId(3)]);
        let dag = b.dag();
        assert_eq!(dag.round_len(Round(1)), 4);
        for v in dag.round_vertices(Round(1)) {
            assert_eq!(v.parents().len(), 3);
        }
    }

    #[test]
    fn without_removes_vertices() {
        let mut b = DagBuilder::new(Committee::new_equal_stake(4));
        b.extend_full_rounds(1);
        b.extend_round_without(&[ValidatorId(0)]);
        assert_eq!(b.dag().round_len(Round(1)), 3);
        assert!(b.dag().vertex_by_author(Round(1), ValidatorId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "testkit vertex rejected")]
    fn sub_quorum_parents_panic() {
        let mut b = DagBuilder::new(Committee::new_equal_stake(4));
        b.extend_full_rounds(1);
        // Excluding 2 of 4 parents leaves stake 2 < quorum 3.
        b.extend_round_excluding(&[ValidatorId(0), ValidatorId(1)]);
    }

    #[test]
    fn twin_shares_slot_but_not_digest() {
        let committee = Committee::new_equal_stake(4);
        let mut b = DagBuilder::new(committee.clone());
        b.extend_full_rounds(2);
        let original = b.dag().vertex_by_author(Round(1), ValidatorId(2)).unwrap().clone();
        let twin = b.twin_for(Round(1), ValidatorId(2));
        assert_eq!(twin.round(), original.round());
        assert_eq!(twin.author(), original.author());
        assert_eq!(twin.parents(), original.parents());
        assert_ne!(twin.digest(), original.digest());
        // Signed with the real key: the structural validation path accepts
        // it, so only the one-vertex-per-slot rule can reject it.
        assert!(twin.verify(committee.validator(ValidatorId(2)).unwrap().public_key()));
        // Deterministic: the same slot always yields the same twin.
        assert_eq!(b.twin_for(Round(1), ValidatorId(2)).digest(), twin.digest());
    }

    #[test]
    fn twin_is_rejected_as_equivocation() {
        let mut b = DagBuilder::new(Committee::new_equal_stake(4));
        b.extend_full_rounds(2);
        let twin = b.twin_for(Round(1), ValidatorId(0));
        let mut dag = b.into_dag();
        assert!(matches!(
            dag.try_insert(twin),
            Err(crate::DagError::Equivocation { author: ValidatorId(0), round: Round(1) })
        ));
    }
}
