//! Property tests pinning the indexed DAG queries to digest-walking
//! oracles.
//!
//! The slot-interned store answers `reachable` with a bitset probe and
//! `causal_sub_dag` with a level walk over integer adjacency. Both are
//! checked here against independent implementations that work the way
//! the pre-index store did — breadth-first over digests through the
//! public API — on randomized DAGs with skipped authors, withheld
//! edges, multi-round gaps, GC below the anchor, and equivocation
//! attempts.

use hh_crypto::Digest;
use hh_dag::testkit::DagBuilder;
use hh_dag::Dag;
use hh_types::{Block, Committee, Round, ValidatorId, Vertex};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// SplitMix64 — the shape generator, seeded per case.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// Builds a random structurally valid DAG: every round may drop up to
/// `f` authors entirely (crash shape — consecutive drops of the same
/// author produce multi-round gaps) and every present author may
/// withhold edges to a few previous-round vertices (vote-withholding
/// shape), always keeping parent stake at quorum.
fn random_dag(n: usize, rounds: usize, seed: u64) -> Dag {
    let committee = Committee::new_equal_stake(n);
    let quorum = committee.quorum_threshold().0 as usize;
    let f = n - quorum;
    let mut rng = Mix(seed);
    let mut b = DagBuilder::new(committee.clone());
    b.extend_full_rounds(1);
    let mut prev_present = n;
    for _ in 1..rounds {
        let absent_count = rng.below(f as u64 + 1) as usize;
        let mut absent: Vec<ValidatorId> = Vec::new();
        while absent.len() < absent_count {
            let candidate = ValidatorId(rng.below(n as u64) as u16);
            if !absent.contains(&candidate) {
                absent.push(candidate);
            }
        }
        let authors: Vec<ValidatorId> = committee.ids().filter(|id| !absent.contains(id)).collect();
        // Each author may exclude up to `prev_present - quorum` parents.
        let budget = prev_present - quorum;
        let mut exclusions: Vec<Vec<ValidatorId>> = Vec::new();
        for _ in &authors {
            let count = rng.below(budget as u64 + 1) as usize;
            let mut excluded = Vec::new();
            while excluded.len() < count {
                let candidate = ValidatorId(rng.below(n as u64) as u16);
                if !excluded.contains(&candidate) {
                    excluded.push(candidate);
                }
            }
            exclusions.push(excluded);
        }
        let authors_for_closure = authors.clone();
        b.extend_round_custom(&authors, move |author| {
            let idx = authors_for_closure.iter().position(|a| *a == author).expect("author");
            Some(exclusions[idx].clone())
        });
        prev_present = authors.len();
    }
    b.into_dag()
}

/// The pre-index reachability: BFS over digests through the public API.
fn reachable_oracle(dag: &Dag, from: &Vertex, to: &Vertex) -> bool {
    if from.digest() == to.digest() {
        return true;
    }
    if from.round() <= to.round() {
        return false;
    }
    let target_round = to.round();
    let target = to.digest();
    let mut frontier: VecDeque<&Arc<Vertex>> = VecDeque::new();
    let mut seen: HashSet<Digest> = HashSet::new();
    for parent in from.parents() {
        if let Some(pv) = dag.get(parent) {
            if seen.insert(*parent) {
                frontier.push_back(pv);
            }
        }
    }
    while let Some(v) = frontier.pop_front() {
        if v.digest() == target {
            return true;
        }
        if v.round() <= target_round {
            continue;
        }
        for parent in v.parents() {
            if let Some(pv) = dag.get(parent) {
                if pv.round() >= target_round && seen.insert(*parent) {
                    frontier.push_back(pv);
                }
            }
        }
    }
    false
}

/// The pre-index sub-DAG traversal: BFS over digests, then the
/// deterministic `(round, author)` sort its consumers used to apply.
fn causal_sub_dag_oracle(
    dag: &Dag,
    anchor: &Vertex,
    is_ordered: impl Fn(&Digest) -> bool,
) -> Vec<Arc<Vertex>> {
    let mut out = Vec::new();
    let mut seen: HashSet<Digest> = HashSet::new();
    let mut frontier: VecDeque<Arc<Vertex>> = VecDeque::new();
    if let Some(a) = dag.get(&anchor.digest()) {
        if !is_ordered(&a.digest()) {
            seen.insert(a.digest());
            frontier.push_back(a.clone());
        }
    }
    while let Some(v) = frontier.pop_front() {
        for parent in v.parents() {
            if let Some(pv) = dag.get(parent) {
                if !is_ordered(parent) && seen.insert(*parent) {
                    frontier.push_back(pv.clone());
                }
            }
        }
        out.push(v);
    }
    out.sort_by_key(|v| (v.round(), v.author()));
    out
}

fn all_vertices(dag: &Dag) -> Vec<Arc<Vertex>> {
    let mut out = Vec::new();
    let mut r = dag.gc_round();
    while let Some(top) = dag.highest_round() {
        if r > top {
            break;
        }
        out.extend(dag.round_vertices(r).cloned());
        r = r.next();
    }
    out
}

fn digests(vs: &[Arc<Vertex>]) -> Vec<Digest> {
    vs.iter().map(|v| v.digest()).collect()
}

/// A window-2 copy of `dag` (same inserts), forcing deep queries onto
/// the beyond-window fallback path. Must be taken before any GC — a
/// garbage-collected prefix cannot be re-inserted.
fn window2_twin(dag: &Dag) -> Dag {
    let mut windowed = Dag::with_reach_window(dag.committee().clone(), 2);
    for v in all_vertices(dag) {
        windowed.try_insert((*v).clone()).expect("re-insert into window-2 twin");
    }
    windowed
}

/// Checks every query of `dag` against the oracles, pairwise over all
/// stored vertices; `windowed` is its window-2 twin run through the same
/// assertions.
fn check_dag(dag: &Dag, windowed: &Dag, rng: &mut Mix) {
    let vertices = all_vertices(dag);

    for from in &vertices {
        for to in &vertices {
            let expected = reachable_oracle(dag, from, to);
            assert_eq!(dag.reachable(from, to), expected, "bitset vs oracle: {from} -> {to}");
            assert_eq!(
                windowed.reachable(from, to),
                expected,
                "window-2 fallback vs oracle: {from} -> {to}"
            );
        }
    }

    // Sub-DAG equivalence from every vertex of the top two rounds, under
    // (a) nothing ordered, (b) a committed prefix below a random round
    // plus random extra ordered vertices.
    let top = dag.highest_round().expect("non-empty");
    let prefix = Round(dag.gc_round().0 + rng.below(top.0 - dag.gc_round().0 + 1));
    let mut ordered: HashSet<Digest> =
        vertices.iter().filter(|v| v.round() < prefix).map(|v| v.digest()).collect();
    for v in &vertices {
        if rng.below(8) == 0 {
            ordered.insert(v.digest());
        }
    }
    for anchor in vertices.iter().filter(|v| v.round().0 + 1 >= top.0) {
        let fresh = dag.causal_sub_dag(anchor, |_| false);
        assert_eq!(
            digests(&fresh),
            digests(&causal_sub_dag_oracle(dag, anchor, |_| false)),
            "full history from {anchor}"
        );
        let pruned = dag.causal_sub_dag(anchor, |d| ordered.contains(d));
        assert_eq!(
            digests(&pruned),
            digests(&causal_sub_dag_oracle(dag, anchor, |d| ordered.contains(d))),
            "pruned history from {anchor} (prefix {prefix})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized shapes: skipped authors, withheld edges, multi-round
    /// gaps. Bitset `reachable` and the indexed `causal_sub_dag` must
    /// match the digest-BFS oracles exactly.
    fn indexed_queries_match_oracles(
        n in 4usize..8,
        rounds in 2usize..11,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(n, rounds, seed);
        check_dag(&dag, &window2_twin(&dag), &mut Mix(seed ^ 0xDEAD_BEEF));
    }

    /// GC below the anchor retires and recycles slots; every query must
    /// still match the oracles on the surviving suffix.
    fn queries_match_oracles_after_gc(
        n in 4usize..8,
        rounds in 5usize..11,
        seed in any::<u64>(),
    ) {
        let mut dag = random_dag(n, rounds, seed);
        let mut windowed = window2_twin(&dag);
        let mut rng = Mix(seed ^ 0x5EED);
        let horizon = Round(1 + rng.below(rounds as u64 - 2));
        dag.gc(horizon);
        windowed.gc(horizon);
        prop_assert_eq!(dag.gc_round(), horizon);
        check_dag(&dag, &windowed, &mut rng);
    }

    /// Equivocation duplicates are rejected without disturbing the index:
    /// the stored twin keeps answering exactly like the oracle, and the
    /// foreign twin is unreachable from everything.
    fn equivocation_leaves_index_intact(
        n in 4usize..8,
        rounds in 3usize..9,
        seed in any::<u64>(),
    ) {
        let mut dag = random_dag(n, rounds, seed);
        let mut rng = Mix(seed ^ 0xE9);
        let committee = dag.committee().clone();
        let round = Round(1 + rng.below(rounds as u64 - 1));
        let victim = dag
            .round_vertices(round)
            .nth(rng.below(dag.round_len(round) as u64) as usize)
            .expect("round non-empty")
            .clone();
        // Same (round, author), same parents, different block.
        let twin = Vertex::new(
            victim.round(),
            victim.author(),
            Block::new(vec![hh_types::Transaction::new(9, 9, 9)]),
            victim.parents().to_vec(),
            &committee.keypair(victim.author()),
        );
        prop_assert_ne!(twin.digest(), victim.digest());
        let before = dag.len();
        prop_assert!(matches!(
            dag.try_insert(twin.clone()),
            Err(hh_dag::DagError::Equivocation { .. })
        ));
        prop_assert_eq!(dag.len(), before);
        for v in all_vertices(&dag) {
            prop_assert!(!dag.reachable(&v, &twin), "foreign twin reachable from {}", v);
            prop_assert_eq!(
                dag.reachable(&v, &victim),
                reachable_oracle(&dag, &v, &victim),
                "victim query diverged after equivocation attempt"
            );
        }
        check_dag(&dag, &window2_twin(&dag), &mut rng);
    }
}
