//! Link-level network chaos: scheduled windows of frame drop,
//! duplication, reordering and corruption.
//!
//! A [`ChaosPlan`] is the lowered, validated form of a scenario's
//! `[[faults.chaos]]` tables. Each [`ChaosWindow`] covers a set of
//! directed links (all links, one node's links, or a single directed
//! pair) for a half-open time interval and carries independent rates
//! for each effect. The simulator consults [`ChaosPlan::window_at`] on
//! every routed frame; when no window matches — in particular, in every
//! chaos-free run — the plan draws nothing from the RNG, so existing
//! executions stay bit-identical.
//!
//! Overlap on the same directed link at the same instant is rejected at
//! schedule-validation time (in `hh-sim`), so `window_at` can return
//! the first match without ambiguity.

use crate::sim::NodeId;
use crate::time::{Duration, SimTime};

/// Which directed links a chaos window covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosScope {
    /// Every link between in-scope nodes.
    AllLinks,
    /// Every link touching `node`, inbound or outbound.
    Node(NodeId),
    /// The directed link `from -> to` only.
    Pair {
        /// Sender side.
        from: NodeId,
        /// Receiver side.
        to: NodeId,
    },
}

impl ChaosScope {
    /// Whether the directed link `from -> to` falls under this scope.
    pub fn covers(&self, from: NodeId, to: NodeId) -> bool {
        match *self {
            ChaosScope::AllLinks => true,
            ChaosScope::Node(n) => from == n || to == n,
            ChaosScope::Pair { from: f, to: t } => from == f && to == t,
        }
    }

    /// Whether two scopes share at least one directed link. Any two
    /// node scopes intersect (the link between the two nodes belongs to
    /// both), which is what makes first-match lookup unambiguous once
    /// time-overlapping intersecting windows are rejected.
    pub fn intersects(&self, other: &ChaosScope) -> bool {
        match (*self, *other) {
            (ChaosScope::AllLinks, _) | (_, ChaosScope::AllLinks) => true,
            (ChaosScope::Node(_), ChaosScope::Node(_)) => true,
            (ChaosScope::Node(n), ChaosScope::Pair { from, to })
            | (ChaosScope::Pair { from, to }, ChaosScope::Node(n)) => from == n || to == n,
            (ChaosScope::Pair { from: f1, to: t1 }, ChaosScope::Pair { from: f2, to: t2 }) => {
                f1 == f2 && t1 == t2
            }
        }
    }
}

/// One chaos window: effect rates applied to every matching frame while
/// `from <= now < until`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosWindow {
    /// The links covered.
    pub scope: ChaosScope,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Probability a frame is dropped outright.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame's encoded bytes are flipped in flight.
    pub corrupt: f64,
    /// Maximum extra per-frame delay, drawn uniformly in `[0, reorder]`
    /// — frames overtake each other when it exceeds the latency spread.
    pub reorder: Duration,
}

/// The full chaos timeline of one run, plus the id bound separating
/// validators from co-simulated clients.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// Windows sorted by `from` (stable, preserving builder order among
    /// equal starts).
    windows: Vec<ChaosWindow>,
    /// Chaos only touches links whose endpoints are both below this
    /// bound; client actors ride above the validator ids and keep clean
    /// links to their local validator.
    scope_limit: usize,
}

impl ChaosPlan {
    /// An empty plan: no window ever matches, no RNG draw ever happens.
    pub fn new() -> Self {
        ChaosPlan { windows: Vec::new(), scope_limit: usize::MAX }
    }

    /// Adds a window, keeping the list sorted by start time.
    #[must_use]
    pub fn window(mut self, w: ChaosWindow) -> Self {
        let pos = self.windows.partition_point(|x| x.from <= w.from);
        self.windows.insert(pos, w);
        self
    }

    /// Restricts chaos to links whose endpoints are both below `n`
    /// (the validator ids; clients sit at `n..`).
    #[must_use]
    pub fn restrict_to(mut self, n: usize) -> Self {
        self.scope_limit = n;
        self
    }

    /// Whether the plan has no windows at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows, sorted by start time.
    pub fn windows(&self) -> &[ChaosWindow] {
        &self.windows
    }

    /// The window governing the directed link `from -> to` at `now`,
    /// if any. First match wins; schedule validation guarantees there
    /// is at most one.
    pub fn window_at(&self, from: NodeId, to: NodeId, now: SimTime) -> Option<&ChaosWindow> {
        if self.windows.is_empty() || from.0 >= self.scope_limit || to.0 >= self.scope_limit {
            return None;
        }
        let started = self.windows.partition_point(|w| w.from <= now);
        self.windows[..started].iter().find(|w| now < w.until && w.scope.covers(from, to))
    }
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(scope: ChaosScope, from_ms: u64, until_ms: u64) -> ChaosWindow {
        ChaosWindow {
            scope,
            from: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(until_ms),
            drop: 0.5,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder: Duration::ZERO,
        }
    }

    #[test]
    fn scope_coverage() {
        let all = ChaosScope::AllLinks;
        let node = ChaosScope::Node(NodeId(2));
        let pair = ChaosScope::Pair { from: NodeId(1), to: NodeId(3) };
        assert!(all.covers(NodeId(0), NodeId(9)));
        assert!(node.covers(NodeId(2), NodeId(5)));
        assert!(node.covers(NodeId(5), NodeId(2)));
        assert!(!node.covers(NodeId(0), NodeId(1)));
        assert!(pair.covers(NodeId(1), NodeId(3)));
        assert!(!pair.covers(NodeId(3), NodeId(1)), "pair scope is directed");
    }

    #[test]
    fn scope_intersection_is_symmetric_and_link_based() {
        let node_a = ChaosScope::Node(NodeId(0));
        let node_b = ChaosScope::Node(NodeId(1));
        // The link 0 -> 1 belongs to both node scopes.
        assert!(node_a.intersects(&node_b));
        let pair = ChaosScope::Pair { from: NodeId(2), to: NodeId(3) };
        assert!(!node_a.intersects(&pair));
        assert!(pair.intersects(&ChaosScope::Node(NodeId(3))));
        let other_pair = ChaosScope::Pair { from: NodeId(3), to: NodeId(2) };
        assert!(!pair.intersects(&other_pair), "reversed pair is a different link");
    }

    #[test]
    fn window_at_respects_time_and_scope() {
        let plan = ChaosPlan::new()
            .window(window(ChaosScope::Node(NodeId(1)), 100, 200))
            .window(window(ChaosScope::AllLinks, 300, 400));
        assert!(plan.window_at(NodeId(0), NodeId(1), SimTime::from_millis(50)).is_none());
        assert!(plan.window_at(NodeId(0), NodeId(1), SimTime::from_millis(150)).is_some());
        assert!(plan.window_at(NodeId(0), NodeId(2), SimTime::from_millis(150)).is_none());
        assert!(
            plan.window_at(NodeId(0), NodeId(1), SimTime::from_millis(200)).is_none(),
            "window end is exclusive"
        );
        assert!(plan.window_at(NodeId(5), NodeId(6), SimTime::from_millis(350)).is_some());
    }

    #[test]
    fn scope_limit_exempts_client_links() {
        let plan = ChaosPlan::new().window(window(ChaosScope::AllLinks, 0, 1000)).restrict_to(4);
        assert!(plan.window_at(NodeId(0), NodeId(3), SimTime::from_millis(10)).is_some());
        // Client 4 talking to validator 0 keeps a clean link.
        assert!(plan.window_at(NodeId(4), NodeId(0), SimTime::from_millis(10)).is_none());
        assert!(plan.window_at(NodeId(0), NodeId(4), SimTime::from_millis(10)).is_none());
    }

    #[test]
    fn empty_plan_never_matches() {
        let plan = ChaosPlan::new();
        assert!(plan.is_empty());
        assert!(plan.window_at(NodeId(0), NodeId(1), SimTime::from_millis(1)).is_none());
    }
}
