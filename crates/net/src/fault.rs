//! Fault injection plans.
//!
//! A [`FaultPlan`] declares, ahead of a run, when nodes crash, recover, slow
//! down, or partition. The paper's evaluation needs:
//!
//! * crash faults from t=0 (Fig. 2: 3/16/33 crashed validators);
//! * "less responsive" validators (the §1 Sui mainnet incident: 10% of
//!   validators suddenly slow);
//! * recovery (the crash-recovery feature of the production implementation);
//! * partitions, modelling the pre-GST adversary in liveness tests.
//!
//! The queries the simulator makes on the hot path — [`FaultPlan::
//! slowdown_delay`] and [`FaultPlan::partition_release`] run once per
//! routed message, [`FaultPlan::crashed_at`] per liveness probe — are
//! answered from indexes built incrementally as the plan is assembled: a
//! per-node crash/recovery timeline sorted for binary search, and window
//! lists sorted by start time so a lookup scans only windows that have
//! already opened. Builder-order accessors ([`FaultPlan::crashes`],
//! [`FaultPlan::recoveries`]) are preserved verbatim because the simulator
//! turns them into queue events whose sequence numbers must be stable.

use crate::time::{Duration, SimTime};
use crate::NodeId;

/// A per-node slowdown: all messages to and from `node` gain `extra` delay
/// while the window is active.
#[derive(Clone, Debug)]
pub struct SlowdownSpec {
    /// The degraded node.
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `SimTime::MAX` for "until the end".
    pub until: SimTime,
    /// Extra one-way delay added to each message.
    pub extra: Duration,
}

/// A network partition between two groups of nodes.
///
/// Messages crossing the cut during the window are buffered and delivered
/// when the partition heals (links stay reliable, per the model in §2.1).
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// One side of the cut.
    pub group_a: Vec<NodeId>,
    /// The other side. Nodes in neither group talk to everyone.
    pub group_b: Vec<NodeId>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive): the heal time.
    pub until: SimTime,
}

impl PartitionSpec {
    /// Whether a message `from → to` crosses the cut at time `now`.
    pub fn severs(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        let a_from = self.group_a.contains(&from);
        let b_from = self.group_b.contains(&from);
        let a_to = self.group_a.contains(&to);
        let b_to = self.group_b.contains(&to);
        (a_from && b_to) || (b_from && a_to)
    }
}

/// What happened to a node at a point on its crash/recovery timeline.
///
/// `Crash < Recover` so that at equal timestamps the recovery sorts last
/// and wins: a node crashed and recovered at the same instant is up,
/// matching the window semantics (`recover_at >= crash_at` cancels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum NodePhase {
    Crash,
    Recover,
}

/// A partition window indexed for the routing fast path: groups kept
/// sorted for binary-search membership.
#[derive(Clone, Debug)]
struct PartitionWindow {
    group_a: Vec<NodeId>,
    group_b: Vec<NodeId>,
    from: SimTime,
    until: SimTime,
}

impl PartitionWindow {
    fn severs(&self, from: NodeId, to: NodeId) -> bool {
        let a_from = self.group_a.binary_search(&from).is_ok();
        let b_from = self.group_b.binary_search(&from).is_ok();
        let a_to = self.group_a.binary_search(&to).is_ok();
        let b_to = self.group_b.binary_search(&to).is_ok();
        (a_from && b_to) || (b_from && a_to)
    }
}

/// The full fault schedule for a run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Crash events in builder order (the simulator's event-seq contract).
    crashes: Vec<(NodeId, SimTime)>,
    /// Recovery events in builder order.
    recoveries: Vec<(NodeId, SimTime)>,
    /// Slowdown windows sorted by `from`.
    slowdowns: Vec<SlowdownSpec>,
    /// Partition windows sorted by `from`, groups sorted for membership
    /// tests.
    partitions: Vec<PartitionWindow>,
    /// Per-node crash/recovery timeline sorted by `(node, time, phase)`;
    /// `crashed_at` binary-searches the node's segment.
    timeline: Vec<(NodeId, SimTime, NodePhase)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    fn index_phase(&mut self, node: NodeId, at: SimTime, phase: NodePhase) {
        let entry = (node, at, phase);
        let pos = self.timeline.partition_point(|e| *e <= entry);
        self.timeline.insert(pos, entry);
    }

    /// Crashes `node` at `at`: it stops processing messages and timers.
    #[must_use]
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push((node, at));
        self.index_phase(node, at, NodePhase::Crash);
        self
    }

    /// Crashes `nodes` at simulation start (the Fig. 2 configuration).
    #[must_use]
    pub fn crash_from_start<I: IntoIterator<Item = NodeId>>(mut self, nodes: I) -> Self {
        for n in nodes {
            self = self.crash(n, SimTime::ZERO);
        }
        self
    }

    /// Restarts `node` at `at` (its [`crate::Node::on_restart`] runs).
    #[must_use]
    pub fn recover(mut self, node: NodeId, at: SimTime) -> Self {
        self.recoveries.push((node, at));
        self.index_phase(node, at, NodePhase::Recover);
        self
    }

    /// Adds a slowdown window.
    #[must_use]
    pub fn slowdown(mut self, spec: SlowdownSpec) -> Self {
        let pos = self.slowdowns.partition_point(|s| s.from <= spec.from);
        self.slowdowns.insert(pos, spec);
        self
    }

    /// Adds a partition window.
    #[must_use]
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        let mut group_a = spec.group_a;
        let mut group_b = spec.group_b;
        group_a.sort_unstable();
        group_b.sort_unstable();
        let window = PartitionWindow { group_a, group_b, from: spec.from, until: spec.until };
        let pos = self.partitions.partition_point(|p| p.from <= window.from);
        self.partitions.insert(pos, window);
        self
    }

    /// Scheduled crash events, in builder order.
    pub fn crashes(&self) -> &[(NodeId, SimTime)] {
        &self.crashes
    }

    /// Scheduled recovery events, in builder order.
    pub fn recoveries(&self) -> &[(NodeId, SimTime)] {
        &self.recoveries
    }

    /// Extra one-way delay affecting a `from → to` message sent at `now`.
    pub fn slowdown_delay(&self, from: NodeId, to: NodeId, now: SimTime) -> Duration {
        let mut extra = Duration::ZERO;
        // Windows are sorted by start; everything past the partition point
        // has not opened yet.
        let opened = self.slowdowns.partition_point(|s| s.from <= now);
        for s in &self.slowdowns[..opened] {
            if (s.node == from || s.node == to) && now < s.until {
                extra = extra + s.extra;
            }
        }
        extra
    }

    /// If a `from → to` message sent at `now` crosses an active partition,
    /// returns the heal time it must wait for.
    pub fn partition_release(&self, from: NodeId, to: NodeId, now: SimTime) -> Option<SimTime> {
        let opened = self.partitions.partition_point(|p| p.from <= now);
        self.partitions[..opened]
            .iter()
            .filter(|p| now < p.until && p.severs(from, to))
            .map(|p| p.until)
            .max()
    }

    /// Whether `node` is crashed at `t` (crashed at or before, not yet
    /// recovered after the crash).
    ///
    /// Answered by binary search over the node's sorted event timeline:
    /// the latest crash-or-recover event at or before `t` decides.
    pub fn crashed_at(&self, node: NodeId, t: SimTime) -> bool {
        let lo = self.timeline.partition_point(|e| e.0 < node);
        let hi = self.timeline.partition_point(|e| e.0 <= node);
        let segment = &self.timeline[lo..hi];
        let events_before = segment.partition_point(|e| e.1 <= t);
        match segment[..events_before].last() {
            Some((_, _, NodePhase::Crash)) => true,
            Some((_, _, NodePhase::Recover)) | None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn crash_and_recover_windows() {
        let plan = FaultPlan::new()
            .crash(NodeId(1), SimTime::from_secs(10))
            .recover(NodeId(1), SimTime::from_secs(20));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(5)));
        assert!(plan.crashed_at(NodeId(1), SimTime::from_secs(10)));
        assert!(plan.crashed_at(NodeId(1), SimTime::from_secs(15)));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(20)));
        assert!(!plan.crashed_at(NodeId(2), SimTime::from_secs(15)));
    }

    #[test]
    fn crash_from_start() {
        let plan = FaultPlan::new().crash_from_start([NodeId(0), NodeId(3)]);
        assert!(plan.crashed_at(NodeId(0), SimTime::ZERO));
        assert!(plan.crashed_at(NodeId(3), SimTime::from_secs(100)));
        assert!(!plan.crashed_at(NodeId(1), SimTime::ZERO));
    }

    #[test]
    fn repeated_crash_after_recovery() {
        let plan = FaultPlan::new()
            .crash(NodeId(1), SimTime::from_secs(10))
            .recover(NodeId(1), SimTime::from_secs(20))
            .crash(NodeId(1), SimTime::from_secs(30));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(25)));
        assert!(plan.crashed_at(NodeId(1), SimTime::from_secs(31)));
    }

    #[test]
    fn recover_at_crash_instant_means_up() {
        let plan = FaultPlan::new()
            .crash(NodeId(1), SimTime::from_secs(10))
            .recover(NodeId(1), SimTime::from_secs(10));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(10)));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(11)));
    }

    #[test]
    fn stray_recovery_before_crash_does_not_cancel_it() {
        let plan = FaultPlan::new()
            .recover(NodeId(1), SimTime::from_secs(5))
            .crash(NodeId(1), SimTime::from_secs(10));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(7)));
        assert!(plan.crashed_at(NodeId(1), SimTime::from_secs(15)));
    }

    #[test]
    fn builder_order_is_preserved_for_event_accessors() {
        // The simulator's event sequence numbers follow accessor order, so
        // the index must never re-shuffle these.
        let plan = FaultPlan::new()
            .crash(NodeId(3), SimTime::from_secs(9))
            .crash(NodeId(1), SimTime::ZERO)
            .recover(NodeId(3), SimTime::from_secs(12))
            .recover(NodeId(1), SimTime::from_secs(4));
        assert_eq!(
            plan.crashes(),
            &[(NodeId(3), SimTime::from_secs(9)), (NodeId(1), SimTime::ZERO)]
        );
        assert_eq!(
            plan.recoveries(),
            &[(NodeId(3), SimTime::from_secs(12)), (NodeId(1), SimTime::from_secs(4))]
        );
    }

    #[test]
    fn slowdown_applies_both_directions_within_window() {
        let plan = FaultPlan::new().slowdown(SlowdownSpec {
            node: NodeId(2),
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            extra: Duration::from_millis(100),
        });
        let t = SimTime::from_millis(1500);
        assert_eq!(plan.slowdown_delay(NodeId(2), NodeId(0), t), Duration::from_millis(100));
        assert_eq!(plan.slowdown_delay(NodeId(0), NodeId(2), t), Duration::from_millis(100));
        assert_eq!(plan.slowdown_delay(NodeId(0), NodeId(1), t), Duration::ZERO);
        assert_eq!(
            plan.slowdown_delay(NodeId(2), NodeId(0), SimTime::from_secs(3)),
            Duration::ZERO
        );
    }

    #[test]
    fn overlapping_slowdowns_accumulate() {
        let spec = |extra| SlowdownSpec {
            node: NodeId(1),
            from: SimTime::ZERO,
            until: SimTime::MAX,
            extra: Duration::from_millis(extra),
        };
        let plan = FaultPlan::new().slowdown(spec(50)).slowdown(spec(25));
        assert_eq!(
            plan.slowdown_delay(NodeId(1), NodeId(0), SimTime::from_secs(1)),
            Duration::from_millis(75)
        );
    }

    #[test]
    fn partition_severs_cross_traffic_only() {
        let p = PartitionSpec {
            group_a: vec![NodeId(0), NodeId(1)],
            group_b: vec![NodeId(2), NodeId(3)],
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(5),
        };
        let plan = FaultPlan::new().partition(p);
        let mid = SimTime::from_secs(2);
        assert_eq!(plan.partition_release(NodeId(0), NodeId(2), mid), Some(SimTime::from_secs(5)));
        assert_eq!(plan.partition_release(NodeId(3), NodeId(1), mid), Some(SimTime::from_secs(5)));
        assert_eq!(plan.partition_release(NodeId(0), NodeId(1), mid), None);
        assert_eq!(plan.partition_release(NodeId(0), NodeId(2), SimTime::from_secs(6)), None);
        // A node outside both groups is unaffected.
        assert_eq!(plan.partition_release(NodeId(0), NodeId(9), mid), None);
    }

    #[test]
    fn overlapping_partitions_release_at_the_latest_heal() {
        let window = |from, until| PartitionSpec {
            group_a: vec![NodeId(0)],
            group_b: vec![NodeId(1)],
            from: SimTime::from_secs(from),
            until: SimTime::from_secs(until),
        };
        // Inserted out of start order; the index sorts them.
        let plan = FaultPlan::new().partition(window(3, 9)).partition(window(1, 5));
        assert_eq!(
            plan.partition_release(NodeId(0), NodeId(1), SimTime::from_secs(4)),
            Some(SimTime::from_secs(9))
        );
        assert_eq!(
            plan.partition_release(NodeId(0), NodeId(1), SimTime::from_secs(2)),
            Some(SimTime::from_secs(5))
        );
    }

    /// The indexed `crashed_at` must agree with a direct transcription of
    /// the window semantics on randomized event sets.
    #[test]
    fn crashed_at_matches_naive_oracle_on_random_schedules() {
        fn naive(
            crashes: &[(NodeId, SimTime)],
            recoveries: &[(NodeId, SimTime)],
            node: NodeId,
            t: SimTime,
        ) -> bool {
            let last_crash =
                crashes.iter().filter(|(n, at)| *n == node && *at <= t).map(|(_, at)| *at).max();
            let Some(crash_time) = last_crash else {
                return false;
            };
            !recoveries.iter().any(|(n, at)| *n == node && *at >= crash_time && *at <= t)
        }

        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut plan = FaultPlan::new();
            let mut crashes = Vec::new();
            let mut recoveries = Vec::new();
            for _ in 0..rng.gen_range(0..24usize) {
                let node = NodeId(rng.gen_range(0..6));
                let at = SimTime(rng.gen_range(0..40));
                if rng.gen_bool(0.5) {
                    plan = plan.crash(node, at);
                    crashes.push((node, at));
                } else {
                    plan = plan.recover(node, at);
                    recoveries.push((node, at));
                }
            }
            for _ in 0..40 {
                let node = NodeId(rng.gen_range(0..6));
                let t = SimTime(rng.gen_range(0..44));
                assert_eq!(
                    plan.crashed_at(node, t),
                    naive(&crashes, &recoveries, node, t),
                    "node {node} at {t}: crashes {crashes:?} recoveries {recoveries:?}"
                );
            }
        }
    }
}
