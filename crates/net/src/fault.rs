//! Fault injection plans.
//!
//! A [`FaultPlan`] declares, ahead of a run, when nodes crash, recover, slow
//! down, or partition. The paper's evaluation needs:
//!
//! * crash faults from t=0 (Fig. 2: 3/16/33 crashed validators);
//! * "less responsive" validators (the §1 Sui mainnet incident: 10% of
//!   validators suddenly slow);
//! * recovery (the crash-recovery feature of the production implementation).
//!
//! Partitions model the pre-GST adversary in liveness tests.

use crate::time::{Duration, SimTime};
use crate::NodeId;

/// A per-node slowdown: all messages to and from `node` gain `extra` delay
/// while the window is active.
#[derive(Clone, Debug)]
pub struct SlowdownSpec {
    /// The degraded node.
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `SimTime::MAX` for "until the end".
    pub until: SimTime,
    /// Extra one-way delay added to each message.
    pub extra: Duration,
}

/// A network partition between two groups of nodes.
///
/// Messages crossing the cut during the window are buffered and delivered
/// when the partition heals (links stay reliable, per the model in §2.1).
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// One side of the cut.
    pub group_a: Vec<NodeId>,
    /// The other side. Nodes in neither group talk to everyone.
    pub group_b: Vec<NodeId>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive): the heal time.
    pub until: SimTime,
}

impl PartitionSpec {
    /// Whether a message `from → to` crosses the cut at time `now`.
    pub fn severs(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        let a_from = self.group_a.contains(&from);
        let b_from = self.group_b.contains(&from);
        let a_to = self.group_a.contains(&to);
        let b_to = self.group_b.contains(&to);
        (a_from && b_to) || (b_from && a_to)
    }
}

/// The full fault schedule for a run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    crashes: Vec<(NodeId, SimTime)>,
    recoveries: Vec<(NodeId, SimTime)>,
    slowdowns: Vec<SlowdownSpec>,
    partitions: Vec<PartitionSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Crashes `node` at `at`: it stops processing messages and timers.
    #[must_use]
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push((node, at));
        self
    }

    /// Crashes `nodes` at simulation start (the Fig. 2 configuration).
    #[must_use]
    pub fn crash_from_start<I: IntoIterator<Item = NodeId>>(mut self, nodes: I) -> Self {
        for n in nodes {
            self.crashes.push((n, SimTime::ZERO));
        }
        self
    }

    /// Restarts `node` at `at` (its [`crate::Node::on_restart`] runs).
    #[must_use]
    pub fn recover(mut self, node: NodeId, at: SimTime) -> Self {
        self.recoveries.push((node, at));
        self
    }

    /// Adds a slowdown window.
    #[must_use]
    pub fn slowdown(mut self, spec: SlowdownSpec) -> Self {
        self.slowdowns.push(spec);
        self
    }

    /// Adds a partition window.
    #[must_use]
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        self.partitions.push(spec);
        self
    }

    /// Scheduled crash events.
    pub fn crashes(&self) -> &[(NodeId, SimTime)] {
        &self.crashes
    }

    /// Scheduled recovery events.
    pub fn recoveries(&self) -> &[(NodeId, SimTime)] {
        &self.recoveries
    }

    /// Extra one-way delay affecting a `from → to` message sent at `now`.
    pub fn slowdown_delay(&self, from: NodeId, to: NodeId, now: SimTime) -> Duration {
        let mut extra = Duration::ZERO;
        for s in &self.slowdowns {
            if (s.node == from || s.node == to) && now >= s.from && now < s.until {
                extra = extra + s.extra;
            }
        }
        extra
    }

    /// If a `from → to` message sent at `now` crosses an active partition,
    /// returns the heal time it must wait for.
    pub fn partition_release(&self, from: NodeId, to: NodeId, now: SimTime) -> Option<SimTime> {
        self.partitions.iter().filter(|p| p.severs(from, to, now)).map(|p| p.until).max()
    }

    /// Nodes that are crashed at `t` (crashed at or before, not yet
    /// recovered after the crash).
    pub fn crashed_at(&self, node: NodeId, t: SimTime) -> bool {
        let last_crash =
            self.crashes.iter().filter(|(n, at)| *n == node && *at <= t).map(|(_, at)| *at).max();
        let Some(crash_time) = last_crash else {
            return false;
        };
        // Recovered strictly after the crash and at or before t?
        !self.recoveries.iter().any(|(n, at)| *n == node && *at >= crash_time && *at <= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_and_recover_windows() {
        let plan = FaultPlan::new()
            .crash(NodeId(1), SimTime::from_secs(10))
            .recover(NodeId(1), SimTime::from_secs(20));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(5)));
        assert!(plan.crashed_at(NodeId(1), SimTime::from_secs(10)));
        assert!(plan.crashed_at(NodeId(1), SimTime::from_secs(15)));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(20)));
        assert!(!plan.crashed_at(NodeId(2), SimTime::from_secs(15)));
    }

    #[test]
    fn crash_from_start() {
        let plan = FaultPlan::new().crash_from_start([NodeId(0), NodeId(3)]);
        assert!(plan.crashed_at(NodeId(0), SimTime::ZERO));
        assert!(plan.crashed_at(NodeId(3), SimTime::from_secs(100)));
        assert!(!plan.crashed_at(NodeId(1), SimTime::ZERO));
    }

    #[test]
    fn repeated_crash_after_recovery() {
        let plan = FaultPlan::new()
            .crash(NodeId(1), SimTime::from_secs(10))
            .recover(NodeId(1), SimTime::from_secs(20))
            .crash(NodeId(1), SimTime::from_secs(30));
        assert!(!plan.crashed_at(NodeId(1), SimTime::from_secs(25)));
        assert!(plan.crashed_at(NodeId(1), SimTime::from_secs(31)));
    }

    #[test]
    fn slowdown_applies_both_directions_within_window() {
        let plan = FaultPlan::new().slowdown(SlowdownSpec {
            node: NodeId(2),
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            extra: Duration::from_millis(100),
        });
        let t = SimTime::from_millis(1500);
        assert_eq!(plan.slowdown_delay(NodeId(2), NodeId(0), t), Duration::from_millis(100));
        assert_eq!(plan.slowdown_delay(NodeId(0), NodeId(2), t), Duration::from_millis(100));
        assert_eq!(plan.slowdown_delay(NodeId(0), NodeId(1), t), Duration::ZERO);
        assert_eq!(
            plan.slowdown_delay(NodeId(2), NodeId(0), SimTime::from_secs(3)),
            Duration::ZERO
        );
    }

    #[test]
    fn overlapping_slowdowns_accumulate() {
        let spec = |extra| SlowdownSpec {
            node: NodeId(1),
            from: SimTime::ZERO,
            until: SimTime::MAX,
            extra: Duration::from_millis(extra),
        };
        let plan = FaultPlan::new().slowdown(spec(50)).slowdown(spec(25));
        assert_eq!(
            plan.slowdown_delay(NodeId(1), NodeId(0), SimTime::from_secs(1)),
            Duration::from_millis(75)
        );
    }

    #[test]
    fn partition_severs_cross_traffic_only() {
        let p = PartitionSpec {
            group_a: vec![NodeId(0), NodeId(1)],
            group_b: vec![NodeId(2), NodeId(3)],
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(5),
        };
        let plan = FaultPlan::new().partition(p);
        let mid = SimTime::from_secs(2);
        assert_eq!(plan.partition_release(NodeId(0), NodeId(2), mid), Some(SimTime::from_secs(5)));
        assert_eq!(plan.partition_release(NodeId(3), NodeId(1), mid), Some(SimTime::from_secs(5)));
        assert_eq!(plan.partition_release(NodeId(0), NodeId(1), mid), None);
        assert_eq!(plan.partition_release(NodeId(0), NodeId(2), SimTime::from_secs(6)), None);
        // A node outside both groups is unaffected.
        assert_eq!(plan.partition_release(NodeId(0), NodeId(9), mid), None);
    }
}
