//! Link latency models.
//!
//! The paper's testbed spreads validators over 13 AWS regions (§5). The
//! [`GeoLatency`] model embeds an approximate inter-region RTT matrix for
//! exactly those regions and assigns nodes to regions round-robin ("as
//! equally as possible", like the paper). One-way delay is half the RTT plus
//! multiplicative jitter.

use crate::time::Duration;
use crate::NodeId;
use rand::Rng;

/// Number of AWS regions in the paper's deployment.
pub const REGION_COUNT: usize = 13;

/// One of the paper's 13 AWS regions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Region {
    /// N. Virginia
    UsEast1,
    /// Oregon
    UsWest2,
    /// Canada (Montreal)
    CaCentral1,
    /// Frankfurt
    EuCentral1,
    /// Ireland
    EuWest1,
    /// London
    EuWest2,
    /// Paris
    EuWest3,
    /// Stockholm
    EuNorth1,
    /// Mumbai
    ApSouth1,
    /// Singapore
    ApSoutheast1,
    /// Sydney
    ApSoutheast2,
    /// Tokyo
    ApNortheast1,
    /// Seoul
    ApNortheast2,
}

impl Region {
    /// All regions, in the paper's listing order.
    pub const ALL: [Region; REGION_COUNT] = [
        Region::UsEast1,
        Region::UsWest2,
        Region::CaCentral1,
        Region::EuCentral1,
        Region::EuWest1,
        Region::EuWest2,
        Region::EuWest3,
        Region::EuNorth1,
        Region::ApSouth1,
        Region::ApSoutheast1,
        Region::ApSoutheast2,
        Region::ApNortheast1,
        Region::ApNortheast2,
    ];

    /// The AWS region name.
    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast1 => "us-east-1",
            Region::UsWest2 => "us-west-2",
            Region::CaCentral1 => "ca-central-1",
            Region::EuCentral1 => "eu-central-1",
            Region::EuWest1 => "eu-west-1",
            Region::EuWest2 => "eu-west-2",
            Region::EuWest3 => "eu-west-3",
            Region::EuNorth1 => "eu-north-1",
            Region::ApSouth1 => "ap-south-1",
            Region::ApSoutheast1 => "ap-southeast-1",
            Region::ApSoutheast2 => "ap-southeast-2",
            Region::ApNortheast1 => "ap-northeast-1",
            Region::ApNortheast2 => "ap-northeast-2",
        }
    }

    fn index(self) -> usize {
        Region::ALL.iter().position(|r| *r == self).expect("member of ALL")
    }
}

/// Approximate inter-region round-trip times in milliseconds.
///
/// Values are representative public measurements (same order as
/// [`Region::ALL`]); only the row-to-row *shape* matters for the
/// reproduction — EU/US form a tight cluster, APAC regions are remote.
/// The matrix is symmetric with ~1 ms intra-region RTT.
const RTT_MS: [[u32; REGION_COUNT]; REGION_COUNT] = [
    //           use1 usw2  cac  euc  euw1 euw2 euw3  eun  aps  apse1 apse2 apne1 apne2
    /* use1  */
    [1, 65, 15, 90, 70, 75, 80, 110, 190, 220, 200, 160, 180],
    /* usw2  */ [65, 1, 60, 150, 130, 135, 140, 165, 220, 165, 140, 100, 120],
    /* cac   */ [15, 60, 1, 95, 75, 80, 85, 110, 200, 215, 210, 155, 175],
    /* euc   */ [90, 150, 95, 1, 25, 15, 10, 25, 110, 160, 280, 230, 240],
    /* euw1  */ [70, 130, 75, 25, 1, 12, 18, 40, 125, 180, 280, 220, 240],
    /* euw2  */ [75, 135, 80, 15, 12, 1, 8, 30, 115, 170, 275, 215, 235],
    /* euw3  */ [80, 140, 85, 10, 18, 8, 1, 30, 105, 160, 280, 225, 235],
    /* eun   */ [110, 165, 110, 25, 40, 30, 30, 1, 140, 190, 300, 250, 260],
    /* aps   */ [190, 220, 200, 110, 125, 115, 105, 140, 1, 60, 150, 120, 130],
    /* apse1 */ [220, 165, 215, 160, 180, 170, 160, 190, 60, 1, 95, 70, 75],
    /* apse2 */ [200, 140, 210, 280, 280, 275, 280, 300, 150, 95, 1, 105, 135],
    /* apne1 */ [160, 100, 155, 230, 220, 215, 225, 250, 120, 70, 105, 1, 35],
    /* apne2 */ [180, 120, 175, 240, 240, 235, 235, 260, 130, 75, 135, 35, 1],
];

/// Geo-distributed latency: nodes assigned to the 13 regions round-robin.
#[derive(Clone, Debug)]
pub struct GeoLatency {
    assignment: Vec<Region>,
    /// Multiplicative jitter bound: delay is scaled by a factor drawn
    /// uniformly from `[1.0, 1.0 + jitter]`.
    jitter: f64,
}

impl GeoLatency {
    /// Assigns `n` nodes to regions round-robin with 10% jitter.
    pub fn round_robin(n: usize) -> Self {
        let assignment = (0..n).map(|i| Region::ALL[i % REGION_COUNT]).collect();
        GeoLatency { assignment, jitter: 0.10 }
    }

    /// Uses an explicit region assignment.
    pub fn with_assignment(assignment: Vec<Region>) -> Self {
        GeoLatency { assignment, jitter: 0.10 }
    }

    /// Overrides the jitter fraction.
    #[must_use]
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// The region a node lives in.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the assignment (the simulator validates
    /// node ids before calling in).
    pub fn region_of(&self, node: NodeId) -> Region {
        self.assignment[node.0]
    }

    fn one_way(&self, from: NodeId, to: NodeId, rng: &mut impl Rng) -> Duration {
        let a = self.assignment[from.0].index();
        let b = self.assignment[to.0].index();
        let rtt_us = RTT_MS[a][b] as f64 * 1000.0;
        let factor = 1.0 + rng.gen::<f64>() * self.jitter;
        Duration::from_micros((rtt_us / 2.0 * factor) as u64)
    }
}

/// How long a message takes from `from` to `to`.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Fixed one-way delay for every link (tests).
    Constant(Duration),
    /// One-way delay drawn uniformly from `[lo, hi]`.
    Uniform(Duration, Duration),
    /// The 13-region AWS matrix.
    Geo(GeoLatency),
}

impl LatencyModel {
    /// Samples the one-way delay for a message on `from → to`.
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut impl Rng) -> Duration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(lo, hi) => {
                let span = hi.as_micros().saturating_sub(lo.as_micros());
                let extra = if span == 0 { 0 } else { rng.gen_range(0..=span) };
                Duration::from_micros(lo.as_micros() + extra)
            }
            LatencyModel::Geo(geo) => geo.one_way(from, to, rng),
        }
    }

    /// An upper bound on the one-way delay this model can produce, used to
    /// sanity-check `delta` in [`crate::NetworkConfig`].
    pub fn max_delay(&self) -> Duration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(_, hi) => *hi,
            LatencyModel::Geo(geo) => {
                // Worst RTT in the matrix is 300ms; half plus max jitter.
                let worst_one_way_us = 150_000.0 * (1.0 + geo.jitter);
                Duration::from_micros(worst_one_way_us as u64)
            }
        }
    }
}

impl Default for LatencyModel {
    /// A 25 ms constant one-way delay: a fast homogeneous LAN-ish default
    /// for unit tests.
    fn default() -> Self {
        LatencyModel::Constant(Duration::from_millis(25))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matrix_is_symmetric_with_unit_diagonal() {
        for i in 0..REGION_COUNT {
            assert_eq!(RTT_MS[i][i], 1, "diagonal at {i}");
            for j in 0..REGION_COUNT {
                assert_eq!(RTT_MS[i][j], RTT_MS[j][i], "symmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn round_robin_assignment_is_balanced() {
        let geo = GeoLatency::round_robin(100);
        let mut counts = [0usize; REGION_COUNT];
        for i in 0..100 {
            counts[geo.region_of(NodeId(i)).index()] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "counts {counts:?}");
    }

    #[test]
    fn geo_delay_within_bounds() {
        let geo = GeoLatency::round_robin(26);
        let model = LatencyModel::Geo(geo);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = model.sample(NodeId(0), NodeId(10), &mut rng);
            assert!(d <= model.max_delay());
            assert!(d > Duration::ZERO);
        }
    }

    #[test]
    fn constant_model_is_constant() {
        let model = LatencyModel::Constant(Duration::from_millis(10));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(model.sample(NodeId(0), NodeId(1), &mut rng), Duration::from_millis(10));
        }
    }

    #[test]
    fn uniform_model_within_range() {
        let lo = Duration::from_millis(5);
        let hi = Duration::from_millis(15);
        let model = LatencyModel::Uniform(lo, hi);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_below_mid = false;
        let mut seen_above_mid = false;
        for _ in 0..500 {
            let d = model.sample(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= lo && d <= hi);
            if d.as_micros() < 10_000 {
                seen_below_mid = true;
            } else {
                seen_above_mid = true;
            }
        }
        assert!(seen_below_mid && seen_above_mid, "should spread across range");
    }

    #[test]
    fn geo_sampling_is_deterministic_per_seed() {
        let model = LatencyModel::Geo(GeoLatency::round_robin(13));
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50)
                .map(|i| model.sample(NodeId(i % 13), NodeId((i * 7) % 13), &mut rng).as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(9), sample(9));
        assert_ne!(sample(9), sample(10));
    }

    #[test]
    fn region_names_match_paper() {
        assert_eq!(Region::UsEast1.name(), "us-east-1");
        assert_eq!(Region::ApNortheast2.name(), "ap-northeast-2");
        assert_eq!(Region::ALL.len(), REGION_COUNT);
    }

    #[test]
    fn apac_is_farther_than_intra_eu() {
        // Sanity on the matrix shape the experiments rely on.
        let fra = Region::EuCentral1.index();
        let lon = Region::EuWest2.index();
        let syd = Region::ApSoutheast2.index();
        assert!(RTT_MS[fra][lon] < 30);
        assert!(RTT_MS[fra][syd] > 200);
    }
}
