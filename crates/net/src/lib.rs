//! Deterministic discrete-event network simulation.
//!
//! This crate is the stand-in for the paper's AWS deployment (13 regions,
//! `m5d.8xlarge` machines; §5 "Experimental setup") and for its
//! partially-synchronous network model (§2.1). It provides:
//!
//! * [`Simulator`] — a deterministic discrete-event loop driving a set of
//!   [`Node`] state machines. Identical seeds produce identical executions.
//! * [`LatencyModel`] / [`GeoLatency`] — per-link one-way delays, including
//!   an embedded RTT matrix for the paper's 13 AWS regions.
//! * Partial synchrony ([`NetworkConfig`]): before GST the (simulated)
//!   adversary may add arbitrary bounded delay and "drop" messages (they are
//!   retransmitted and always delivered eventually, matching the reliable
//!   links assumption); after GST every message arrives within `delta`.
//! * [`FaultPlan`] — crash, recovery, slowdown and partition injection.
//! * [`threaded`] — a small crossbeam-based runtime that runs the same
//!   [`Node`] implementations on real threads with wall-clock delays, used
//!   by examples that want to see the system run "for real".
//! * [`tcp`] — a framed TCP transport (length-prefixed frames,
//!   thread-per-peer, reconnect with backoff): the wire layer of the real
//!   `hh-node` runtime.
//!
//! The crate is intentionally generic: it knows nothing about consensus.
//! Nodes exchange an arbitrary `Clone` message type.
//!
//! # Example
//!
//! ```
//! use hh_net::{Context, Node, NodeId, NetworkConfig, Simulator, SimTime};
//!
//! /// Every node greets node 0; node 0 counts greetings.
//! struct Greeter { hellos: usize }
//!
//! impl Node for Greeter {
//!     type Message = &'static str;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
//!         if ctx.id() != NodeId(0) {
//!             ctx.send(NodeId(0), "hello");
//!         }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: Self::Message,
//!                   _ctx: &mut Context<'_, Self::Message>) {
//!         self.hellos += 1;
//!     }
//!     fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, Self::Message>) {}
//! }
//!
//! let nodes = (0..4).map(|_| Greeter { hellos: 0 }).collect();
//! let mut sim = Simulator::new(nodes, NetworkConfig::default(), 42);
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.node(NodeId(0)).hellos, 3);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod chaos;
mod fault;
mod latency;
pub mod prof;
mod sim;
pub mod tcp;
pub mod threaded;
mod time;
pub mod wheel;

pub use chaos::{ChaosPlan, ChaosScope, ChaosWindow};
pub use fault::{FaultPlan, PartitionSpec, SlowdownSpec};
pub use latency::{GeoLatency, LatencyModel, Region, REGION_COUNT};
pub use sim::{Context, NetworkConfig, Node, NodeId, PreGstAdversary, SimStats, Simulator};
pub use time::{Duration, SimTime};
