//! Flag-gated profiling counters for the simulator event loop.
//!
//! The mirror of `hh_crypto::prof` for the net layer (the two crates
//! share no dependency edge, so each carries its own flag). Off by
//! default at one relaxed atomic load per instrumented site; when on,
//! the [`crate::Simulator`] accrues wall-nanos and op counts for queue
//! operations (timing-wheel push/pop) and event dispatch (deliveries
//! vs timers) into thread-local cells. Delivery time *includes* the
//! handler's nested work — digest, verify, codec, queue pushes — so
//! sub-shares reported alongside it nest inside it rather than summing
//! with it.
//!
//! Wall-clock is nondeterministic: stderr-only, never report rows or
//! JSON.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns event-loop profiling on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is on: one relaxed load, the entire off-cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    static QUEUE_NS: Cell<u64> = const { Cell::new(0) };
    static QUEUE_OPS: Cell<u64> = const { Cell::new(0) };
    static DELIVER_NS: Cell<u64> = const { Cell::new(0) };
    static DELIVER_OPS: Cell<u64> = const { Cell::new(0) };
    static TIMER_NS: Cell<u64> = const { Cell::new(0) };
    static TIMER_OPS: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn accrue_queue(ns: u64) {
    QUEUE_NS.with(|c| c.set(c.get() + ns));
    QUEUE_OPS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn accrue_deliver(ns: u64) {
    DELIVER_NS.with(|c| c.set(c.get() + ns));
    DELIVER_OPS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn accrue_timer(ns: u64) {
    TIMER_NS.with(|c| c.set(c.get() + ns));
    TIMER_OPS.with(|c| c.set(c.get() + 1));
}

/// This thread's accumulated event-loop profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetProf {
    /// Nanos spent in timing-wheel push/pop operations.
    pub queue_ns: u64,
    /// Queue operations (pushes + pops).
    pub queue_ops: u64,
    /// Nanos spent dispatching message deliveries (handler inclusive).
    pub deliver_ns: u64,
    /// Message deliveries dispatched.
    pub deliver_ops: u64,
    /// Nanos spent dispatching timer callbacks (handler inclusive).
    pub timer_ns: u64,
    /// Timer callbacks dispatched.
    pub timer_ops: u64,
}

impl NetProf {
    /// Counter movement from `earlier` (taken on the same thread) to
    /// `self`.
    pub fn since(&self, earlier: &NetProf) -> NetProf {
        NetProf {
            queue_ns: self.queue_ns - earlier.queue_ns,
            queue_ops: self.queue_ops - earlier.queue_ops,
            deliver_ns: self.deliver_ns - earlier.deliver_ns,
            deliver_ops: self.deliver_ops - earlier.deliver_ops,
            timer_ns: self.timer_ns - earlier.timer_ns,
            timer_ops: self.timer_ops - earlier.timer_ops,
        }
    }
}

/// Reads this thread's counters (cheap; does not reset them).
pub fn snapshot() -> NetProf {
    NetProf {
        queue_ns: QUEUE_NS.with(Cell::get),
        queue_ops: QUEUE_OPS.with(Cell::get),
        deliver_ns: DELIVER_NS.with(Cell::get),
        deliver_ops: DELIVER_OPS.with(Cell::get),
        timer_ns: TIMER_NS.with(Cell::get),
        timer_ops: TIMER_OPS.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_only_move_when_accrued() {
        let before = snapshot();
        accrue_queue(10);
        accrue_deliver(20);
        accrue_timer(30);
        let moved = snapshot().since(&before);
        assert_eq!(moved.queue_ops, 1);
        assert_eq!(moved.deliver_ns, 20);
        assert_eq!(moved.timer_ns, 30);
    }
}
