//! The deterministic discrete-event simulator.
//!
//! Protocol logic is written as [`Node`] state machines; the [`Simulator`]
//! owns the clock, the pseudo-random source, the event queue, and the
//! network model. Given the same seed and configuration, two runs produce
//! bit-identical executions — the foundation for the reproducible
//! experiments and the safety property tests.

use crate::chaos::{ChaosPlan, ChaosWindow};
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::time::{Duration, SimTime};
use crate::wheel::TimingWheel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifies a node within the simulation (dense indices `0..n`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol state machine driven by the simulator.
///
/// Handlers receive a [`Context`] for sending messages, arming timers and
/// reading the clock. Handlers must not block; all effects go through the
/// context.
pub trait Node {
    /// The message type exchanged between nodes.
    type Message: Clone;

    /// Invoked once at simulation start (unless the node is crashed at t=0;
    /// then it runs on recovery).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>);

    /// Invoked when a message arrives.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Invoked when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, Self::Message>);

    /// Invoked when the node restarts after a crash.
    ///
    /// The default re-runs [`Node::on_start`]. Implementations modelling
    /// real crash-recovery should discard volatile state and rebuild from
    /// their persistent storage here.
    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.on_start(ctx);
    }

    /// Produces the in-flight-corrupted form of `msg` under a chaos
    /// window, or `None` when the mangled frame would fail to decode at
    /// the receiver — it then vanishes, counted in
    /// [`SimStats::chaos_corrupt_rejected`], exactly like a real frame
    /// dying at the codec. Implementations with a wire codec should
    /// encode, flip random bytes with `rng`, and re-decode, so
    /// corruption is only survivable when the codec genuinely accepts
    /// the flipped bytes. The default — untyped messages carry no codec
    /// — rejects every corruption.
    fn corrupt_message(msg: &Self::Message, rng: &mut StdRng) -> Option<Self::Message> {
        let _ = (msg, rng);
        None
    }
}

/// The effect interface handed to [`Node`] handlers.
pub struct Context<'a, M> {
    id: NodeId,
    now: SimTime,
    num_nodes: usize,
    rng: &'a mut StdRng,
    actions: Vec<Action<M>>,
}

pub(crate) enum Action<M> {
    Send {
        to: NodeId,
        msg: M,
    },
    /// One queued action fanning `msg` out to nodes `0..to_first`
    /// (excluding self). The runtime clones per recipient at routing
    /// time — a cheap handle copy when `M` is an `Arc` (the zero-copy
    /// fan-out path).
    Broadcast {
        msg: M,
        to_first: usize,
    },
    Timer {
        delay: Duration,
        token: u64,
    },
}

impl<'a, M: Clone> Context<'a, M> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of nodes in the simulation.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The deterministic random source (shared, seeded by the simulator).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to `to` over the simulated network.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends `msg` to every *other* node. Self-delivery is the protocol's
    /// job (processing a locally-created message directly is free and
    /// avoids a queue round-trip).
    ///
    /// Enqueues a single action; the runtime fans out per recipient in
    /// ascending node order (identical delivery and RNG-draw order to a
    /// loop of [`Context::send`] calls), cloning the message handle per
    /// peer — one `Arc` bump each for `Arc`'d message types, never a
    /// deep copy.
    pub fn broadcast(&mut self, msg: M) {
        let to_first = self.num_nodes;
        self.actions.push(Action::Broadcast { msg, to_first });
    }

    /// Sends `msg` to every other node with id below `k` — a committee
    /// broadcast in simulations where load generators occupy the ids
    /// above the validators. Same single-action, ascending-order,
    /// handle-clone fan-out as [`Context::broadcast`].
    pub fn broadcast_to_first(&mut self, k: usize, msg: M) {
        self.actions.push(Action::Broadcast { msg, to_first: k });
    }

    /// Arms a one-shot timer firing after `delay` with the given `token`.
    ///
    /// Timers cannot be cancelled; nodes ignore stale tokens (cheap and
    /// keeps the event queue simple).
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Constructs a context for the threaded runtime adapter.
    pub(crate) fn for_runtime(
        id: NodeId,
        now: SimTime,
        num_nodes: usize,
        rng: &'a mut StdRng,
    ) -> Self {
        Context { id, now, num_nodes, rng, actions: Vec::new() }
    }

    /// Drains the accumulated actions (threaded runtime adapter).
    pub(crate) fn into_actions(self) -> Vec<Action<M>> {
        self.actions
    }
}

/// How the adversary treats messages before GST.
#[derive(Clone, Debug)]
pub struct PreGstAdversary {
    /// Maximum extra delay added to each pre-GST message.
    pub max_extra_delay: Duration,
    /// Probability a pre-GST message is "lost" and only arrives via
    /// retransmission at `GST + delta` (links stay reliable).
    pub loss_probability: f64,
}

impl Default for PreGstAdversary {
    fn default() -> Self {
        PreGstAdversary { max_extra_delay: Duration::from_millis(500), loss_probability: 0.05 }
    }
}

/// Network model configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Per-link latency model.
    pub latency: LatencyModel,
    /// Global Stabilization Time. Defaults to [`SimTime::ZERO`]
    /// (synchronous from the start), which is the benchmark setting.
    pub gst: SimTime,
    /// Post-GST delivery bound Δ. Informational for protocols choosing
    /// timeouts; the simulator's latency model should respect it.
    pub delta: Duration,
    /// Adversarial behaviour before GST.
    pub pre_gst: PreGstAdversary,
    /// Delay for a node's messages to itself (loopback), should any be sent.
    pub loopback: Duration,
    /// The fault schedule.
    pub faults: FaultPlan,
    /// Scheduled link chaos (drop / duplicate / reorder / corrupt).
    /// Empty by default; an empty plan draws nothing from the RNG.
    pub chaos: ChaosPlan,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: LatencyModel::default(),
            gst: SimTime::ZERO,
            delta: Duration::from_millis(400),
            pre_gst: PreGstAdversary::default(),
            loopback: Duration::from_micros(50),
            faults: FaultPlan::new(),
            chaos: ChaosPlan::new(),
        }
    }
}

/// Counters describing a finished (or in-progress) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total events processed.
    pub events: u64,
    /// PRNG draws made by the routing machinery itself (latency jitter,
    /// pre-GST adversary, chaos windows) — *not* draws actors make via
    /// [`Context::rng`]. The event-queue/fan-out hot path is draw-free by
    /// design, so a chaos-free constant-latency run reports zero; the
    /// determinism suite asserts on this so an accidentally introduced
    /// draw (which silently re-orders every later sample, changing run
    /// bytes) fails loudly instead.
    pub delivery_rng_draws: u64,
    /// Messages delivered to live nodes.
    pub delivered: u64,
    /// Messages dropped because the destination was crashed.
    pub dropped_crashed: u64,
    /// Messages the pre-GST adversary deferred to `GST + delta`.
    pub adversary_deferred: u64,
    /// Frames a chaos window dropped outright.
    pub chaos_dropped: u64,
    /// Frames a chaos window delivered twice.
    pub chaos_duplicated: u64,
    /// Frames a chaos window flipped bytes in (whether or not the
    /// result decoded).
    pub chaos_corrupted: u64,
    /// Corrupted frames that failed to decode at the receiver and were
    /// discarded (the codec catching the flip).
    pub chaos_corrupt_rejected: u64,
    /// Frames a chaos window delayed by a non-zero reorder draw.
    pub chaos_reordered: u64,
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, token: u64 },
    Crash(NodeId),
    Recover(NodeId),
}

/// The simulator's PRNG with a draw counter on top.
///
/// The routing machinery draws through the wrapper (each `next_*` call
/// bumps the count), while actor handlers reach the `inner` generator
/// directly via [`Context::rng`], uncounted. The counter therefore
/// measures exactly the delivery-path draws surfaced as
/// [`SimStats::delivery_rng_draws`]. Delegation is transparent: the
/// stream of values is bit-identical to the bare [`StdRng`].
#[derive(Debug)]
struct CountingRng {
    inner: StdRng,
    draws: u64,
}

impl Rng for CountingRng {
    // `gen`, `gen_range` and `gen_bool` all derive from this one raw
    // output, so every sample is counted no matter which helper drew it.
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// The deterministic discrete-event simulator.
///
/// See the crate docs for a complete example.
pub struct Simulator<N: Node> {
    nodes: Vec<N>,
    crashed: Vec<bool>,
    config: NetworkConfig,
    /// The event queue: exact `(at, seq)` order (see [`crate::wheel`]).
    queue: TimingWheel<EventKind<N::Message>>,
    now: SimTime,
    seq: u64,
    rng: CountingRng,
    stats: SimStats,
    started: bool,
    /// Reused [`Context`] action buffer: `invoke` is not reentrant, so
    /// one scratch allocation serves every event instead of a fresh
    /// `Vec` per dispatch.
    action_scratch: Vec<Action<N::Message>>,
}

impl<N: Node> Simulator<N> {
    /// Builds a simulator over `nodes` with the given network `config` and
    /// deterministic `seed`.
    pub fn new(nodes: Vec<N>, config: NetworkConfig, seed: u64) -> Self {
        let n = nodes.len();
        let mut sim = Simulator {
            crashed: vec![false; n],
            nodes,
            queue: TimingWheel::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: CountingRng { inner: StdRng::seed_from_u64(seed), draws: 0 },
            stats: SimStats::default(),
            started: false,
            action_scratch: Vec::new(),
            config,
        };
        // Crash/recovery schedules become ordinary events.
        for &(node, at) in sim.config.faults.crashes().to_vec().iter() {
            sim.push(at, EventKind::Crash(node));
        }
        for &(node, at) in sim.config.faults.recoveries().to_vec().iter() {
            sim.push(at, EventKind::Recover(node));
        }
        sim
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        let mut stats = self.stats;
        stats.delivery_rng_draws = self.rng.draws;
        stats
    }

    /// Immutable access to a node (for post-run inspection).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable access to a node (for harness wiring between phases).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.crashed[id.0]
    }

    /// Injects a raw message delivered to `to` at exactly `at` (no latency
    /// model applied), appearing to come `from`. Used by tests and by
    /// harnesses injecting external inputs.
    pub fn schedule_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: N::Message) {
        self.push(at.max(self.now), EventKind::Deliver { to, from, msg });
    }

    fn push(&mut self, at: SimTime, kind: EventKind<N::Message>) {
        let seq = self.seq;
        self.seq += 1;
        if crate::prof::enabled() {
            let t = std::time::Instant::now();
            self.queue.push(at, seq, kind);
            crate::prof::accrue_queue(t.elapsed().as_nanos() as u64);
        } else {
            self.queue.push(at, seq, kind);
        }
    }

    /// [`TimingWheel::pop_if_at_most`], timed as a queue op when
    /// profiling is on.
    fn pop_at_most(&mut self, deadline: SimTime) -> Option<(SimTime, u64, EventKind<N::Message>)> {
        if crate::prof::enabled() {
            let t = std::time::Instant::now();
            let popped = self.queue.pop_if_at_most(deadline);
            crate::prof::accrue_queue(t.elapsed().as_nanos() as u64);
            popped
        } else {
            self.queue.pop_if_at_most(deadline)
        }
    }

    /// Processes all events up to and including `deadline`, then advances
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some((at, _, kind)) = self.pop_at_most(deadline) {
            self.now = at;
            self.dispatch(kind);
        }
        self.now = deadline;
        self.queue.advance_to(deadline);
    }

    /// Runs until the event queue drains or `deadline` passes; returns the
    /// final simulation time. Useful for tests that want quiescence.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        loop {
            match self.pop_at_most(deadline) {
                Some((at, _, kind)) => {
                    self.now = at;
                    self.dispatch(kind);
                }
                None if self.queue.is_empty() => return self.now,
                None => {
                    self.now = deadline;
                    self.queue.advance_to(deadline);
                    return self.now;
                }
            }
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Nodes crashed at t=0 don't start; they start on recovery.
        for i in 0..self.nodes.len() {
            if self.config.faults.crashed_at(NodeId(i), SimTime::ZERO) {
                self.crashed[i] = true;
            }
        }
        for i in 0..self.nodes.len() {
            if !self.crashed[i] {
                self.invoke(NodeId(i), |node, ctx| node.on_start(ctx));
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind<N::Message>) {
        self.stats.events += 1;
        match kind {
            EventKind::Deliver { to, from, msg } => {
                if self.crashed[to.0] {
                    self.stats.dropped_crashed += 1;
                    return;
                }
                self.stats.delivered += 1;
                if crate::prof::enabled() {
                    let t = std::time::Instant::now();
                    self.invoke(to, |node, ctx| node.on_message(from, msg, ctx));
                    crate::prof::accrue_deliver(t.elapsed().as_nanos() as u64);
                } else {
                    self.invoke(to, |node, ctx| node.on_message(from, msg, ctx));
                }
            }
            EventKind::Timer { node, token } => {
                if self.crashed[node.0] {
                    return;
                }
                if crate::prof::enabled() {
                    let t = std::time::Instant::now();
                    self.invoke(node, |n, ctx| n.on_timer(token, ctx));
                    crate::prof::accrue_timer(t.elapsed().as_nanos() as u64);
                } else {
                    self.invoke(node, |n, ctx| n.on_timer(token, ctx));
                }
            }
            EventKind::Crash(node) => {
                self.crashed[node.0] = true;
            }
            EventKind::Recover(node) => {
                if self.crashed[node.0] {
                    self.crashed[node.0] = false;
                    self.invoke(node, |n, ctx| n.on_restart(ctx));
                }
            }
        }
    }

    fn invoke(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Context<'_, N::Message>)) {
        let mut ctx = Context {
            id,
            now: self.now,
            num_nodes: self.nodes.len(),
            rng: &mut self.rng.inner,
            actions: std::mem::take(&mut self.action_scratch),
        };
        f(&mut self.nodes[id.0], &mut ctx);
        let mut actions = ctx.actions;
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.route(id, to, msg),
                Action::Broadcast { msg, to_first } => {
                    // Ascending-peer fan-out: the same per-recipient
                    // routing (and RNG draw) order as the equivalent
                    // sequence of sends.
                    for i in 0..to_first.min(self.nodes.len()) {
                        if i != id.0 {
                            self.route(id, NodeId(i), msg.clone());
                        }
                    }
                }
                Action::Timer { delay, token } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer { node: id, token });
                }
            }
        }
        self.action_scratch = actions;
    }

    /// Computes the delivery time of a message per the network model and
    /// enqueues it.
    fn route(&mut self, from: NodeId, to: NodeId, msg: N::Message) {
        let base = if from == to {
            self.config.loopback
        } else {
            self.config.latency.sample(from, to, &mut self.rng)
        };
        let delay = base + self.config.faults.slowdown_delay(from, to, self.now);
        let mut at = self.now + delay;

        if self.now < self.config.gst {
            // Adversary-controlled period: arbitrary bounded extra delay,
            // plus probabilistic deferral to GST + Δ ("lost" then
            // retransmitted — links are reliable).
            let extra = self.rng.gen_range(0..=self.config.pre_gst.max_extra_delay.as_micros());
            at = self.now + delay + Duration::from_micros(extra);
            if self.rng.gen::<f64>() < self.config.pre_gst.loss_probability {
                self.stats.adversary_deferred += 1;
                let resend = self.config.gst + self.config.delta;
                at = at.max(resend);
            }
        }

        if let Some(heal) = self.config.faults.partition_release(from, to, self.now) {
            // Buffered until the partition heals, then delivered after one
            // fresh link latency.
            at = at.max(heal + base);
        }

        if let Some(w) = self.config.chaos.window_at(from, to, self.now).copied() {
            self.route_chaotic(from, to, msg, at, w);
            return;
        }
        self.push(at, EventKind::Deliver { to, from, msg });
    }

    /// Applies one chaos window to a frame already scheduled for `at`:
    /// drop, duplicate, corrupt and reorder draws, in that fixed order.
    /// Zero-rate effects draw nothing, so a window only perturbs the
    /// RNG stream for the effects it actually declares.
    fn route_chaotic(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: N::Message,
        at: SimTime,
        w: ChaosWindow,
    ) {
        if w.drop > 0.0 && self.rng.gen::<f64>() < w.drop {
            self.stats.chaos_dropped += 1;
            return;
        }
        let copies = if w.duplicate > 0.0 && self.rng.gen::<f64>() < w.duplicate {
            self.stats.chaos_duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut frame = msg.clone();
            if w.corrupt > 0.0 && self.rng.gen::<f64>() < w.corrupt {
                self.stats.chaos_corrupted += 1;
                // Corruption draws go to the inner generator uncounted:
                // this is a chaos-only path, and the draw-free assertion
                // only covers chaos-free runs.
                match N::corrupt_message(&frame, &mut self.rng.inner) {
                    Some(mangled) => frame = mangled,
                    None => {
                        // The flipped frame died at the receiver's codec.
                        self.stats.chaos_corrupt_rejected += 1;
                        continue;
                    }
                }
            }
            let mut deliver_at = at;
            if w.reorder > Duration::ZERO {
                let extra = self.rng.gen_range(0..=w.reorder.as_micros());
                if extra > 0 {
                    self.stats.chaos_reordered += 1;
                }
                deliver_at = at + Duration::from_micros(extra);
            }
            self.push(deliver_at, EventKind::Deliver { to, from, msg: frame });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SlowdownSpec;

    /// Test node: replies "pong" to "ping"; records everything it sees.
    struct Echo {
        log: Vec<(SimTime, NodeId, &'static str)>,
        timer_fired: Vec<u64>,
        started: u32,
    }

    impl Echo {
        fn new() -> Self {
            Echo { log: Vec::new(), timer_fired: Vec::new(), started: 0 }
        }
    }

    impl Node for Echo {
        type Message = &'static str;

        fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
            self.started += 1;
            if ctx.id() == NodeId(0) {
                ctx.broadcast("ping");
                ctx.set_timer(Duration::from_millis(100), 7);
            }
        }

        fn on_message(
            &mut self,
            from: NodeId,
            msg: Self::Message,
            ctx: &mut Context<'_, Self::Message>,
        ) {
            self.log.push((ctx.now(), from, msg));
            if msg == "ping" {
                ctx.send(from, "pong");
            }
        }

        fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, Self::Message>) {
            self.timer_fired.push(token);
        }
    }

    fn constant_net(ms: u64) -> NetworkConfig {
        NetworkConfig {
            latency: LatencyModel::Constant(Duration::from_millis(ms)),
            ..NetworkConfig::default()
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let nodes = (0..3).map(|_| Echo::new()).collect();
        let mut sim = Simulator::new(nodes, constant_net(10), 1);
        sim.run_until(SimTime::from_secs(1));
        // Nodes 1,2 each got one ping at t=10ms.
        for i in 1..3 {
            let log = &sim.node(NodeId(i)).log;
            assert_eq!(log.len(), 1);
            assert_eq!(log[0], (SimTime::from_millis(10), NodeId(0), "ping"));
        }
        // Node 0 got two pongs at t=20ms.
        let log = &sim.node(NodeId(0)).log;
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|(t, _, m)| *t == SimTime::from_millis(20) && *m == "pong"));
        assert_eq!(sim.node(NodeId(0)).timer_fired, vec![7]);
    }

    #[test]
    fn determinism_same_seed_same_execution() {
        let run = |seed| {
            let nodes = (0..5).map(|_| Echo::new()).collect();
            let cfg = NetworkConfig {
                latency: LatencyModel::Uniform(Duration::from_millis(1), Duration::from_millis(50)),
                ..NetworkConfig::default()
            };
            let mut sim = Simulator::new(nodes, cfg, seed);
            sim.run_until(SimTime::from_secs(1));
            sim.nodes().map(|n| n.log.clone()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn crashed_node_receives_nothing_until_recovery() {
        let nodes = (0..3).map(|_| Echo::new()).collect();
        let mut cfg = constant_net(10);
        cfg.faults = FaultPlan::new()
            .crash(NodeId(1), SimTime::ZERO)
            .recover(NodeId(1), SimTime::from_millis(500));
        let mut sim = Simulator::new(nodes, cfg, 1);
        sim.run_until(SimTime::from_secs(1));
        // The ping at t=10ms was dropped; node 1 only started on recovery.
        assert!(sim.node(NodeId(1)).log.is_empty());
        assert_eq!(sim.node(NodeId(1)).started, 1);
        assert_eq!(sim.stats().dropped_crashed, 1);
        // Node 0 therefore got exactly one pong (from node 2).
        assert_eq!(sim.node(NodeId(0)).log.len(), 1);
    }

    #[test]
    fn slowdown_delays_messages() {
        let nodes = (0..2).map(|_| Echo::new()).collect();
        let mut cfg = constant_net(10);
        cfg.faults = FaultPlan::new().slowdown(SlowdownSpec {
            node: NodeId(1),
            from: SimTime::ZERO,
            until: SimTime::MAX,
            extra: Duration::from_millis(90),
        });
        let mut sim = Simulator::new(nodes, cfg, 1);
        sim.run_until(SimTime::from_secs(1));
        // ping took 10 + 90 = 100ms.
        assert_eq!(sim.node(NodeId(1)).log[0].0, SimTime::from_millis(100));
    }

    #[test]
    fn pre_gst_messages_arrive_by_gst_plus_delta() {
        let nodes = (0..4).map(|_| Echo::new()).collect();
        let cfg = NetworkConfig {
            latency: LatencyModel::Constant(Duration::from_millis(10)),
            gst: SimTime::from_secs(2),
            delta: Duration::from_millis(400),
            pre_gst: PreGstAdversary {
                max_extra_delay: Duration::from_millis(800),
                loss_probability: 0.5,
            },
            ..NetworkConfig::default()
        };
        let mut sim = Simulator::new(nodes, cfg, 99);
        sim.run_until(SimTime::from_secs(5));
        let bound = SimTime::from_secs(2) + Duration::from_millis(400) + Duration::from_millis(900);
        for i in 1..4 {
            for (t, _, _) in &sim.node(NodeId(i)).log {
                assert!(*t <= bound, "delivered at {t}");
            }
            assert_eq!(sim.node(NodeId(i)).log.len(), 1, "reliable delivery");
        }
    }

    #[test]
    fn schedule_message_injects_at_exact_time() {
        let nodes = (0..2).map(|_| Echo::new()).collect();
        let mut sim = Simulator::new(nodes, constant_net(10), 1);
        sim.schedule_message(SimTime::from_millis(123), NodeId(99), NodeId(1), "external");
        sim.run_until(SimTime::from_secs(1));
        let log = &sim.node(NodeId(1)).log;
        assert!(log.contains(&(SimTime::from_millis(123), NodeId(99), "external")));
    }

    #[test]
    fn run_until_idle_stops_at_quiescence() {
        let nodes = (0..2).map(|_| Echo::new()).collect();
        let mut sim = Simulator::new(nodes, constant_net(10), 1);
        let end = sim.run_until_idle(SimTime::from_secs(60));
        // Last event is the 100ms timer on node 0.
        assert_eq!(end, SimTime::from_millis(100));
    }

    #[test]
    fn clock_advances_to_deadline_even_without_events() {
        let nodes: Vec<Echo> = vec![];
        let mut sim: Simulator<Echo> = Simulator::new(nodes, constant_net(1), 0);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    use crate::chaos::{ChaosScope, ChaosWindow};

    fn chaos_window(drop: f64, duplicate: f64, corrupt: f64, reorder_ms: u64) -> ChaosWindow {
        ChaosWindow {
            scope: ChaosScope::AllLinks,
            from: SimTime::ZERO,
            until: SimTime::MAX,
            drop,
            duplicate,
            corrupt,
            reorder: Duration::from_millis(reorder_ms),
        }
    }

    #[test]
    fn chaos_drop_all_silences_every_link() {
        let nodes = (0..3).map(|_| Echo::new()).collect();
        let mut cfg = constant_net(10);
        cfg.chaos = ChaosPlan::new().window(chaos_window(1.0, 0.0, 0.0, 0));
        let mut sim = Simulator::new(nodes, cfg, 1);
        sim.run_until(SimTime::from_secs(1));
        for i in 0..3 {
            assert!(sim.node(NodeId(i)).log.is_empty());
        }
        assert_eq!(sim.stats().chaos_dropped, 2, "both pings dropped");
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    fn chaos_duplicate_all_delivers_every_frame_twice() {
        let nodes = (0..2).map(|_| Echo::new()).collect();
        let mut cfg = constant_net(10);
        cfg.chaos = ChaosPlan::new().window(chaos_window(0.0, 1.0, 0.0, 0));
        let mut sim = Simulator::new(nodes, cfg, 1);
        sim.run_until(SimTime::from_secs(1));
        // 1 ping -> 2 copies; each ping triggers a pong -> 2 pongs, each
        // duplicated -> 4 pongs at node 0.
        assert_eq!(sim.node(NodeId(1)).log.len(), 2);
        assert_eq!(sim.node(NodeId(0)).log.len(), 4);
        assert!(sim.stats().chaos_duplicated >= 3);
    }

    #[test]
    fn chaos_corruption_dies_at_the_default_codec() {
        // Echo has no codec, so the default hook rejects every flip: a
        // corrupt-all window behaves like drop-all but counts rejects.
        let nodes = (0..3).map(|_| Echo::new()).collect();
        let mut cfg = constant_net(10);
        cfg.chaos = ChaosPlan::new().window(chaos_window(0.0, 0.0, 1.0, 0));
        let mut sim = Simulator::new(nodes, cfg, 1);
        sim.run_until(SimTime::from_secs(1));
        for i in 1..3 {
            assert!(sim.node(NodeId(i)).log.is_empty());
        }
        assert_eq!(sim.stats().chaos_corrupted, 2);
        assert_eq!(sim.stats().chaos_corrupt_rejected, 2);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    fn chaos_reorder_delays_within_bound() {
        let nodes = (0..2).map(|_| Echo::new()).collect();
        let mut cfg = constant_net(10);
        cfg.chaos = ChaosPlan::new().window(chaos_window(0.0, 0.0, 0.0, 200));
        let mut sim = Simulator::new(nodes, cfg, 7);
        sim.run_until(SimTime::from_secs(1));
        let log = &sim.node(NodeId(1)).log;
        assert_eq!(log.len(), 1);
        let at = log[0].0;
        assert!(at >= SimTime::from_millis(10), "latency still applies");
        assert!(at <= SimTime::from_millis(210), "reorder bounded, got {at}");
    }

    #[test]
    fn chaos_windows_do_not_touch_frames_outside_them() {
        // Window covers [5s, 6s); the ping/pong exchange at t=0 must be
        // untouched and, with the same seed, bit-identical to a run with
        // no chaos at all (no RNG draw happens outside the window).
        let run = |chaos: ChaosPlan| {
            let nodes = (0..3).map(|_| Echo::new()).collect();
            let mut cfg = NetworkConfig {
                latency: LatencyModel::Uniform(Duration::from_millis(1), Duration::from_millis(50)),
                ..NetworkConfig::default()
            };
            cfg.chaos = chaos;
            let mut sim = Simulator::new(nodes, cfg, 42);
            sim.run_until(SimTime::from_secs(1));
            sim.nodes().map(|n| n.log.clone()).collect::<Vec<_>>()
        };
        let late = ChaosPlan::new().window(ChaosWindow {
            scope: ChaosScope::AllLinks,
            from: SimTime::from_secs(5),
            until: SimTime::from_secs(6),
            drop: 1.0,
            duplicate: 1.0,
            corrupt: 1.0,
            reorder: Duration::from_millis(100),
        });
        assert_eq!(run(late), run(ChaosPlan::new()));
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run = |seed| {
            let nodes = (0..5).map(|_| Echo::new()).collect();
            let mut cfg = constant_net(10);
            cfg.chaos = ChaosPlan::new().window(chaos_window(0.3, 0.3, 0.0, 50));
            let mut sim = Simulator::new(nodes, cfg, seed);
            sim.run_until(SimTime::from_secs(1));
            sim.nodes().map(|n| n.log.clone()).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }
}
