//! Framed TCP transport: the real-socket counterpart of the simulator's
//! message routing.
//!
//! This is the wire layer of `hh-node`: length-prefixed frames over plain
//! `std::net` TCP, thread-per-peer over crossbeam channels — no async
//! runtime, matching the repo-wide no-tokio constraint. The design mirrors
//! the WAL's framing discipline (`hh-storage`): a 4-byte big-endian length
//! prefix bounds every read, and the payload itself carries whatever
//! integrity trailer the [`WireCodec`] implementation adds (the node uses
//! the `hh_types` CRC-32 framed codec).
//!
//! Topology: every endpoint binds one listener and opens one *outbound*
//! connection per configured peer. Traffic from `i` to `j` always travels
//! on `i`'s outbound connection to `j`; replies come back on `j`'s own
//! outbound connection to `i`. Endpoints that handshake with an id outside
//! the configured peer set (clients) are *duplex*: the acceptor registers a
//! writer for them so responses can be routed back over the same socket.
//!
//! Robustness invariants, exercised by `tests/tcp_wire.rs`:
//!
//! * a malicious or broken byte stream (bad handshake, random bytes,
//!   truncated or oversized length prefixes, CRC-corrupt payloads,
//!   mid-frame disconnects, byte-at-a-time slow writes) can never panic a
//!   peer thread or wedge the endpoint — the offending connection is
//!   dropped, a counter ticks, and everything else keeps flowing;
//! * outbound connections reconnect with capped exponential backoff, so a
//!   peer that crashes and restarts (even on the same port, see
//!   [`bind_reusable`]) is re-linked without operator action;
//! * writer queues are bounded: a dead or slow peer costs a fixed amount
//!   of memory, never the whole process (the broadcast layer's
//!   retransmission logic recovers anything dropped here).

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, SyncSender, TrySendError};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Maximum frame payload accepted off the wire (16 MiB, matching the
/// `hh_types` codec's collection bound). A hostile length prefix above
/// this is rejected *before* any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Handshake magic: identifies the HammerHead node protocol.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"HHN1";

/// Wire protocol version carried in the handshake.
pub const WIRE_VERSION: u16 = 1;

/// Bytes of the fixed-size connection handshake: magic, version, sender id.
pub const HANDSHAKE_LEN: usize = 8;

/// How a message type crosses the framed TCP transport.
///
/// Implementations must be *total* on `decode_frame`: any byte slice is
/// either a valid message or an error — never a panic. The node implements
/// this with the `hh_types` CRC-32 framed codec.
pub trait WireCodec: Sized + Send + 'static {
    /// Serializes the message into one frame payload (integrity trailer
    /// included, if the codec has one).
    fn encode_frame(&self) -> Vec<u8>;
    /// Parses one frame payload. Must reject, never panic, on garbage.
    fn decode_frame(bytes: &[u8]) -> Result<Self, String>;
}

/// Why a frame could not be read off a connection.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (includes EOF / mid-frame disconnect).
    Io(io::Error),
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload was read whole but the codec rejected it.
    Corrupt(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::TooLarge(len) => {
                write!(f, "length prefix {len} exceeds max frame {MAX_FRAME_LEN}")
            }
            FrameError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
        }
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame, rejecting hostile lengths before
/// allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header).map_err(FrameError::Io)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(payload)
}

/// Writes the connection handshake for endpoint `id`.
pub fn write_handshake(w: &mut impl Write, id: u16) -> io::Result<()> {
    let mut hs = [0u8; HANDSHAKE_LEN];
    hs[0..4].copy_from_slice(&HANDSHAKE_MAGIC);
    hs[4..6].copy_from_slice(&WIRE_VERSION.to_be_bytes());
    hs[6..8].copy_from_slice(&id.to_be_bytes());
    w.write_all(&hs)?;
    w.flush()
}

/// Reads and validates a connection handshake, returning the peer's id.
pub fn read_handshake(r: &mut impl Read) -> Result<u16, FrameError> {
    let mut hs = [0u8; HANDSHAKE_LEN];
    r.read_exact(&mut hs).map_err(FrameError::Io)?;
    if hs[0..4] != HANDSHAKE_MAGIC {
        return Err(FrameError::Corrupt("bad handshake magic".into()));
    }
    let version = u16::from_be_bytes([hs[4], hs[5]]);
    if version != WIRE_VERSION {
        return Err(FrameError::Corrupt(format!("unsupported wire version {version}")));
    }
    Ok(u16::from_be_bytes([hs[6], hs[7]]))
}

/// Binds a listener with `SO_REUSEADDR`, so a node killed and restarted on
/// the same port rebinds immediately instead of waiting out the TIME_WAIT
/// quarantine of its previous connections (std's `TcpListener::bind` does
/// not set the option, and the kill-and-restart path depends on it).
///
/// On Linux the socket is built through direct libc calls (the C library
/// is already linked by std; no new dependency); elsewhere this falls back
/// to a plain bind.
#[cfg(target_os = "linux")]
pub fn bind_reusable(addr: SocketAddr) -> io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    let v4 = match addr {
        SocketAddr::V4(v4) => v4,
        // The node runtime only configures IPv4; a v6 address still works,
        // just without the fast-rebind guarantee.
        SocketAddr::V6(_) => return TcpListener::bind(addr),
    };
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| -> io::Error {
            let e = io::Error::last_os_error();
            close(fd);
            e
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one as *const i32 as *const u8, 4) != 0 {
            return Err(fail(fd));
        }
        // struct sockaddr_in: family (native u16), port (BE), addr (BE),
        // 8 bytes of zero padding.
        let mut sa = [0u8; 16];
        sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
        sa[2..4].copy_from_slice(&v4.port().to_be_bytes());
        sa[4..8].copy_from_slice(&v4.ip().octets());
        if bind(fd, sa.as_ptr(), sa.len() as u32) != 0 {
            return Err(fail(fd));
        }
        if listen(fd, 1024) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Fallback for non-Linux hosts: plain bind, no fast-rebind guarantee.
#[cfg(not(target_os = "linux"))]
pub fn bind_reusable(addr: SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// Static transport configuration for one endpoint.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// This endpoint's id, sent in every handshake.
    pub id: u16,
    /// Listener address.
    pub bind: SocketAddr,
    /// Outbound peers as `(id, addr)`; the own id, if present, is skipped.
    pub peers: Vec<(u16, SocketAddr)>,
    /// First reconnect delay after a failed outbound connection.
    pub initial_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl TcpConfig {
    /// A loopback-testnet-friendly configuration with fast reconnects.
    pub fn new(id: u16, bind: SocketAddr, peers: Vec<(u16, SocketAddr)>) -> Self {
        TcpConfig {
            id,
            bind,
            peers,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// What the transport delivers to its owner.
#[derive(Debug)]
pub enum TcpEvent<M> {
    /// A decoded frame from endpoint `from` (peer or client).
    Message {
        /// Handshake id of the sending endpoint.
        from: u16,
        /// The decoded message.
        msg: M,
    },
    /// An inbound connection completed its handshake.
    Connected {
        /// Handshake id of the connecting endpoint.
        from: u16,
    },
    /// An inbound connection ended (EOF, error, or rejected frame).
    Disconnected {
        /// Handshake id of the departed endpoint.
        from: u16,
    },
}

/// Wire counters (monotonic; shared across all transport threads).
#[derive(Default)]
pub struct TcpStats {
    /// Frames handed to writer threads.
    pub frames_sent: AtomicU64,
    /// Frames decoded and delivered.
    pub frames_received: AtomicU64,
    /// Frames or handshakes rejected (bad magic, oversized length prefix,
    /// codec rejection). Disconnections mid-frame are not counted here.
    pub decode_errors: AtomicU64,
    /// Outbound reconnection attempts after a drop or failure.
    pub reconnects: AtomicU64,
    /// Messages dropped for lack of a route or a full writer queue.
    pub dropped: AtomicU64,
}

impl TcpStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of (sent, received, decode_errors, reconnects, dropped).
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.frames_sent.load(Ordering::Relaxed),
            self.frames_received.load(Ordering::Relaxed),
            self.decode_errors.load(Ordering::Relaxed),
            self.reconnects.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

/// Per-writer queue depth. A full queue sheds (the RBC layer retransmits);
/// it must never block the node's event loop.
const WRITER_QUEUE: usize = 8192;

type SharedWriters = Arc<Mutex<HashMap<u16, SyncSender<Arc<[u8]>>>>>;

/// A running framed-TCP endpoint.
///
/// Spawned threads: one acceptor, one reader+writer pair per inbound
/// connection, one writer (with reconnect loop) per configured peer.
pub struct TcpTransport<M> {
    id: u16,
    local_addr: SocketAddr,
    events_rx: Receiver<TcpEvent<M>>,
    /// Outbound writer queues, keyed by peer id.
    peer_tx: HashMap<u16, SyncSender<Arc<[u8]>>>,
    /// Reply routes for inbound (client) connections, keyed by handshake id.
    inbound_writers: SharedWriters,
    stats: Arc<TcpStats>,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl<M: WireCodec> TcpTransport<M> {
    /// Binds the listener and spawns the acceptor and per-peer writer
    /// threads. Returns as soon as the listener is live; outbound
    /// connections are established (and re-established) in the background.
    pub fn start(cfg: TcpConfig) -> io::Result<Self> {
        let listener = bind_reusable(cfg.bind)?;
        let local_addr = listener.local_addr()?;
        let (events_tx, events_rx) = unbounded();
        let stats = Arc::new(TcpStats::default());
        let running = Arc::new(AtomicBool::new(true));
        let inbound_writers: SharedWriters = Arc::new(Mutex::new(HashMap::new()));
        let mut handles = Vec::new();

        // Acceptor.
        {
            let events_tx = events_tx.clone();
            let stats = Arc::clone(&stats);
            let running = Arc::clone(&running);
            let inbound_writers = Arc::clone(&inbound_writers);
            handles.push(thread::spawn(move || {
                accept_loop(listener, events_tx, stats, running, inbound_writers);
            }));
        }

        // One outbound writer per peer.
        let mut peer_tx = HashMap::new();
        for &(peer, addr) in cfg.peers.iter().filter(|&&(p, _)| p != cfg.id) {
            let (tx, rx) = bounded::<Arc<[u8]>>(WRITER_QUEUE);
            peer_tx.insert(peer, tx);
            let stats = Arc::clone(&stats);
            let running = Arc::clone(&running);
            let cfg = cfg.clone();
            handles.push(thread::spawn(move || {
                outbound_loop(
                    cfg.id,
                    addr,
                    rx,
                    stats,
                    running,
                    cfg.initial_backoff,
                    cfg.max_backoff,
                );
            }));
        }

        Ok(TcpTransport {
            id: cfg.id,
            local_addr,
            events_rx,
            peer_tx,
            inbound_writers,
            stats,
            running,
            handles,
        })
    }

    /// This endpoint's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// The bound listener address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The inbound event stream.
    pub fn events(&self) -> &Receiver<TcpEvent<M>> {
        &self.events_rx
    }

    /// Wire counters.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    /// Sends to one endpoint: a configured peer via its outbound
    /// connection, otherwise an inbound (client) reply route. Unroutable
    /// or backpressured messages are shed and counted, never blocked on.
    pub fn send(&self, to: u16, msg: &M) {
        let frame: Arc<[u8]> = msg.encode_frame().into();
        self.send_raw(to, frame);
    }

    /// Sends an already-encoded frame (shared broadcast path).
    fn send_raw(&self, to: u16, frame: Arc<[u8]>) {
        let sent = if let Some(tx) = self.peer_tx.get(&to) {
            enqueue(tx, frame, &self.stats)
        } else if let Some(tx) = self.inbound_writers.lock().expect("writer registry").get(&to) {
            enqueue(tx, frame, &self.stats)
        } else {
            false
        };
        if sent {
            TcpStats::bump(&self.stats.frames_sent);
        } else {
            TcpStats::bump(&self.stats.dropped);
        }
    }

    /// Broadcasts to every configured peer, encoding once.
    pub fn broadcast(&self, msg: &M) {
        let frame: Arc<[u8]> = msg.encode_frame().into();
        for &peer in self.peer_tx.keys().collect::<Vec<_>>() {
            self.send_raw(peer, Arc::clone(&frame));
        }
    }

    /// Stops every thread and joins them. Safe to call once; dropping the
    /// transport without calling it aborts the threads' channels anyway.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::SeqCst);
        self.peer_tx.clear();
        self.inbound_writers.lock().expect("writer registry").clear();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn enqueue(tx: &SyncSender<Arc<[u8]>>, frame: Arc<[u8]>, _stats: &TcpStats) -> bool {
    match tx.try_send(frame) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
    }
}

fn accept_loop<M: WireCodec>(
    listener: TcpListener,
    events_tx: Sender<TcpEvent<M>>,
    stats: Arc<TcpStats>,
    running: Arc<AtomicBool>,
    inbound_writers: SharedWriters,
) {
    while running.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if !running.load(Ordering::SeqCst) {
            return;
        }
        let events_tx = events_tx.clone();
        let stats = Arc::clone(&stats);
        let running = Arc::clone(&running);
        let inbound_writers = Arc::clone(&inbound_writers);
        thread::spawn(move || {
            inbound_connection(stream, events_tx, stats, running, inbound_writers);
        });
    }
}

/// Services one accepted connection: handshake, register a reply writer,
/// then decode frames until the stream ends or turns hostile. Every exit
/// path unregisters the writer and emits `Disconnected`.
fn inbound_connection<M: WireCodec>(
    mut stream: TcpStream,
    events_tx: Sender<TcpEvent<M>>,
    stats: Arc<TcpStats>,
    running: Arc<AtomicBool>,
    inbound_writers: SharedWriters,
) {
    // A connection that never completes its handshake may not hold the
    // thread hostage.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let from = match read_handshake(&mut stream) {
        Ok(id) => id,
        Err(err) => {
            if !matches!(err, FrameError::Io(_)) {
                TcpStats::bump(&stats.decode_errors);
            }
            return;
        }
    };
    let _ = stream.set_read_timeout(None);
    let _ = stream.set_nodelay(true);

    // Reply route: a dedicated writer thread so sends to this endpoint
    // never block the owner. Last handshake for an id wins (a reconnecting
    // client replaces its dead route).
    let (writer_tx, writer_rx) = bounded::<Arc<[u8]>>(WRITER_QUEUE);
    let write_half = stream.try_clone().ok();
    let writer_handle = write_half.map(|mut half| {
        thread::spawn(move || {
            while let Ok(frame) = writer_rx.recv() {
                if write_frame(&mut half, &frame).is_err() {
                    return;
                }
            }
        })
    });
    inbound_writers.lock().expect("writer registry").insert(from, writer_tx);
    let _ = events_tx.send(TcpEvent::Connected { from });

    loop {
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let payload = match read_frame(&mut stream) {
            Ok(payload) => payload,
            Err(FrameError::Io(_)) => break,
            Err(_) => {
                // Oversized prefix or unreadable frame: the stream's
                // framing can no longer be trusted — drop the connection.
                TcpStats::bump(&stats.decode_errors);
                break;
            }
        };
        match M::decode_frame(&payload) {
            Ok(msg) => {
                TcpStats::bump(&stats.frames_received);
                if events_tx.send(TcpEvent::Message { from, msg }).is_err() {
                    break;
                }
            }
            Err(_) => {
                TcpStats::bump(&stats.decode_errors);
                break;
            }
        }
    }

    // Only unregister our own route: a reconnect may already have
    // installed a fresh one under the same id.
    {
        let mut writers = inbound_writers.lock().expect("writer registry");
        writers.remove(&from);
    }
    drop(writer_handle);
    let _ = events_tx.send(TcpEvent::Disconnected { from });
}

/// Owns the outbound connection to one peer: connect with capped
/// exponential backoff, handshake, then drain the send queue. A write
/// failure falls back to reconnecting; the frame in hand is retried once
/// on the new connection.
fn outbound_loop(
    own_id: u16,
    addr: SocketAddr,
    rx: Receiver<Arc<[u8]>>,
    stats: Arc<TcpStats>,
    running: Arc<AtomicBool>,
    initial_backoff: Duration,
    max_backoff: Duration,
) {
    let mut backoff = initial_backoff;
    let mut pending: Option<Arc<[u8]>> = None;
    'reconnect: while running.load(Ordering::SeqCst) {
        let mut stream = match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
            Ok(stream) => stream,
            Err(_) => {
                TcpStats::bump(&stats.reconnects);
                thread::sleep(backoff);
                backoff = (backoff * 2).min(max_backoff);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        if write_handshake(&mut stream, own_id).is_err() {
            TcpStats::bump(&stats.reconnects);
            thread::sleep(backoff);
            backoff = (backoff * 2).min(max_backoff);
            continue;
        }
        backoff = initial_backoff;

        loop {
            let frame = match pending.take() {
                Some(frame) => frame,
                None => match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(frame) => frame,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if running.load(Ordering::SeqCst) {
                            continue;
                        }
                        return;
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                },
            };
            if write_frame(&mut stream, &frame).is_err() {
                // Retry this frame on the next connection.
                pending = Some(frame);
                TcpStats::bump(&stats.reconnects);
                thread::sleep(backoff);
                backoff = (backoff * 2).min(max_backoff);
                continue 'reconnect;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy codec: u64 payload plus a xor checksum byte.
    #[derive(Debug, PartialEq)]
    struct TestMsg(u64);

    impl WireCodec for TestMsg {
        fn encode_frame(&self) -> Vec<u8> {
            let mut out = self.0.to_be_bytes().to_vec();
            out.push(out.iter().fold(0u8, |acc, b| acc ^ b));
            out
        }
        fn decode_frame(bytes: &[u8]) -> Result<Self, String> {
            if bytes.len() != 9 {
                return Err(format!("bad length {}", bytes.len()));
            }
            let (body, check) = bytes.split_at(8);
            if body.iter().fold(0u8, |acc, b| acc ^ b) != check[0] {
                return Err("checksum mismatch".into());
            }
            Ok(TestMsg(u64::from_be_bytes(body.try_into().expect("8 bytes"))))
        }
    }

    fn transport(id: u16, peers: Vec<(u16, SocketAddr)>) -> TcpTransport<TestMsg> {
        let cfg = TcpConfig::new(id, "127.0.0.1:0".parse().expect("addr"), peers);
        TcpTransport::start(cfg).expect("bind")
    }

    fn recv_message(t: &TcpTransport<TestMsg>, deadline: Duration) -> Option<(u16, TestMsg)> {
        let end = std::time::Instant::now() + deadline;
        loop {
            let left = end.saturating_duration_since(std::time::Instant::now());
            match t.events().recv_timeout(left) {
                Ok(TcpEvent::Message { from, msg }) => return Some((from, msg)),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }

    #[test]
    fn two_endpoints_exchange_frames() {
        let a = transport(0, vec![]);
        let b = transport(1, vec![(0, a.local_addr())]);
        // b connects out to a lazily; send a few frames.
        for i in 0..5u64 {
            b.send(0, &TestMsg(i));
        }
        for i in 0..5u64 {
            let (from, msg) = recv_message(&a, Duration::from_secs(5)).expect("frame");
            assert_eq!(from, 1);
            assert_eq!(msg, TestMsg(i));
        }
        b.shutdown();
        a.shutdown();
    }

    #[test]
    fn reconnects_after_peer_restart() {
        let a = transport(0, vec![]);
        let addr = a.local_addr();
        let b = transport(1, vec![(0, addr)]);
        b.send(0, &TestMsg(1));
        assert!(recv_message(&a, Duration::from_secs(5)).is_some());
        // Kill and immediately rebind the same port: SO_REUSEADDR plus
        // the outbound backoff loop must re-link the pair.
        a.shutdown();
        let a2 = TcpTransport::<TestMsg>::start(TcpConfig::new(0, addr, vec![]))
            .expect("rebind same port");
        // The first frames may race the reconnect and be retried; keep
        // sending until one lands.
        let end = std::time::Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while std::time::Instant::now() < end {
            b.send(0, &TestMsg(42));
            if let Some((_, TestMsg(42))) = recv_message(&a2, Duration::from_millis(200)) {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "no frame delivered after peer restart");
        b.shutdown();
        a2.shutdown();
    }

    #[test]
    fn client_reply_route_works() {
        let node = transport(0, vec![]);
        // A raw "client" connects, handshakes as id 100, sends one frame,
        // and expects a reply over the same socket.
        let mut sock = TcpStream::connect(node.local_addr()).expect("connect");
        write_handshake(&mut sock, 100).expect("handshake");
        write_frame(&mut sock, &TestMsg(7).encode_frame()).expect("frame");
        let (from, msg) = recv_message(&node, Duration::from_secs(5)).expect("frame");
        assert_eq!((from, msg), (100, TestMsg(7)));
        node.send(100, &TestMsg(8));
        let payload = read_frame(&mut sock).expect("reply");
        assert_eq!(TestMsg::decode_frame(&payload).expect("decode"), TestMsg(8));
        node.shutdown();
    }

    #[test]
    fn unroutable_send_is_shed_not_blocked() {
        let node = transport(0, vec![]);
        node.send(9, &TestMsg(1));
        assert_eq!(node.stats().dropped.load(Ordering::Relaxed), 1);
        node.shutdown();
    }
}
