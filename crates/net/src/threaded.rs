//! A small threaded runtime running [`Node`] state machines on real threads.
//!
//! This is the wall-clock counterpart of the discrete-event [`Simulator`]:
//! the same `Node` implementations, crossbeam channels instead of an event
//! queue, real `Instant`-based time, and latency injected by a scheduler
//! thread that holds messages until their delivery deadline. Examples use it
//! to show the protocol running with genuine concurrency; all experiments
//! use the deterministic simulator.
//!
//! Faults and partial synchrony are not modelled here — the runtime is a
//! demonstration vehicle, not a measurement one.
//!
//! [`Simulator`]: crate::Simulator

use crate::latency::LatencyModel;
use crate::sim::{Action, Context, Node, NodeId};
use crate::time::{Duration as SimDuration, SimTime};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::thread;
use std::time::{Duration, Instant};

enum Wire<M> {
    Deliver { from: NodeId, msg: M },
    Shutdown,
}

enum ToScheduler<M> {
    Route { at: Instant, from: NodeId, to: NodeId, msg: M },
    Shutdown,
}

/// Per-node driver state: runs one handler invocation and flushes the
/// resulting actions into the scheduler (sends) and the local timer heap.
///
/// Taking the handler as a generic `FnOnce` lets a delivered message move
/// into `on_message` by value — the inbox channel already owns the payload,
/// so delivery is zero-copy (only broadcast fan-out clones, once per extra
/// recipient).
struct Pump<M> {
    id: NodeId,
    n: usize,
    start: Instant,
    rng: StdRng,
    latency_rng: StdRng,
    latency: LatencyModel,
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    sched_tx: Sender<ToScheduler<M>>,
}

impl<M: Clone> Pump<M> {
    fn process<N>(&mut self, node: &mut N, f: impl FnOnce(&mut N, &mut Context<'_, M>))
    where
        N: Node<Message = M>,
    {
        let now = SimTime(self.start.elapsed().as_micros() as u64);
        let mut ctx = Context::for_runtime(self.id, now, self.n, &mut self.rng);
        f(node, &mut ctx);
        for action in ctx.into_actions() {
            match action {
                Action::Send { to, msg } => {
                    let delay = if to == self.id {
                        SimDuration::from_micros(50)
                    } else {
                        self.latency.sample(self.id, to, &mut self.latency_rng)
                    };
                    let at = Instant::now() + Duration::from_micros(delay.as_micros());
                    let _ = self.sched_tx.send(ToScheduler::Route { at, from: self.id, to, msg });
                }
                Action::Broadcast { msg, to_first } => {
                    for i in 0..to_first.min(self.n) {
                        let to = NodeId(i);
                        if to == self.id {
                            continue;
                        }
                        let delay = self.latency.sample(self.id, to, &mut self.latency_rng);
                        let at = Instant::now() + Duration::from_micros(delay.as_micros());
                        let _ = self.sched_tx.send(ToScheduler::Route {
                            at,
                            from: self.id,
                            to,
                            msg: msg.clone(),
                        });
                    }
                }
                Action::Timer { delay, token } => {
                    let at = Instant::now() + Duration::from_micros(delay.as_micros());
                    self.timers.push(Reverse((at, token)));
                }
            }
        }
    }
}

/// Runs `nodes` on one thread each for `wall_time`, injecting per-link
/// latency from `latency`, then returns the final node states.
///
/// Message sends sampled through `latency` are held by a scheduler thread
/// until their delivery instant. Timers run on each node's own thread.
///
/// # Panics
///
/// Panics if a node thread panics (the panic is propagated on join).
pub fn run<N>(nodes: Vec<N>, latency: LatencyModel, wall_time: Duration, seed: u64) -> Vec<N>
where
    N: Node + Send + 'static,
    N::Message: Send + 'static,
{
    let n = nodes.len();
    let start = Instant::now();

    // Per-node inboxes.
    let mut inboxes_tx: Vec<Sender<Wire<N::Message>>> = Vec::with_capacity(n);
    let mut inboxes_rx: Vec<Option<Receiver<Wire<N::Message>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        inboxes_tx.push(tx);
        inboxes_rx.push(Some(rx));
    }

    // Scheduler: holds messages until their delivery time.
    let (sched_tx, sched_rx) = unbounded::<ToScheduler<N::Message>>();
    let sched_inboxes = inboxes_tx.clone();
    let scheduler = thread::spawn(move || {
        let mut heap: BinaryHeap<Reverse<(Instant, u64, usize)>> = BinaryHeap::new();
        let mut payloads: Vec<Option<(NodeId, NodeId, N::Message)>> = Vec::new();
        let mut seq = 0u64;
        loop {
            // Deliver everything due.
            let now = Instant::now();
            while matches!(heap.peek(), Some(Reverse((at, _, _))) if *at <= now) {
                let Reverse((_, _, idx)) = heap.pop().expect("peeked");
                if let Some((from, to, msg)) = payloads[idx].take() {
                    let _ = sched_inboxes[to.0].send(Wire::Deliver { from, msg });
                }
            }
            let timeout = heap
                .peek()
                .map(|Reverse((at, _, _))| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            match sched_rx.recv_timeout(timeout) {
                Ok(ToScheduler::Route { at, from, to, msg }) => {
                    payloads.push(Some((from, to, msg)));
                    heap.push(Reverse((at, seq, payloads.len() - 1)));
                    seq += 1;
                }
                Ok(ToScheduler::Shutdown) => return,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    });

    // Node threads.
    let mut handles = Vec::with_capacity(n);
    for (i, mut node) in nodes.into_iter().enumerate() {
        let id = NodeId(i);
        let rx = inboxes_rx[i].take().expect("inbox not yet taken");
        let sched_tx = sched_tx.clone();
        let latency = latency.clone();
        let handle = thread::spawn(move || {
            let mut pump = Pump {
                id,
                n,
                start,
                rng: StdRng::seed_from_u64(seed.wrapping_add(i as u64)),
                latency_rng: StdRng::seed_from_u64(seed ^ 0x5eed ^ i as u64),
                latency,
                timers: BinaryHeap::new(),
                sched_tx,
            };

            pump.process(&mut node, |n, ctx| n.on_start(ctx));

            loop {
                // Fire due timers.
                let now = Instant::now();
                while matches!(pump.timers.peek(), Some(Reverse((at, _))) if *at <= now) {
                    let Reverse((_, token)) = pump.timers.pop().expect("peeked");
                    pump.process(&mut node, |n, ctx| n.on_timer(token, ctx));
                }
                let timeout = pump
                    .timers
                    .peek()
                    .map(|Reverse((at, _))| at.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(20));
                match rx.recv_timeout(timeout) {
                    // The channel owns the payload here; it moves straight
                    // into the handler without a clone.
                    Ok(Wire::Deliver { from, msg }) => {
                        pump.process(&mut node, |n, ctx| n.on_message(from, msg, ctx));
                    }
                    Ok(Wire::Shutdown) => return node,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return node,
                }
            }
        });
        handles.push(handle);
    }

    thread::sleep(wall_time);
    for tx in &inboxes_tx {
        let _ = tx.send(Wire::Shutdown);
    }
    let _ = sched_tx.send(ToScheduler::Shutdown);
    let finished: Vec<N> = handles.into_iter().map(|h| h.join().expect("node thread")).collect();
    scheduler.join().expect("scheduler thread");
    finished
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        seen: usize,
    }

    impl Node for Counter {
        type Message = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.id() == NodeId(0) {
                ctx.broadcast(1);
            }
            // Everyone re-broadcasts once via a timer, exercising timers.
            ctx.set_timer(SimDuration::from_millis(10), 1);
        }
        fn on_message(&mut self, _from: NodeId, _msg: u32, _ctx: &mut Context<'_, u32>) {
            self.seen += 1;
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_, u32>) {
            ctx.send(NodeId(0), 2);
        }
    }

    #[test]
    fn threaded_runtime_delivers_messages_and_timers() {
        let nodes = (0..3).map(|_| Counter { seen: 0 }).collect();
        let out = run(
            nodes,
            LatencyModel::Constant(SimDuration::from_millis(1)),
            Duration::from_millis(300),
            7,
        );
        // Node 0 received one timer-send from each node (including itself).
        assert!(out[0].seen >= 3, "node 0 saw {}", out[0].seen);
        // Nodes 1,2 received the broadcast.
        assert!(out[1].seen >= 1);
        assert!(out[2].seen >= 1);
    }
}
