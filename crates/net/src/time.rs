//! Simulation time.
//!
//! Time is a `u64` count of microseconds since simulation start. A second
//! newtype, [`Duration`], represents spans. Microsecond resolution keeps
//! arithmetic exact for multi-hour simulated runs while resolving sub-
//! millisecond network jitter.

use std::fmt;

/// An instant on the simulation clock (microseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant `secs` seconds after start.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// An instant `ms` milliseconds after start.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microseconds since start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since start, as a float (for metrics output).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`; saturates at zero.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl std::ops::Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

/// A span of simulation time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// A span of `secs` seconds.
    pub fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// A span of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// A span of `us` microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// The span in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor (saturating).
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.duration_since(SimTime::from_secs(1)), Duration::from_millis(500));
        // Saturation, not wraparound.
        assert_eq!(SimTime::ZERO.duration_since(SimTime::from_secs(1)), Duration::ZERO);
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(Duration::from_millis(3).to_string(), "3.0ms");
        assert_eq!(Duration::from_micros(12).to_string(), "12us");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(Duration::from_secs(1).saturating_mul(3), Duration::from_secs(3));
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
    }
}
