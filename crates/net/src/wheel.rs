//! The simulator's event queue: a microsecond-granularity timing wheel
//! (bucketed calendar queue) with a hierarchical occupancy bitmap, backed
//! by an ordered overflow map for beyond-horizon events.
//!
//! The queue's contract is *exact* `(at, seq)` priority order: `pop`
//! returns events in ascending `at`, ties broken by ascending `seq` — the
//! FIFO tie-break the simulator's determinism (and every scenario JSON
//! byte) depends on. The wheel is a drop-in replacement for the
//! `BinaryHeap<Reverse<Event>>` it displaced; a property test in
//! `tests/queue_props.rs` pins pop order against that heap as an oracle.
//!
//! Design:
//!
//! * **Ring**: [`WHEEL_SLOTS`] one-microsecond slots (a ~33 ms horizon).
//!   An event `at` microseconds from the cursor lands in slot
//!   `at % WHEEL_SLOTS`. The cursor only moves forward (to each popped
//!   event's time), and events are only ringed when `at - cursor <
//!   WHEEL_SLOTS`, so a slot can never hold two distinct times at once —
//!   every entry in a slot shares one `at`, and draining a slot in `seq`
//!   order is exactly global `(at, seq)` order.
//! * **Occupancy bitmap**: one bit per slot, plus a second-level summary
//!   word per 64 slots, so finding the next occupied slot is a handful of
//!   word scans (`trailing_zeros`) instead of walking empty slots.
//! * **Overflow**: events beyond the horizon (sync ticks, leader
//!   timeouts, client windows, far-future fault injections) go to a
//!   `BTreeMap` keyed by `(at, seq)`. `pop` compares the ring head and
//!   the overflow head and takes the smaller key, so overflow events
//!   never need to migrate into the ring to keep exact order.
//!
//! Typical simulator load keeps hundreds of near-term deliveries in the
//! ring (`push`/`pop` are O(1) word operations) and tens of far timers in
//! the overflow (O(log n) on a tiny n).

use crate::time::SimTime;
use std::collections::BTreeMap;

/// Ring size in slots (one slot = 1 µs). Covers the common latencies and
/// round-pacing delays; anything further sits in the overflow map.
pub const WHEEL_SLOTS: usize = 1 << 15;

const WORDS: usize = WHEEL_SLOTS / 64;
const SUMMARY_WORDS: usize = WORDS / 64;

/// A deterministic `(at, seq)`-ordered event queue. See the module docs.
pub struct TimingWheel<T> {
    /// Per-slot entries `(seq, value)`; all entries of a slot share one
    /// `at`. Entries are unordered (overflowed pushes can arrive out of
    /// `seq` order), so pops scan the slot for the minimum `seq`.
    slots: Vec<Vec<(u64, T)>>,
    /// One occupancy bit per slot.
    words: Box<[u64; WORDS]>,
    /// One bit per occupancy word (summary level).
    summary: [u64; SUMMARY_WORDS],
    /// Lower bound on every queued event's time; only moves forward.
    cursor: SimTime,
    /// Events currently in the ring.
    in_ring: usize,
    /// Beyond-horizon events, keyed by `(at, seq)`.
    overflow: BTreeMap<(u64, u64), T>,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            words: Box::new([0u64; WORDS]),
            summary: [0u64; SUMMARY_WORDS],
            cursor: SimTime::ZERO,
            in_ring: 0,
            overflow: BTreeMap::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.in_ring + self.overflow.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value` at `(at, seq)`. `seq` values must be unique
    /// (the simulator hands out a fresh one per push).
    pub fn push(&mut self, at: SimTime, seq: u64, value: T) {
        let horizon = at.0.wrapping_sub(self.cursor.0);
        if at.0 >= self.cursor.0 && horizon < WHEEL_SLOTS as u64 {
            let slot = (at.0 as usize) & (WHEEL_SLOTS - 1);
            self.slots[slot].push((seq, value));
            self.words[slot >> 6] |= 1 << (slot & 63);
            self.summary[slot >> 12] |= 1 << ((slot >> 6) & 63);
            self.in_ring += 1;
        } else {
            // Beyond the horizon — or, defensively, before the cursor
            // (the ordered map keeps even that exact).
            self.overflow.insert((at.0, seq), value);
        }
    }

    /// The time of the next event, if any.
    pub fn peek_at(&self) -> Option<SimTime> {
        let ring = self.ring_peek().map(|(at, seq, _)| (at, seq));
        let over = self.overflow.first_key_value().map(|(&k, _)| k);
        match (ring, over) {
            (None, None) => None,
            (Some((at, _)), None) | (None, Some((at, _))) => Some(SimTime(at)),
            (Some(r), Some(o)) => Some(SimTime(r.min(o).0)),
        }
    }

    /// Removes and returns the earliest event as `(at, seq, value)`,
    /// advancing the cursor to its time.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let ring = self.ring_peek();
        let over = self.overflow.first_key_value().map(|(&k, _)| k);
        let ring_wins = match (&ring, &over) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((rat, rseq, _)), Some(okey)) => (*rat, *rseq) < *okey,
        };
        if ring_wins {
            let (at, _, slot) = ring.expect("ring head");
            let entries = &mut self.slots[slot];
            let mut min = 0;
            for i in 1..entries.len() {
                if entries[i].0 < entries[min].0 {
                    min = i;
                }
            }
            let (seq, value) = entries.swap_remove(min);
            self.in_ring -= 1;
            if entries.is_empty() {
                self.words[slot >> 6] &= !(1 << (slot & 63));
                if self.words[slot >> 6] == 0 {
                    self.summary[slot >> 12] &= !(1 << ((slot >> 6) & 63));
                }
            }
            self.cursor = SimTime(at);
            Some((SimTime(at), seq, value))
        } else {
            let ((at, seq), value) = self.overflow.pop_first().expect("overflow head");
            if at > self.cursor.0 {
                self.cursor = SimTime(at);
            }
            Some((SimTime(at), seq, value))
        }
    }

    /// Pops the earliest event only if its time is `<= deadline`.
    pub fn pop_if_at_most(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        if self.peek_at()? > deadline {
            return None;
        }
        self.pop()
    }

    /// Moves the cursor forward to `to`, re-anchoring the ring horizon.
    /// The caller must have drained every event at or before `to`
    /// (as `Simulator::run_until` does); an event pushed later but dated
    /// earlier would still be ordered exactly, via the overflow map.
    pub fn advance_to(&mut self, to: SimTime) {
        debug_assert!(self.peek_at().is_none_or(|at| at >= to), "advancing past queued events");
        if to > self.cursor {
            self.cursor = to;
        }
    }

    /// The ring's earliest entry as `(at, min_seq, slot)`.
    fn ring_peek(&self) -> Option<(u64, u64, usize)> {
        if self.in_ring == 0 {
            return None;
        }
        let start = (self.cursor.0 as usize) & (WHEEL_SLOTS - 1);
        let slot = self.next_occupied(start).expect("in_ring > 0");
        let delta = slot.wrapping_sub(start) & (WHEEL_SLOTS - 1);
        let at = self.cursor.0 + delta as u64;
        let seq = self.slots[slot].iter().map(|(s, _)| *s).min().expect("occupied slot");
        Some((at, seq, slot))
    }

    /// First occupied slot in the wrapped window starting at `start`
    /// (inclusive) — i.e. in cursor order, which equals time order.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let w0 = start >> 6;
        // Bits of the start word at or after the start position.
        let high = self.words[w0] & (!0u64 << (start & 63));
        if high != 0 {
            return Some((w0 << 6) | high.trailing_zeros() as usize);
        }
        if let Some(slot) = self.scan_words(w0 + 1, WORDS) {
            return Some(slot);
        }
        if let Some(slot) = self.scan_words(0, w0) {
            return Some(slot);
        }
        // Wrapped all the way around: the start word's earlier bits hold
        // events near the far edge of the horizon.
        let low = self.words[w0] & !(!0u64 << (start & 63));
        if low != 0 {
            return Some((w0 << 6) | low.trailing_zeros() as usize);
        }
        None
    }

    /// First occupied slot among words `[lo, hi)`, skipping empty
    /// 64-word groups via the summary level.
    fn scan_words(&self, lo: usize, hi: usize) -> Option<usize> {
        let mut w = lo;
        while w < hi {
            if w & 63 == 0 {
                let group = self.summary[w >> 6];
                if group == 0 {
                    w += 64;
                    continue;
                }
                let skip = (group >> (w & 63)).trailing_zeros() as usize;
                w += skip;
                if w >= hi {
                    return None;
                }
            }
            if self.words[w] != 0 {
                return Some((w << 6) | self.words[w].trailing_zeros() as usize);
            }
            w += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimingWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, seq, v)) = wheel.pop() {
            out.push((at.0, seq, v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(SimTime(50), 0, 1);
        w.push(SimTime(10), 1, 2);
        w.push(SimTime(10), 2, 3);
        w.push(SimTime(7), 3, 4);
        assert_eq!(drain(&mut w), vec![(7, 3, 4), (10, 1, 2), (10, 2, 3), (50, 0, 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_instant_burst_is_fifo() {
        let mut w = TimingWheel::new();
        for seq in 0..100u64 {
            w.push(SimTime(42), seq, seq as u32);
        }
        let popped = drain(&mut w);
        assert_eq!(popped.len(), 100);
        for (i, (at, seq, _)) in popped.iter().enumerate() {
            assert_eq!((*at, *seq), (42, i as u64));
        }
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut w = TimingWheel::new();
        let far = WHEEL_SLOTS as u64 * 10;
        w.push(SimTime(far), 0, 1);
        w.push(SimTime(3), 1, 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.peek_at(), Some(SimTime(3)));
        assert_eq!(w.pop(), Some((SimTime(3), 1, 2)));
        assert_eq!(w.pop(), Some((SimTime(far), 0, 1)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn overflow_and_ring_interleave_exactly_at_the_same_instant() {
        // seq 0 lands in overflow (far future at push time); after the
        // cursor advances, seq 1 rings the same instant. The overflow
        // entry must still pop first — the FIFO tie-break crosses
        // structures.
        let mut w = TimingWheel::new();
        let t = WHEEL_SLOTS as u64 + 100;
        w.push(SimTime(t), 0, 1);
        w.push(SimTime(200), 1, 2);
        assert_eq!(w.pop(), Some((SimTime(200), 1, 2)));
        w.push(SimTime(t), 2, 3); // now within horizon: rings
        assert_eq!(w.pop(), Some((SimTime(t), 0, 1)), "overflow seq 0 before ring seq 2");
        assert_eq!(w.pop(), Some((SimTime(t), 2, 3)));
    }

    #[test]
    fn rollover_boundary_keeps_order() {
        let mut w = TimingWheel::new();
        // Events straddling a horizon multiple: the wrapped scan must
        // order slot indices by cursor distance, not raw index.
        w.push(SimTime(WHEEL_SLOTS as u64 - 1), 0, 1);
        w.push(SimTime(WHEEL_SLOTS as u64 - 2), 1, 2);
        assert_eq!(w.pop(), Some((SimTime(WHEEL_SLOTS as u64 - 2), 1, 2)));
        // Cursor is near the edge; a push wrapping past the boundary
        // lands in a low slot index but must pop after the edge event.
        w.push(SimTime(WHEEL_SLOTS as u64 + 5), 2, 3);
        assert_eq!(w.pop(), Some((SimTime(WHEEL_SLOTS as u64 - 1), 0, 1)));
        assert_eq!(w.pop(), Some((SimTime(WHEEL_SLOTS as u64 + 5), 2, 3)));
    }

    #[test]
    fn advance_to_reanchors_without_losing_events() {
        let mut w = TimingWheel::new();
        w.push(SimTime(1_000_000), 0, 1);
        w.advance_to(SimTime(999_990));
        // Now within the horizon of the new cursor — and a fresh push
        // right behind it keeps exact order.
        w.push(SimTime(999_995), 1, 2);
        assert_eq!(w.pop(), Some((SimTime(999_995), 1, 2)));
        assert_eq!(w.pop(), Some((SimTime(1_000_000), 0, 1)));
    }

    #[test]
    fn pop_if_at_most_respects_the_deadline() {
        let mut w = TimingWheel::new();
        w.push(SimTime(10), 0, 1);
        w.push(SimTime(20), 1, 2);
        assert_eq!(w.pop_if_at_most(SimTime(15)), Some((SimTime(10), 0, 1)));
        assert_eq!(w.pop_if_at_most(SimTime(15)), None);
        assert_eq!(w.len(), 1);
    }
}
