//! Wire-robustness properties for the framed TCP transport.
//!
//! The socket-layer extension of `crates/rbc/tests/corruption.rs`: where
//! those properties pin "a corrupted frame dies at the codec", these pin
//! "a malicious byte *stream* dies at the transport". Random bytes,
//! truncated and oversized length prefixes, checksum-corrupt frames, slow
//! byte-at-a-time writes and mid-frame disconnects must never panic a peer
//! thread or wedge the endpoint: the hostile connection is dropped, a
//! counter ticks, and honest traffic keeps flowing.

use hh_net::tcp::{
    write_frame, write_handshake, TcpConfig, TcpEvent, TcpTransport, WireCodec, HANDSHAKE_MAGIC,
    MAX_FRAME_LEN,
};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Toy codec: u64 payload plus a xor-checksum byte. Deliberately strict so
/// random bytes essentially never decode.
#[derive(Debug, PartialEq)]
struct TestMsg(u64);

impl WireCodec for TestMsg {
    fn encode_frame(&self) -> Vec<u8> {
        let mut out = self.0.to_be_bytes().to_vec();
        out.push(out.iter().fold(0u8, |acc, b| acc ^ b));
        out
    }
    fn decode_frame(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != 9 {
            return Err(format!("bad length {}", bytes.len()));
        }
        let (body, check) = bytes.split_at(8);
        if body.iter().fold(0u8, |acc, b| acc ^ b) != check[0] {
            return Err("checksum mismatch".into());
        }
        Ok(TestMsg(u64::from_be_bytes(body.try_into().expect("8 bytes"))))
    }
}

fn endpoint() -> TcpTransport<TestMsg> {
    let cfg = TcpConfig::new(0, "127.0.0.1:0".parse().expect("addr"), vec![]);
    TcpTransport::start(cfg).expect("bind")
}

/// Opens a raw connection, handshakes as `id`, and returns the stream.
fn raw_client(t: &TcpTransport<TestMsg>, id: u16) -> TcpStream {
    let mut sock = TcpStream::connect(t.local_addr()).expect("connect");
    write_handshake(&mut sock, id).expect("handshake");
    sock
}

/// Waits until a `Message` arrives, returning it (drops Connected /
/// Disconnected events).
fn recv_message(t: &TcpTransport<TestMsg>, deadline: Duration) -> Option<(u16, TestMsg)> {
    let end = Instant::now() + deadline;
    loop {
        let left = end.saturating_duration_since(Instant::now());
        match t.events().recv_timeout(left) {
            Ok(TcpEvent::Message { from, msg }) => return Some((from, msg)),
            Ok(_) => continue,
            Err(_) => return None,
        }
    }
}

/// Proves the endpoint is still alive: a fresh honest connection delivers.
fn assert_still_serving(t: &TcpTransport<TestMsg>, probe_id: u16) {
    let mut sock = raw_client(t, probe_id);
    write_frame(&mut sock, &TestMsg(0xA11E).encode_frame()).expect("probe frame");
    loop {
        let (from, msg) = recv_message(t, Duration::from_secs(10))
            .expect("endpoint wedged: honest probe frame never delivered");
        // Garbage written by the hostile connection in the same test can
        // occasionally decode by luck; only the probe id proves liveness.
        if from == probe_id {
            assert_eq!(msg, TestMsg(0xA11E));
            return;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary bytes in place of a handshake: the connection is
    /// rejected, the endpoint keeps serving.
    fn random_bytes_instead_of_handshake(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Skip streams that accidentally start with the real magic.
        if bytes.len() >= 4 && bytes[0..4] == HANDSHAKE_MAGIC {
            return;
        }
        let t = endpoint();
        let mut sock = TcpStream::connect(t.local_addr()).expect("connect");
        let _ = sock.write_all(&bytes);
        drop(sock);
        assert_still_serving(&t, 7);
        t.shutdown();
    }

    /// Arbitrary bytes after a *valid* handshake: the peer thread must
    /// reject and drop, never panic or wedge.
    fn random_bytes_after_handshake(bytes in proptest::collection::vec(any::<u8>(), 1..256)) {
        let t = endpoint();
        let mut sock = raw_client(&t, 99);
        let _ = sock.write_all(&bytes);
        drop(sock);
        assert_still_serving(&t, 7);
        t.shutdown();
    }

    /// Honest frames survive a slow writer: payload dribbled one byte at a
    /// time must still decode (TCP offers no message boundaries; the
    /// reader must reassemble).
    fn slow_partial_writes_still_deliver(value in any::<u64>()) {
        let t = endpoint();
        let mut sock = raw_client(&t, 42);
        let payload = TestMsg(value).encode_frame();
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&payload);
        for byte in wire {
            sock.write_all(&[byte]).expect("slow write");
            sock.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(1));
        }
        let (from, msg) = recv_message(&t, Duration::from_secs(10)).expect("frame");
        prop_assert_eq!((from, msg), (42, TestMsg(value)));
        t.shutdown();
    }

    /// Corrupting any single bit of an honest frame payload must tick the
    /// decode counter, not deliver a forged message.
    fn bit_flipped_frame_is_rejected(value in any::<u64>(), bit in 0usize..72) {
        let t = endpoint();
        let mut sock = raw_client(&t, 13);
        let mut payload = TestMsg(value).encode_frame();
        payload[bit / 8] ^= 1 << (bit % 8);
        write_frame(&mut sock, &payload).expect("frame");
        // The endpoint must reject (counter) and keep serving.
        let end = Instant::now() + Duration::from_secs(10);
        while t.stats().decode_errors.load(Ordering::Relaxed) == 0 {
            prop_assert!(Instant::now() < end, "decode error never counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_still_serving(&t, 7);
        t.shutdown();
    }
}

#[test]
fn truncated_length_prefix_is_harmless() {
    let t = endpoint();
    let mut sock = raw_client(&t, 55);
    // Two bytes of a four-byte length prefix, then disconnect.
    sock.write_all(&[0x00, 0x01]).expect("partial header");
    drop(sock);
    assert_still_serving(&t, 7);
    t.shutdown();
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let t = endpoint();
    let mut sock = raw_client(&t, 55);
    // Claims a 4 GiB frame; must be rejected from the prefix alone.
    sock.write_all(&u32::MAX.to_be_bytes()).expect("header");
    let end = Instant::now() + Duration::from_secs(10);
    while t.stats().decode_errors.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < end, "oversized prefix never rejected");
        std::thread::sleep(Duration::from_millis(5));
    }
    // A length one past the cap is rejected too.
    let mut sock2 = raw_client(&t, 56);
    sock2.write_all(&((MAX_FRAME_LEN as u32 + 1).to_be_bytes())).expect("header");
    assert_still_serving(&t, 7);
    t.shutdown();
}

#[test]
fn mid_frame_disconnect_is_harmless() {
    let t = endpoint();
    let mut sock = raw_client(&t, 55);
    // Header promises 1000 bytes; deliver 10 and vanish.
    sock.write_all(&1000u32.to_be_bytes()).expect("header");
    sock.write_all(&[0xAB; 10]).expect("partial body");
    drop(sock);
    assert_still_serving(&t, 7);
    t.shutdown();
}

#[test]
fn hostile_stream_does_not_starve_concurrent_honest_traffic() {
    let t = endpoint();
    // A hostile connection spraying garbage concurrently with an honest
    // client sending real frames: every honest frame arrives.
    let addr = t.local_addr();
    let hostile = std::thread::spawn(move || {
        for i in 0..50u8 {
            if let Ok(mut sock) = TcpStream::connect(addr) {
                let _ = sock.write_all(&[i; 33]);
            }
        }
    });
    let mut honest = raw_client(&t, 3);
    for i in 0..20u64 {
        write_frame(&mut honest, &TestMsg(i).encode_frame()).expect("frame");
    }
    let mut got = 0;
    while got < 20 {
        let (from, msg) = recv_message(&t, Duration::from_secs(10)).expect("frame");
        if from == 3 {
            assert_eq!(msg, TestMsg(got));
            got += 1;
        }
    }
    hostile.join().expect("hostile thread");
    t.shutdown();
}
