//! TOML node configuration: committee membership, peer addresses, WAL
//! path, and the protocol knobs every committee member must agree on.
//!
//! The format (see `docs/node.md` for the walkthrough):
//!
//! ```toml
//! [node]
//! id = 0
//! wal = "testnet/wal-0.log"
//!
//! [committee]
//! peers = ["127.0.0.1:7800", "127.0.0.1:7801", "127.0.0.1:7802", "127.0.0.1:7803"]
//!
//! [validator]
//! schedule = "hammerhead"
//! min_round_delay_ms = 40
//! leader_timeout_ms = 400
//! sync_tick_ms = 200
//! status_interval_ms = 500
//! exec_rate_tps = 100000
//! ```
//!
//! The committee is *derived*: `peers.len()` fixes its size and
//! `Committee::new_equal_stake` reconstructs the same deterministic
//! keypairs in every process, so a config needs no key material — only
//! who listens where. Every `[validator]` knob must be identical across
//! the committee (they parameterize consensus, not the local host).

use hammerhead::{HammerheadConfig, ScheduleConfig, ValidatorConfig};
use hh_net::tcp::TcpConfig;
use hh_scenario::toml::{self, Value};
use hh_types::Committee;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

/// Configuration of one `hh-node` process.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeConfig {
    /// This validator's id (index into `peers`).
    pub id: u16,
    /// Listener address of every committee member, indexed by validator id.
    pub peers: Vec<String>,
    /// Path of the write-ahead log file. A non-empty WAL at startup means
    /// the node is restarting: it recovers via `Validator::on_restart`.
    pub wal: PathBuf,
    /// Leader schedule: `"hammerhead"` or `"round-robin"`.
    pub schedule: String,
    /// Minimum spacing between own proposals (ms).
    pub min_round_delay_ms: u64,
    /// How long to wait for an even round's anchor before advancing (ms).
    pub leader_timeout_ms: u64,
    /// Broadcast-layer maintenance tick (ms): sync retries, re-broadcasts.
    pub sync_tick_ms: u64,
    /// How often the node prints an `HH-STATUS` line (ms).
    pub status_interval_ms: u64,
    /// Modeled execution drain rate (tx/s).
    pub exec_rate_tps: u64,
}

impl NodeConfig {
    /// A config with the loopback-testnet protocol knobs; `peers` and
    /// `wal` still to be filled in.
    pub fn template(id: u16) -> Self {
        NodeConfig {
            id,
            peers: Vec::new(),
            wal: PathBuf::new(),
            schedule: "hammerhead".into(),
            // Loopback latency is microseconds, so the round pace is set
            // entirely by this knob: 40 ms ≈ 25 rounds/s ≈ 12 commits/s.
            min_round_delay_ms: 40,
            leader_timeout_ms: 400,
            sync_tick_ms: 200,
            status_interval_ms: 250,
            exec_rate_tps: 100_000,
        }
    }

    /// Parses a config document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or semantic problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = toml::parse(text).map_err(|e| format!("config: {e}"))?;
        let root = root.as_table().ok_or("config: root is not a table")?;

        let node = table(root, "node")?;
        let committee = table(root, "committee")?;
        let validator = table(root, "validator")?;

        let id = int(node, "id")? as u16;
        let wal = PathBuf::from(string(node, "wal")?);
        let peers = string_array(committee, "peers")?;
        let config = NodeConfig {
            id,
            peers,
            wal,
            schedule: string(validator, "schedule")?,
            min_round_delay_ms: int(validator, "min_round_delay_ms")? as u64,
            leader_timeout_ms: int(validator, "leader_timeout_ms")? as u64,
            sync_tick_ms: int(validator, "sync_tick_ms")? as u64,
            status_interval_ms: int(validator, "status_interval_ms")? as u64,
            exec_rate_tps: int(validator, "exec_rate_tps")? as u64,
        };
        config.validate()?;
        Ok(config)
    }

    /// Reads and parses the config file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Serializes back to the TOML format [`NodeConfig::parse`] accepts.
    pub fn to_toml(&self) -> String {
        let peers = self.peers.iter().map(|p| format!("{p:?}")).collect::<Vec<_>>().join(", ");
        format!(
            "[node]\nid = {}\nwal = {:?}\n\n[committee]\npeers = [{}]\n\n\
             [validator]\nschedule = {:?}\nmin_round_delay_ms = {}\n\
             leader_timeout_ms = {}\nsync_tick_ms = {}\nstatus_interval_ms = {}\n\
             exec_rate_tps = {}\n",
            self.id,
            self.wal.display().to_string(),
            peers,
            self.schedule,
            self.min_round_delay_ms,
            self.leader_timeout_ms,
            self.sync_tick_ms,
            self.status_interval_ms,
            self.exec_rate_tps,
        )
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.peers.len() < 4 {
            return Err(format!(
                "committee needs >= 4 peers (3f+1, f >= 1), got {}",
                self.peers.len()
            ));
        }
        if self.peers.len() > u16::MAX as usize {
            return Err("committee too large".into());
        }
        if self.id as usize >= self.peers.len() {
            return Err(format!("node id {} out of range for {} peers", self.id, self.peers.len()));
        }
        if self.wal.as_os_str().is_empty() {
            return Err("wal path is empty".into());
        }
        if self.min_round_delay_ms == 0 || self.min_round_delay_ms >= self.leader_timeout_ms {
            return Err("need 0 < min_round_delay_ms < leader_timeout_ms".into());
        }
        for (i, peer) in self.peers.iter().enumerate() {
            peer.parse::<SocketAddr>().map_err(|e| format!("peer {i} address {peer:?}: {e}"))?;
        }
        self.schedule_config().map(|_| ())
    }

    /// Committee size (= number of peers).
    pub fn committee_size(&self) -> u16 {
        self.peers.len() as u16
    }

    /// The committee every node reconstructs from the peer count.
    pub fn committee(&self) -> Committee {
        Committee::new_equal_stake(self.peers.len())
    }

    /// This node's listener address.
    ///
    /// # Errors
    ///
    /// Returns a description of an unparsable address.
    pub fn bind_addr(&self) -> Result<SocketAddr, String> {
        self.peers[self.id as usize].parse().map_err(|e| format!("bind address: {e}"))
    }

    /// The transport configuration (listener plus one outbound connection
    /// per other committee member).
    ///
    /// # Errors
    ///
    /// Returns a description of an unparsable peer address.
    pub fn tcp_config(&self) -> Result<TcpConfig, String> {
        let mut peers = Vec::new();
        for (i, peer) in self.peers.iter().enumerate() {
            let addr = peer.parse().map_err(|e| format!("peer {i} address: {e}"))?;
            peers.push((i as u16, addr));
        }
        Ok(TcpConfig::new(self.id, self.bind_addr()?, peers))
    }

    fn schedule_config(&self) -> Result<ScheduleConfig, String> {
        match self.schedule.as_str() {
            "hammerhead" => Ok(ScheduleConfig::Hammerhead(HammerheadConfig::default())),
            "round-robin" => Ok(ScheduleConfig::RoundRobin),
            other => Err(format!("unknown schedule {other:?} (want hammerhead | round-robin)")),
        }
    }

    /// Lowers to the validator's protocol configuration. Identical on
    /// every committee member by construction: every field comes from
    /// `[validator]` keys that the testnet generator stamps uniformly.
    ///
    /// # Errors
    ///
    /// Returns a description of an invalid schedule name.
    pub fn validator_config(&self) -> Result<ValidatorConfig, String> {
        Ok(ValidatorConfig {
            schedule: self.schedule_config()?,
            min_round_delay_us: self.min_round_delay_ms * 1_000,
            leader_timeout_us: self.leader_timeout_ms * 1_000,
            sync_tick_us: self.sync_tick_ms * 1_000,
            exec_rate_tps: self.exec_rate_tps,
            ..ValidatorConfig::default()
        })
    }
}

fn table<'a>(
    root: &'a BTreeMap<String, Value>,
    key: &str,
) -> Result<&'a BTreeMap<String, Value>, String> {
    root.get(key).and_then(Value::as_table).ok_or_else(|| format!("config: missing [{key}] table"))
}

fn string(t: &BTreeMap<String, Value>, key: &str) -> Result<String, String> {
    match t.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        _ => Err(format!("config: missing or non-string key {key:?}")),
    }
}

fn int(t: &BTreeMap<String, Value>, key: &str) -> Result<i64, String> {
    match t.get(key) {
        Some(Value::Int(i)) if *i >= 0 => Ok(*i),
        _ => Err(format!("config: missing or invalid integer key {key:?}")),
    }
}

fn string_array(t: &BTreeMap<String, Value>, key: &str) -> Result<Vec<String>, String> {
    let Some(Value::Array(items)) = t.get(key) else {
        return Err(format!("config: missing array key {key:?}"));
    };
    items
        .iter()
        .map(|v| match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("config: non-string entry in {key:?}: {other:?}")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeConfig {
        let mut cfg = NodeConfig::template(2);
        cfg.peers = (0..4).map(|i| format!("127.0.0.1:{}", 7800 + i)).collect();
        cfg.wal = PathBuf::from("wal-2.log");
        cfg
    }

    #[test]
    fn toml_roundtrip() {
        let cfg = sample();
        let parsed = NodeConfig::parse(&cfg.to_toml()).expect("parse");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut small = sample();
        small.peers.truncate(3);
        small.id = 0;
        assert!(small.validate().is_err());

        let mut out_of_range = sample();
        out_of_range.id = 4;
        assert!(out_of_range.validate().is_err());

        let mut bad_addr = sample();
        bad_addr.peers[1] = "not-an-address".into();
        assert!(bad_addr.validate().is_err());

        let mut bad_schedule = sample();
        bad_schedule.schedule = "static".into();
        assert!(bad_schedule.validate().is_err());
    }

    #[test]
    fn lowers_to_validator_and_tcp_configs() {
        let cfg = sample();
        let vcfg = cfg.validator_config().expect("validator config");
        assert_eq!(vcfg.min_round_delay_us, 40_000);
        assert_eq!(vcfg.leader_timeout_us, 400_000);
        let tcp = cfg.tcp_config().expect("tcp config");
        assert_eq!(tcp.id, 2);
        assert_eq!(tcp.peers.len(), 4);
        assert_eq!(tcp.bind, "127.0.0.1:7802".parse().unwrap());
    }
}
