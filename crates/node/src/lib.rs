//! `hh-node` — a real HammerHead validator over TCP, and the
//! local-testnet harness that proves it.
//!
//! Everything below the socket is the code the simulator already
//! exercises: the same [`hammerhead::Validator`] state machine, the
//! same CRC-framed codec, the same WAL. This crate adds only the
//! operational shell:
//!
//! * [`config`] — the TOML file describing one node: committee peer
//!   addresses, WAL path, protocol knobs.
//! * [`wire`] — [`wire::WireMsg`], plugging `ValidatorMessage` into the
//!   transport's codec seam.
//! * [`runtime`] — [`runtime::run_node`]: the event loop binding the
//!   validator to a [`hh_net::tcp::TcpTransport`], a wall clock, a
//!   timer heap, and a stdin-driven graceful shutdown.
//! * [`testnet`] — [`testnet::run_testnet`]: spawn a whole committee as
//!   OS processes on loopback, drive load, SIGKILL one node and restart
//!   it, then audit every WAL with the safety checker.
//!
//! The binary (`hh-node --config node.toml`, `hh-node testnet ...`)
//! lives in `src/main.rs`; `hh-cli testnet` delegates to it.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod runtime;
pub mod testnet;
pub mod wire;

pub use config::NodeConfig;
pub use runtime::{run_node, NodeReport};
pub use testnet::{
    locate_node_binary, run_testnet, KillPlan, TestnetOpts, TestnetReport, VictimReport,
};
pub use wire::WireMsg;
