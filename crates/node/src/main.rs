//! `hh-node` — run one validator over TCP, or a whole local testnet.

use hh_node::{run_node, run_testnet, KillPlan, NodeConfig, TestnetOpts};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
hh-node — a HammerHead validator over real sockets

USAGE:
    hh-node --config <node.toml>       run one validator until stdin closes
                                       (send `shutdown\\n` or close the pipe
                                       for a graceful, WAL-flushing exit)
    hh-node testnet [OPTIONS]          run a local committee of hh-node
                                       processes on loopback and audit it

TESTNET OPTIONS:
    --nodes <n>               committee size, 4..=20 (default 4)
    --duration-secs <s>       load phase length (default 10)
    --tps <n>                 total offered load, tx/s (default 200)
    --payload-bytes <n>       modeled payload per tx (default 0)
    --base-port <p>           first listener port; 0 = OS-assigned (default 0)
    --schedule <s>            hammerhead | round-robin (default hammerhead)
    --kill <id>               SIGKILL node <id> mid-run and restart it
    --kill-after-secs <s>     when to kill (default duration/3)
    --restart-after-secs <s>  how long to leave it dead (default 2)
    --min-commits <n>         per-node commit gate (default 10)
    --min-rounds <n>          committee committed-round gate (default 20)
    --dir <path>              scratch dir (default: fresh temp dir)
    --node-binary <path>      hh-node binary to spawn (default: self)
    --keep                    keep the scratch dir after a passing run

Prints a JSON report; exits 0 iff every gate passed.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--config") => cmd_node(&args[1..]),
        Some("testnet") => cmd_testnet(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_node(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("error: --config needs a path\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let cfg = match NodeConfig::load(path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_node(&cfg) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // Exit 2 marks a fail-stop (storage fault) as distinct from
            // a config mistake: the harness treats it as unclean.
            ExitCode::from(2)
        }
    }
}

fn cmd_testnet(args: &[String]) -> ExitCode {
    let opts = match parse_testnet_args(args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run_testnet(&opts) {
        Ok(report) => {
            println!("{}", report.to_json());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_testnet_args(args: &[String]) -> Result<TestnetOpts, String> {
    let mut opts = TestnetOpts::new(4);
    let mut kill_victim: Option<u16> = None;
    let mut kill_after: Option<u64> = None;
    let mut restart_after: u64 = 2;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--nodes" => opts.nodes = parse(&value("--nodes")?)?,
            "--duration-secs" => {
                opts.duration = Duration::from_secs(parse(&value("--duration-secs")?)?)
            }
            "--tps" => opts.tps = parse(&value("--tps")?)?,
            "--payload-bytes" => opts.payload_bytes = parse(&value("--payload-bytes")?)?,
            "--base-port" => opts.base_port = parse(&value("--base-port")?)?,
            "--schedule" => opts.schedule = value("--schedule")?,
            "--kill" => kill_victim = Some(parse(&value("--kill")?)?),
            "--kill-after-secs" => kill_after = Some(parse(&value("--kill-after-secs")?)?),
            "--restart-after-secs" => restart_after = parse(&value("--restart-after-secs")?)?,
            "--min-commits" => opts.min_commits = parse(&value("--min-commits")?)?,
            "--min-rounds" => opts.min_committed_round = parse(&value("--min-rounds")?)?,
            "--dir" => opts.dir = Some(PathBuf::from(value("--dir")?)),
            "--node-binary" => opts.node_binary = Some(PathBuf::from(value("--node-binary")?)),
            "--keep" => opts.keep_dir = true,
            other => return Err(format!("unknown testnet flag `{other}`")),
        }
    }
    if let Some(victim) = kill_victim {
        let at = kill_after.unwrap_or_else(|| (opts.duration.as_secs() / 3).max(1));
        opts.kill = Some(KillPlan {
            victim,
            at: Duration::from_secs(at),
            restart_after: Duration::from_secs(restart_after),
        });
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("invalid value {s:?}: {e}"))
}
