//! The node runtime: one OS process driving one [`Validator`] over real
//! sockets.
//!
//! The event loop is the operational twin of the simulator's
//! [`hh_net::sim`] runtime: the validator is the same pure state machine
//! returning [`Output`] effects, but here "now" is a monotonic wall
//! clock, timers live in a local heap, and sends go through
//! [`hh_net::tcp::TcpTransport`] instead of a latency model.
//!
//! # Lifecycle
//!
//! * **Boot** — open the WAL file; a non-empty log means this is a
//!   restart, so boot through [`Validator::on_restart`] (WAL replay +
//!   RBC re-announce for range-sync) instead of
//!   [`Validator::on_start`].
//! * **Run** — deliver frames, fire timers, and print an `HH-STATUS`
//!   line every `status_interval_ms` so a harness can watch progress
//!   without any extra protocol.
//! * **Shutdown** — the node owns no signal handlers (pure std): its
//!   control channel is **stdin**. A `shutdown` line or EOF triggers a
//!   graceful exit: [`Validator::on_shutdown`] writes a final
//!   checkpoint and fsyncs the WAL, an `HH-FINAL` line reports the
//!   closing state, and the process exits 0. A SIGKILL simply never
//!   reaches any of this — which is exactly what the crash-recovery
//!   test wants.

use crate::config::NodeConfig;
use crate::wire::WireMsg;
use hammerhead::{Output, Validator};
use hh_net::tcp::{TcpEvent, TcpTransport};
use hh_storage::FileBackend;
use hh_types::ValidatorId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{BufRead, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Closing state of a node run, as also printed on the `HH-FINAL` line.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// This validator's id.
    pub id: u16,
    /// Committed sub-DAGs observed over the whole run (including any
    /// recovered by WAL replay at boot).
    pub commits: u64,
    /// Round of the newest committed anchor.
    pub committed_round: u64,
    /// Whether the run ended by graceful shutdown with a synced WAL.
    pub clean: bool,
}

/// Watches stdin on a helper thread; flips `stop` on EOF or a
/// `shutdown` line. The thread never needs joining: once `stop` is set
/// its work is done, and process exit reaps it.
fn watch_stdin(stop: Arc<AtomicBool>) {
    std::thread::Builder::new()
        .name("hh-node-stdin".into())
        .spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if l.trim() == "shutdown" => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
            stop.store(true, Ordering::SeqCst);
        })
        .expect("spawn stdin watcher");
}

/// Runs a node to completion.
///
/// Returns when stdin closes (graceful shutdown) or the validator
/// fail-stops on a storage error.
///
/// # Errors
///
/// Returns a description of a boot failure (WAL or socket) or of the
/// storage error that halted the validator.
pub fn run_node(cfg: &NodeConfig) -> Result<NodeReport, String> {
    cfg.validate()?;
    let backend =
        FileBackend::open(&cfg.wal).map_err(|e| format!("open WAL {}: {e}", cfg.wal.display()))?;
    let resumed = !hh_storage::LogBackend::is_empty(&backend);

    let mut validator = Validator::new(
        cfg.committee(),
        ValidatorId(cfg.id),
        cfg.validator_config()?,
        Some(backend),
    );
    let transport = TcpTransport::<WireMsg>::start(cfg.tcp_config()?)
        .map_err(|e| format!("bind {}: {e}", cfg.peers[cfg.id as usize]))?;

    let stop = Arc::new(AtomicBool::new(false));
    watch_stdin(stop.clone());

    let start = Instant::now();
    let now_us = |start: &Instant| start.elapsed().as_micros() as u64;
    // One-shot timers: (deadline_us, token), earliest first.
    let mut timers: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut fatal: Option<String> = None;

    let dispatch = |outputs: Vec<Output>,
                    now: u64,
                    timers: &mut BinaryHeap<Reverse<(u64, u64)>>,
                    fatal: &mut Option<String>| {
        for out in outputs {
            match out {
                Output::Send(to, msg) => transport.send(to.0, &WireMsg::new(msg)),
                Output::Broadcast(msg) => transport.broadcast(&WireMsg::new(msg)),
                Output::SetTimer { delay_us, token } => {
                    timers.push(Reverse((now.saturating_add(delay_us), token)));
                }
                Output::StorageError { context, detail } => {
                    *fatal = Some(format!("storage error ({context}): {detail}"));
                }
            }
        }
    };

    let boot_now = now_us(&start);
    let boot = if resumed { validator.on_restart(boot_now) } else { validator.on_start(boot_now) };
    dispatch(boot, boot_now, &mut timers, &mut fatal);
    eprintln!(
        "hh-node {}: {} with {} recovered commits, listening on {}",
        cfg.id,
        if resumed { "restarted" } else { "started" },
        validator.commit_count(),
        cfg.peers[cfg.id as usize],
    );

    let status_interval = cfg.status_interval_ms.max(1) * 1_000;
    let mut next_status = status_interval;
    let committed_round = |v: &Validator<FileBackend>| -> u64 {
        v.committed_anchors().last().map_or(0, |a| a.round.0)
    };

    while fatal.is_none() && !stop.load(Ordering::SeqCst) {
        let now = now_us(&start);

        // Fire every due timer before blocking again.
        while let Some(&Reverse((deadline, token))) = timers.peek() {
            if deadline > now {
                break;
            }
            timers.pop();
            let outs = validator.on_timer(token, now);
            dispatch(outs, now, &mut timers, &mut fatal);
        }

        if now >= next_status {
            next_status = now + status_interval;
            println!(
                "HH-STATUS id={} commits={} round={} cround={}",
                cfg.id,
                validator.commit_count(),
                validator.current_round().0,
                committed_round(&validator),
            );
            let _ = std::io::stdout().flush();
            // Keep the in-memory run bounded: the harness audits commits
            // from the WAL, not from this process's memory.
            validator.take_commit_records();
            validator.take_exec_records();
        }

        // Sleep until the next timer, status tick, or inbound frame.
        let next_deadline =
            timers.peek().map_or(next_status, |&Reverse((d, _))| d.min(next_status));
        let wait = Duration::from_micros(next_deadline.saturating_sub(now).clamp(100, 20_000));
        match transport.events().recv_timeout(wait) {
            Ok(TcpEvent::Message { from, msg }) => {
                let now = now_us(&start);
                let outs = validator.on_message(ValidatorId(from), msg.0.as_ref(), now);
                dispatch(outs, now, &mut timers, &mut fatal);
                // Drain any burst without re-checking timers per frame.
                while let Ok(ev) = transport.events().try_recv() {
                    if let TcpEvent::Message { from, msg } = ev {
                        let now = now_us(&start);
                        let outs = validator.on_message(ValidatorId(from), msg.0.as_ref(), now);
                        dispatch(outs, now, &mut timers, &mut fatal);
                    }
                }
            }
            Ok(_) => {} // Connected / Disconnected: transport-level noise.
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                fatal = Some("transport event channel closed".into());
            }
        }
    }

    // Graceful close: final checkpoint + fsync, then report.
    let now = now_us(&start);
    let mut clean = fatal.is_none();
    for out in validator.on_shutdown(now) {
        if let Output::StorageError { context, detail } = out {
            clean = false;
            if fatal.is_none() {
                fatal = Some(format!("storage error ({context}): {detail}"));
            }
        }
    }
    let report = NodeReport {
        id: cfg.id,
        commits: validator.commit_count(),
        committed_round: committed_round(&validator),
        clean,
    };
    println!(
        "HH-FINAL id={} commits={} cround={} clean={}",
        report.id, report.commits, report.committed_round, report.clean,
    );
    let _ = std::io::stdout().flush();
    transport.shutdown();

    match fatal {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// Parses one `HH-STATUS`/`HH-FINAL` key from a line the runtime printed
/// (`key=value`); the testnet harness uses this to watch child nodes.
pub fn parse_status_field(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_lines_parse() {
        let line = "HH-STATUS id=3 commits=41 round=88 cround=86";
        assert_eq!(parse_status_field(line, "id"), Some(3));
        assert_eq!(parse_status_field(line, "commits"), Some(41));
        assert_eq!(parse_status_field(line, "cround"), Some(86));
        assert_eq!(parse_status_field(line, "missing"), None);
        assert_eq!(parse_status_field("noise", "commits"), None);
    }
}
