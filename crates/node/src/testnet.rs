//! The local-testnet harness: a committee of real `hh-node` OS
//! processes on loopback, driven by workload clients, crash-tested with
//! SIGKILL, and audited with the safety checker.
//!
//! One [`run_testnet`] call is a full experiment:
//!
//! 1. generate per-node TOML configs (fresh scratch dir, free loopback
//!    ports),
//! 2. spawn the committee as child processes of the real `hh-node`
//!    binary,
//! 3. drive load through per-node TCP clients paced by the workload
//!    generator,
//! 4. optionally SIGKILL one node mid-run and restart it against its
//!    surviving WAL,
//! 5. stop everyone gracefully (close stdin), and
//! 6. **audit from disk**: replay every node's WAL through a fresh
//!    [`Validator`] and feed the recomputed commit sequences to the
//!    [`SafetyChecker`] — the committed prefixes of independent OS
//!    processes must agree, including across the victim's crash.
//!
//! The audit replays a *copy* of each WAL: `Validator::on_restart`
//! appends a fresh proposal after recovery, and the audit must not
//! grow the artifact it is auditing.

use crate::config::NodeConfig;
use crate::runtime::parse_status_field;
use crate::wire::WireMsg;
use hammerhead::{Validator, ValidatorMessage};
use hh_net::tcp::{write_frame, write_handshake, WireCodec};
use hh_sim::{RateNow, SafetyChecker, Workload};
use hh_storage::FileBackend;
use hh_types::{Transaction, ValidatorId};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Crash plan: SIGKILL `victim` at `at`, restart it `restart_after`
/// later against its surviving WAL.
#[derive(Clone, Debug)]
pub struct KillPlan {
    /// Which node to kill (validator id).
    pub victim: u16,
    /// When to kill it, measured from testnet start.
    pub at: Duration,
    /// How long to leave it dead.
    pub restart_after: Duration,
}

/// Parameters of a testnet run.
#[derive(Clone, Debug)]
pub struct TestnetOpts {
    /// Committee size (4..=20).
    pub nodes: u16,
    /// How long to drive load before the graceful stop.
    pub duration: Duration,
    /// Total offered load across all clients (tx/s).
    pub tps: f64,
    /// Modeled payload per transaction (accounting only, never on wire).
    pub payload_bytes: u32,
    /// First listener port; node `i` binds `base_port + i`. `0` asks the
    /// OS for free ports instead.
    pub base_port: u16,
    /// Leader schedule (`"hammerhead"` or `"round-robin"`).
    pub schedule: String,
    /// Optional kill-and-restart crash test.
    pub kill: Option<KillPlan>,
    /// Gate: every node must commit at least this many sub-DAGs.
    pub min_commits: u64,
    /// Gate: the committee's newest committed anchor must reach this round.
    pub min_committed_round: u64,
    /// Scratch directory (configs + WALs). Defaults to a fresh directory
    /// under the system temp dir.
    pub dir: Option<PathBuf>,
    /// Path of the `hh-node` binary. Defaults to [`locate_node_binary`].
    pub node_binary: Option<PathBuf>,
    /// Keep the scratch directory after a passing run (it is always kept
    /// after a failing one, so the WALs can be inspected).
    pub keep_dir: bool,
}

impl TestnetOpts {
    /// Defaults for an `n`-node run: 10 s, 200 tx/s, hammerhead
    /// schedule, OS-assigned ports, no crash test, gates of 10 commits
    /// per node and committed round 20.
    pub fn new(nodes: u16) -> Self {
        TestnetOpts {
            nodes,
            duration: Duration::from_secs(10),
            tps: 200.0,
            payload_bytes: 0,
            base_port: 0,
            schedule: "hammerhead".into(),
            kill: None,
            min_commits: 10,
            min_committed_round: 20,
            dir: None,
            node_binary: None,
            keep_dir: false,
        }
    }
}

/// What happened to the crash-test victim.
#[derive(Clone, Debug)]
pub struct VictimReport {
    /// The killed node's id.
    pub id: u16,
    /// Commits it had reported just before the SIGKILL.
    pub commits_at_kill: u64,
    /// Commits recovered from its WAL at the end of the run. Strictly
    /// more than `commits_at_kill` proves it replayed its log *and*
    /// caught back up with the committee after the restart.
    pub commits_final: u64,
}

/// Everything a testnet run produced.
#[derive(Clone, Debug)]
pub struct TestnetReport {
    /// Committee size.
    pub nodes: u16,
    /// Per-node commit counts, recomputed from each node's WAL.
    pub commits: Vec<u64>,
    /// Per-node round of the newest committed anchor.
    pub committed_rounds: Vec<u64>,
    /// Safety violations across all nodes' committed prefixes.
    pub safety_violations: usize,
    /// Crash-test outcome, if a [`KillPlan`] was set.
    pub victim: Option<VictimReport>,
    /// Whether every node exited 0 after a stdin-close shutdown.
    pub clean_shutdown: bool,
    /// Every violated gate; empty means the run passed.
    pub failures: Vec<String>,
}

impl TestnetReport {
    /// Whether every gate held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report as JSON (the `hh-node testnet` output format).
    pub fn to_json(&self) -> String {
        let list = |v: &[u64]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
        let victim = match &self.victim {
            Some(v) => format!(
                "{{ \"id\": {}, \"commits_at_kill\": {}, \"commits_final\": {} }}",
                v.id, v.commits_at_kill, v.commits_final
            ),
            None => "null".into(),
        };
        let failures =
            self.failures.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ");
        format!(
            "{{\n  \"nodes\": {},\n  \"commits\": [{}],\n  \"committed_rounds\": [{}],\n  \
             \"safety_violations\": {},\n  \"victim\": {},\n  \"clean_shutdown\": {},\n  \
             \"passed\": {},\n  \"failures\": [{}]\n}}",
            self.nodes,
            list(&self.commits),
            list(&self.committed_rounds),
            self.safety_violations,
            victim,
            self.clean_shutdown,
            self.passed(),
            failures,
        )
    }
}

/// Live progress of one child node, fed by its stdout-watcher thread.
#[derive(Default)]
struct Progress {
    commits: AtomicU64,
    committed_round: AtomicU64,
}

/// A spawned node child whose stdout is being watched.
struct NodeProc {
    child: Child,
    progress: Arc<Progress>,
}

/// The running committee. Owns the children; kills every still-running
/// one when dropped, so an early-erroring harness never leaks orphans.
struct Fleet(Vec<Option<NodeProc>>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for slot in &mut self.0 {
            if let Some(mut proc_) = slot.take() {
                let _ = proc_.child.kill();
                let _ = proc_.child.wait();
            }
        }
    }
}

/// Finds the `hh-node` binary: `$HH_NODE_BIN`, then next to the current
/// executable (test binaries live in `target/<profile>/deps`, so the
/// parent directory is probed too), then a `cargo build -p hh-node`
/// from the workspace this crate was compiled in.
///
/// # Errors
///
/// Returns a description of every probed location if none works.
pub fn locate_node_binary() -> Result<PathBuf, String> {
    if let Ok(p) = std::env::var("HH_NODE_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(format!("HH_NODE_BIN={} does not exist", p.display()));
    }
    let mut probed = Vec::new();
    if let Ok(exe) = std::env::current_exe() {
        if exe.file_stem().is_some_and(|s| s == "hh-node") {
            return Ok(exe);
        }
        let candidates = [
            exe.parent().map(|d| d.join("hh-node")),
            exe.parent().and_then(Path::parent).map(|d| d.join("hh-node")),
        ];
        for c in candidates.into_iter().flatten() {
            if c.is_file() {
                return Ok(c);
            }
            probed.push(c);
        }
    }
    // Last resort: build it. CARGO_MANIFEST_DIR is baked in at compile
    // time and points at crates/node inside this workspace.
    let workspace = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(&cargo)
        .args(["build", "-p", "hh-node", "--bin", "hh-node"])
        .current_dir(&workspace)
        .status()
        .map_err(|e| format!("running {cargo} build: {e}"))?;
    if !status.success() {
        return Err("cargo build -p hh-node failed".into());
    }
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| workspace.join("target"));
    let built = target.join("debug/hh-node");
    if built.is_file() {
        return Ok(built);
    }
    probed.push(built);
    Err(format!(
        "cannot locate hh-node binary; probed: {}",
        probed.iter().map(|p| p.display().to_string()).collect::<Vec<_>>().join(", ")
    ))
}

fn pick_ports(opts: &TestnetOpts) -> Result<Vec<u16>, String> {
    if opts.base_port != 0 {
        return Ok((0..opts.nodes).map(|i| opts.base_port + i).collect());
    }
    // Ask the OS: hold all listeners open until every port is assigned
    // so the same port is never handed out twice.
    let mut listeners = Vec::new();
    for _ in 0..opts.nodes {
        let l = std::net::TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("probing for a free port: {e}"))?;
        listeners.push(l);
    }
    listeners.iter().map(|l| l.local_addr().map(|a| a.port()).map_err(|e| e.to_string())).collect()
}

fn spawn_node(binary: &Path, config_path: &Path) -> Result<NodeProc, String> {
    let mut child = Command::new(binary)
        .arg("--config")
        .arg(config_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", binary.display()))?;
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let progress = Arc::new(Progress::default());
    let watcher = progress.clone();
    std::thread::Builder::new()
        .name("hh-testnet-watch".into())
        .spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if let Some(c) = parse_status_field(&line, "commits") {
                    watcher.commits.store(c, Ordering::SeqCst);
                }
                if let Some(r) = parse_status_field(&line, "cround") {
                    watcher.committed_round.store(r, Ordering::SeqCst);
                }
            }
        })
        .map_err(|e| format!("spawn watcher: {e}"))?;
    Ok(NodeProc { child, progress })
}

/// One workload client: connects to its node, submits paced
/// transactions, drains confirmations, reconnects if the node goes away
/// (it will, in a crash test).
fn client_loop(
    addr: String,
    client_id: u16,
    base_tps: f64,
    payload_bytes: u32,
    duration_us: u64,
    stop: Arc<AtomicBool>,
) {
    let workload = Workload::constant();
    let start = Instant::now();
    let mut seq: u64 = 0;
    'reconnect: while !stop.load(Ordering::SeqCst) {
        let Ok(mut stream) = TcpStream::connect(&addr) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        let _ = stream.set_nodelay(true);
        if write_handshake(&mut stream, client_id).is_err() {
            continue;
        }
        // Drain confirmations on a companion reader so the node's reply
        // writer never backs up against an unread socket.
        if let Ok(mut rd) = stream.try_clone() {
            std::thread::Builder::new()
                .name("hh-client-drain".into())
                .spawn(move || {
                    let mut buf = [0u8; 4096];
                    while matches!(rd.read(&mut buf), Ok(n) if n > 0) {}
                })
                .ok();
        }
        while !stop.load(Ordering::SeqCst) {
            let now_us = start.elapsed().as_micros() as u64;
            let interval = match workload.rate_at(base_tps, now_us, duration_us) {
                RateNow::Active { tps, .. } if tps > 0.0 => Duration::from_secs_f64(1.0 / tps),
                _ => Duration::from_millis(20),
            };
            let tx = Transaction::with_payload(client_id as u32, seq, now_us, payload_bytes);
            let frame = WireMsg::new(ValidatorMessage::Submit(tx)).encode_frame();
            if write_frame(&mut stream, &frame).is_err() {
                continue 'reconnect; // Node died; retry against its restart.
            }
            seq += 1;
            std::thread::sleep(interval.min(Duration::from_millis(100)));
        }
        return;
    }
}

/// Closes a child's stdin (the graceful-shutdown signal) and waits up
/// to `grace` for exit 0.
fn stop_gracefully(child: &mut Child, grace: Duration) -> Result<(), String> {
    if let Some(mut stdin) = child.stdin.take() {
        let _ = stdin.write_all(b"shutdown\n");
        // Dropping stdin closes the pipe: EOF is the shutdown signal
        // even if the line above was never read.
    }
    let deadline = Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                return if status.success() {
                    Ok(())
                } else {
                    Err(format!("exited with {status}"))
                };
            }
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Ok(None) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err("did not exit within the grace period".into());
            }
            Err(e) => return Err(format!("wait failed: {e}")),
        }
    }
}

/// Replays a copy of one node's WAL through a fresh validator and
/// returns its recomputed commit history.
fn audit_node(cfg: &NodeConfig) -> Result<(u64, u64, Vec<hammerhead::CommitRecord>), String> {
    let copy = cfg.wal.with_extension("audit");
    std::fs::copy(&cfg.wal, &copy)
        .map_err(|e| format!("copying WAL {}: {e}", cfg.wal.display()))?;
    let backend = FileBackend::open(&copy).map_err(|e| format!("open audit WAL: {e}"))?;
    let mut v = Validator::new(
        cfg.committee(),
        ValidatorId(cfg.id),
        cfg.validator_config()?,
        Some(backend),
    );
    v.on_restart(0);
    let records = v.take_commit_records();
    let round = v.committed_anchors().last().map_or(0, |a| a.round.0);
    Ok((v.commit_count(), round, records))
}

/// Runs a full local testnet. See the module docs for the phases.
///
/// # Errors
///
/// Returns a description of a *setup* failure (bad options, unusable
/// scratch dir, missing binary, spawn failure). Gate violations are not
/// errors: they come back in [`TestnetReport::failures`] so the caller
/// can still see how far the run got.
pub fn run_testnet(opts: &TestnetOpts) -> Result<TestnetReport, String> {
    if !(4..=20).contains(&opts.nodes) {
        return Err(format!("nodes must be in 4..=20, got {}", opts.nodes));
    }
    if let Some(kill) = &opts.kill {
        if kill.victim >= opts.nodes {
            return Err(format!("kill victim {} out of range", kill.victim));
        }
        if kill.at + kill.restart_after >= opts.duration {
            return Err("kill plan must complete before the run ends".into());
        }
    }

    let dir = match &opts.dir {
        Some(d) => d.clone(),
        None => {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            std::env::temp_dir().join(format!(
                "hh-testnet-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::SeqCst)
            ))
        }
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;

    let binary = match &opts.node_binary {
        Some(b) => b.clone(),
        None => locate_node_binary()?,
    };
    let ports = pick_ports(opts)?;
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();

    // Per-node configs, written once and reused verbatim by a restart.
    let mut configs = Vec::new();
    let mut config_paths = Vec::new();
    for i in 0..opts.nodes {
        let mut cfg = NodeConfig::template(i);
        cfg.peers = peers.clone();
        cfg.wal = dir.join(format!("wal-{i}.log"));
        cfg.schedule = opts.schedule.clone();
        cfg.validate()?;
        let path = dir.join(format!("node-{i}.toml"));
        std::fs::write(&path, cfg.to_toml()).map_err(|e| format!("write config: {e}"))?;
        configs.push(cfg);
        config_paths.push(path);
    }

    let mut fleet = Fleet(Vec::new());
    for path in &config_paths {
        let proc_ = spawn_node(&binary, path)?;
        fleet.0.push(Some(proc_));
    }
    let procs = &mut fleet.0;

    // Workload clients: client k drives node k; ids start past the
    // committee's so the transport routes replies, never consensus.
    let stop = Arc::new(AtomicBool::new(false));
    let rates = Workload::constant().client_rates(opts.tps, opts.nodes as usize);
    let duration_us = opts.duration.as_micros() as u64;
    let mut client_threads = Vec::new();
    for (k, rate) in rates.into_iter().enumerate() {
        let addr = peers[k].clone();
        let id = opts.nodes + k as u16;
        let stop = stop.clone();
        let payload = opts.payload_bytes;
        client_threads.push(
            std::thread::Builder::new()
                .name(format!("hh-client-{k}"))
                .spawn(move || client_loop(addr, id, rate, payload, duration_us, stop))
                .map_err(|e| format!("spawn client: {e}"))?,
        );
    }

    // Timeline: watch for unexpected deaths, execute the kill plan.
    let started = Instant::now();
    let mut failures = Vec::new();
    let mut victim: Option<VictimReport> = None;
    let mut killed_at: Option<Duration> = None;
    while started.elapsed() < opts.duration {
        std::thread::sleep(Duration::from_millis(50));
        if let Some(kill) = &opts.kill {
            let idx = kill.victim as usize;
            if killed_at.is_none() && started.elapsed() >= kill.at {
                if let Some(proc_) = &mut procs[idx] {
                    let commits_at_kill = proc_.progress.commits.load(Ordering::SeqCst);
                    let _ = proc_.child.kill(); // SIGKILL: no goodbye, no flush.
                    let _ = proc_.child.wait();
                    procs[idx] = None;
                    killed_at = Some(started.elapsed());
                    victim =
                        Some(VictimReport { id: kill.victim, commits_at_kill, commits_final: 0 });
                }
            }
            if let Some(t) = killed_at {
                if procs[idx].is_none() && started.elapsed() >= t + kill.restart_after {
                    procs[idx] = Some(spawn_node(&binary, &config_paths[idx])?);
                }
            }
        }
        for (i, slot) in procs.iter_mut().enumerate() {
            if let Some(proc_) = slot {
                if let Ok(Some(status)) = proc_.child.try_wait() {
                    failures.push(format!("node {i} died unexpectedly ({status})"));
                    *slot = None;
                }
            }
        }
    }

    // Graceful stop: clients first, then stdin-close every node.
    stop.store(true, Ordering::SeqCst);
    for t in client_threads {
        let _ = t.join();
    }
    let mut clean_shutdown = true;
    for (i, slot) in procs.iter_mut().enumerate() {
        match slot.take() {
            Some(mut proc_) => {
                if let Err(e) = stop_gracefully(&mut proc_.child, Duration::from_secs(10)) {
                    clean_shutdown = false;
                    failures.push(format!("node {i} unclean shutdown: {e}"));
                }
            }
            // A missing node here already produced an "unexpected death"
            // failure in the timeline loop (the victim is respawned, so
            // its slot is only empty if the restart itself failed).
            None => clean_shutdown = false,
        }
    }
    drop(fleet);

    // Audit every WAL from disk; cross-check with the safety checker.
    let mut checker = SafetyChecker::new();
    let mut commits = Vec::new();
    let mut committed_rounds = Vec::new();
    for cfg in &configs {
        match audit_node(cfg) {
            Ok((count, round, records)) => {
                checker.observe_all(cfg.id, &records);
                commits.push(count);
                committed_rounds.push(round);
                if count < opts.min_commits {
                    failures
                        .push(format!("node {} committed {count} < {}", cfg.id, opts.min_commits));
                }
                if let Some(v) = &mut victim {
                    if v.id == cfg.id {
                        v.commits_final = count;
                    }
                }
            }
            Err(e) => {
                commits.push(0);
                committed_rounds.push(0);
                failures.push(format!("node {} audit failed: {e}", cfg.id));
            }
        }
    }
    let best_round = committed_rounds.iter().copied().max().unwrap_or(0);
    if best_round < opts.min_committed_round {
        failures.push(format!(
            "committee reached committed round {best_round} < {}",
            opts.min_committed_round
        ));
    }
    if !checker.is_clean() {
        failures.push(format!("safety checker found {} violation(s)", checker.violations().len()));
    }
    if let Some(v) = &victim {
        if v.commits_final <= v.commits_at_kill {
            failures.push(format!(
                "victim {} did not catch up: {} commits at kill, {} after restart",
                v.id, v.commits_at_kill, v.commits_final
            ));
        }
    }

    let report = TestnetReport {
        nodes: opts.nodes,
        commits,
        committed_rounds,
        safety_violations: checker.violations().len(),
        victim,
        clean_shutdown,
        failures,
    };
    if report.passed() && !opts.keep_dir && opts.dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    } else if !report.passed() {
        eprintln!("testnet artifacts kept at {}", dir.display());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_validation() {
        let small = TestnetOpts::new(3);
        assert!(run_testnet(&small).is_err());
        let mut bad_kill = TestnetOpts::new(4);
        bad_kill.kill = Some(KillPlan {
            victim: 9,
            at: Duration::from_secs(1),
            restart_after: Duration::from_secs(1),
        });
        assert!(run_testnet(&bad_kill).is_err());
        let mut late_kill = TestnetOpts::new(4);
        late_kill.kill = Some(KillPlan {
            victim: 0,
            at: Duration::from_secs(9),
            restart_after: Duration::from_secs(5),
        });
        assert!(run_testnet(&late_kill).is_err());
    }

    #[test]
    fn report_json_shape() {
        let report = TestnetReport {
            nodes: 4,
            commits: vec![12, 11, 13, 12],
            committed_rounds: vec![30, 30, 31, 30],
            safety_violations: 0,
            victim: Some(VictimReport { id: 2, commits_at_kill: 5, commits_final: 13 }),
            clean_shutdown: true,
            failures: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\"safety_violations\": 0"));
        assert!(json.contains("\"commits_at_kill\": 5"));
        assert!(json.contains("\"passed\": true"));
        assert!(report.passed());
    }
}
