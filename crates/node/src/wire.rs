//! The on-wire message type: a [`ValidatorMessage`] behind the
//! transport-agnostic [`WireCodec`] trait.
//!
//! `hh-net`'s TCP layer is generic over the payload codec (it knows
//! frames, not protocols); this newtype plugs the repo's canonical
//! CRC-framed codec in. The `Arc` lets a broadcast encode once and lets
//! received messages flow into `Validator::on_message` by reference
//! without a copy.

use hammerhead::ValidatorMessage;
use hh_net::tcp::WireCodec;
use hh_types::codec::{decode_framed, encode_framed};
use std::sync::Arc;

/// A validator message as it travels over TCP.
#[derive(Clone, Debug)]
pub struct WireMsg(pub Arc<ValidatorMessage>);

impl WireMsg {
    /// Wraps a message for sending.
    pub fn new(msg: ValidatorMessage) -> Self {
        WireMsg(Arc::new(msg))
    }
}

impl WireCodec for WireMsg {
    fn encode_frame(&self) -> Vec<u8> {
        encode_framed(self.0.as_ref())
    }

    fn decode_frame(bytes: &[u8]) -> Result<Self, String> {
        decode_framed::<ValidatorMessage>(bytes)
            .map(|m| WireMsg(Arc::new(m)))
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_types::Transaction;

    #[test]
    fn roundtrips_through_the_framed_codec() {
        let msg = WireMsg::new(ValidatorMessage::Submit(Transaction::new(7, 42, 1_000)));
        let bytes = msg.encode_frame();
        let back = WireMsg::decode_frame(&bytes).expect("decode");
        match back.0.as_ref() {
            ValidatorMessage::Submit(tx) => {
                assert_eq!(tx.id.client, 7);
                assert_eq!(tx.id.seq, 42);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn rejects_corrupt_frames() {
        let mut bytes = WireMsg::new(ValidatorMessage::Confirm {
            id: hh_types::TxId { client: 1, seq: 2 },
            executed_at: 3,
        })
        .encode_frame();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(WireMsg::decode_frame(&bytes).is_err());
    }
}
