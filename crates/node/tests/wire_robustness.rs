//! Wire robustness of the *real* node codec: hostile byte streams
//! against a `TcpTransport<WireMsg>` endpoint.
//!
//! `crates/net/tests/tcp_wire.rs` proves the framing layer survives
//! malicious peers with a toy codec; these tests close the gap to the
//! production stack — CRC-framed [`ValidatorMessage`]s — so a corrupt
//! or adversarial frame can never panic a peer thread or wedge a
//! validator.

use hammerhead::ValidatorMessage;
use hh_net::tcp::{write_frame, write_handshake, TcpConfig, TcpEvent, TcpTransport, WireCodec};
use hh_node::WireMsg;
use hh_types::Transaction;
use proptest::prelude::*;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn endpoint(id: u16) -> TcpTransport<WireMsg> {
    let bind: SocketAddr = "127.0.0.1:0".parse().unwrap();
    TcpTransport::start(TcpConfig::new(id, bind, Vec::new())).expect("bind")
}

fn submit_frame(client: u32, seq: u64) -> Vec<u8> {
    WireMsg::new(ValidatorMessage::Submit(Transaction::new(client, seq, 0))).encode_frame()
}

/// Sends one valid Submit and asserts it arrives — proof the endpoint
/// still serves honest clients after whatever abuse preceded the call.
fn assert_still_serving(t: &TcpTransport<WireMsg>, probe_id: u16) {
    let mut probe = TcpStream::connect(t.local_addr()).expect("probe connect");
    write_handshake(&mut probe, probe_id).unwrap();
    write_frame(&mut probe, &submit_frame(probe_id as u32, 1)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        match t.events().recv_timeout(Duration::from_millis(200)) {
            Ok(TcpEvent::Message { from, msg }) if from == probe_id => match msg.0.as_ref() {
                ValidatorMessage::Submit(tx) => {
                    assert_eq!(tx.id.client, probe_id as u32);
                    return;
                }
                other => panic!("probe decoded wrong message: {other:?}"),
            },
            Ok(_) => continue,
            Err(_) => continue,
        }
    }
    panic!("endpoint stopped serving honest traffic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any single bit flipped anywhere in a real Submit frame must be
    /// rejected by the CRC (or the decoder), counted, and must not
    /// disturb later honest traffic on a fresh connection.
    #[test]
    fn bit_flipped_validator_message_is_rejected(seq in any::<u64>(), bit in 0usize..8) {
        let t = endpoint(0);
        let mut frame = submit_frame(7, seq);
        let before = t.stats().snapshot().2;
        // Flip one bit in a byte chosen from the payload (every byte of a
        // Submit frame is CRC-covered).
        let idx = (seq as usize) % frame.len();
        frame[idx] ^= 1 << bit;

        let mut s = TcpStream::connect(t.local_addr()).unwrap();
        write_handshake(&mut s, 100).unwrap();
        write_frame(&mut s, &frame).unwrap();

        // Either the corruption is detected (counter ticks) or the flip
        // landed on a byte the decoder tolerates — but it must never
        // produce a different transaction silently *and* the endpoint
        // must keep serving.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let errs = t.stats().snapshot().2;
            if errs > before {
                break;
            }
            if let Ok(TcpEvent::Message { msg, .. }) =
                t.events().recv_timeout(Duration::from_millis(50))
            {
                // A frame that still decodes after a bit flip would be a
                // CRC collision — with CRC-32 on a short frame this means
                // the flip was undone by idx aliasing; the decoded tx
                // must then be byte-identical to the original.
                if let ValidatorMessage::Submit(tx) = msg.0.as_ref() {
                    prop_assert_eq!(tx.id.seq, seq);
                }
                break;
            }
            if std::time::Instant::now() > deadline {
                prop_assert!(false, "corrupt frame neither rejected nor decoded");
            }
        }
        assert_still_serving(&t, 200);
        t.shutdown();
    }

    /// Random garbage wrapped in a valid length prefix must be counted
    /// as a decode error without killing the acceptor.
    #[test]
    fn framed_garbage_is_rejected(payload in proptest::collection::vec(any::<u8>(), 1..256)) {
        let t = endpoint(0);
        let before = t.stats().snapshot().2;
        let mut s = TcpStream::connect(t.local_addr()).unwrap();
        write_handshake(&mut s, 100).unwrap();
        write_frame(&mut s, &payload).unwrap();
        let _ = s.flush();

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut rejected = false;
        while std::time::Instant::now() < deadline {
            if t.stats().snapshot().2 > before {
                rejected = true;
                break;
            }
            // An arbitrary byte string that round-trips the CRC *and*
            // decodes as a ValidatorMessage is possible but would have
            // to be a genuine encoding; accept it.
            if let Ok(TcpEvent::Message { .. }) =
                t.events().recv_timeout(Duration::from_millis(20))
            {
                rejected = true;
                break;
            }
        }
        prop_assert!(rejected, "garbage frame neither rejected nor decoded");
        assert_still_serving(&t, 200);
        t.shutdown();
    }
}

/// A truncated real frame (connection cut mid-message) must leave the
/// endpoint fully operational.
#[test]
fn truncated_validator_frame_is_harmless() {
    let t = endpoint(0);
    let frame = submit_frame(3, 9);
    {
        let mut s = TcpStream::connect(t.local_addr()).unwrap();
        write_handshake(&mut s, 100).unwrap();
        // Length prefix promises the full frame; deliver half and vanish.
        s.write_all(&(frame.len() as u32).to_be_bytes()).unwrap();
        s.write_all(&frame[..frame.len() / 2]).unwrap();
    }
    assert_still_serving(&t, 200);
    t.shutdown();
}

/// Two endpoints exchanging real validator messages both directions —
/// the positive control for this suite.
#[test]
fn validator_messages_flow_between_endpoints() {
    let a = endpoint(10);
    let b_bind: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let b = TcpTransport::<WireMsg>::start(TcpConfig::new(11, b_bind, vec![(10, a.local_addr())]))
        .expect("bind b");

    b.send(10, &WireMsg::new(ValidatorMessage::Submit(Transaction::new(1, 2, 3))));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match a.events().recv_timeout(Duration::from_millis(200)) {
            Ok(TcpEvent::Message { from, msg }) => {
                assert_eq!(from, 11);
                match msg.0.as_ref() {
                    ValidatorMessage::Submit(tx) => assert_eq!(tx.id.client, 1),
                    other => panic!("wrong message: {other:?}"),
                }
                break;
            }
            _ if std::time::Instant::now() > deadline => panic!("frame never arrived"),
            _ => continue,
        }
    }
    a.shutdown();
    b.shutdown();
}
