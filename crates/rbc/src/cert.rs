//! Availability certificates: quorum-stake signed acknowledgments.

use hh_crypto::Signature;
use hh_types::codec::{Decoder, Encode};
use hh_types::{Committee, Stake, TypeError, ValidatorId, VertexRef};
use std::fmt;

/// Domain-separation context for certificate acks.
pub(crate) const ACK_CONTEXT: &[u8] = b"hammerhead-ack-v1";

/// Why a certificate failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertificateError {
    /// An ack signer is not a committee member.
    UnknownSigner(ValidatorId),
    /// The same validator appears twice.
    DuplicateSigner(ValidatorId),
    /// An ack signature does not verify.
    BadSignature(ValidatorId),
    /// The combined signer stake is below quorum.
    InsufficientStake {
        /// Stake carried by the valid signers.
        have: Stake,
        /// The quorum threshold.
        need: Stake,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::UnknownSigner(v) => write!(f, "unknown signer {v}"),
            CertificateError::DuplicateSigner(v) => write!(f, "duplicate signer {v}"),
            CertificateError::BadSignature(v) => write!(f, "bad ack signature from {v}"),
            CertificateError::InsufficientStake { have, need } => {
                write!(f, "certificate stake {have} below quorum {need}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// A quorum of signed acks over one vertex.
///
/// With honest validators acking at most one header per `(round, author)`,
/// quorum intersection guarantees at most one certificate can form per
/// `(round, author)` — this is what rules out equivocation in
/// [`BroadcastMode::Certified`](crate::BroadcastMode::Certified).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    vertex: VertexRef,
    acks: Vec<(ValidatorId, Signature)>,
}

impl Certificate {
    /// Assembles a certificate from collected acks (sorted by signer for a
    /// canonical encoding).
    pub fn new(vertex: VertexRef, mut acks: Vec<(ValidatorId, Signature)>) -> Self {
        acks.sort_by_key(|(v, _)| *v);
        Certificate { vertex, acks }
    }

    /// The certified vertex.
    pub fn vertex(&self) -> VertexRef {
        self.vertex
    }

    /// The signers and their ack signatures.
    pub fn acks(&self) -> &[(ValidatorId, Signature)] {
        &self.acks
    }

    /// Verifies every ack and the quorum-stake requirement.
    ///
    /// # Errors
    ///
    /// Returns the first [`CertificateError`] encountered; a certificate
    /// failing any check must be discarded whole.
    pub fn verify(&self, committee: &Committee) -> Result<(), CertificateError> {
        let mut stake = Stake(0);
        let mut last: Option<ValidatorId> = None;
        for (signer, sig) in &self.acks {
            if last == Some(*signer) {
                return Err(CertificateError::DuplicateSigner(*signer));
            }
            last = Some(*signer);
            let info = committee
                .validator(*signer)
                .map_err(|_| CertificateError::UnknownSigner(*signer))?;
            if !info.public_key().verify(ACK_CONTEXT, self.vertex.digest.as_bytes(), sig) {
                return Err(CertificateError::BadSignature(*signer));
            }
            stake += info.stake();
        }
        if stake < committee.quorum_threshold() {
            return Err(CertificateError::InsufficientStake {
                have: stake,
                need: committee.quorum_threshold(),
            });
        }
        Ok(())
    }
}

impl Encode for Certificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.vertex.encode(buf);
        self.acks.encode(buf);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(Certificate {
            vertex: VertexRef::decode(d)?,
            acks: Vec::<(ValidatorId, Signature)>::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_types::codec::{decode_from_slice, encode_to_vec};
    use hh_types::{Block, Round, Vertex};

    fn setup() -> (Committee, VertexRef) {
        let committee = Committee::new_equal_stake(4);
        let v = Vertex::new(
            Round(0),
            ValidatorId(0),
            Block::empty(),
            vec![],
            &committee.keypair(ValidatorId(0)),
        );
        (committee, v.reference())
    }

    fn ack(committee: &Committee, vref: &VertexRef, id: u16) -> (ValidatorId, Signature) {
        let kp = committee.keypair(ValidatorId(id));
        (ValidatorId(id), kp.sign(ACK_CONTEXT, vref.digest.as_bytes()))
    }

    #[test]
    fn quorum_certificate_verifies() {
        let (c, vref) = setup();
        let acks = (0..3).map(|i| ack(&c, &vref, i)).collect();
        assert_eq!(Certificate::new(vref, acks).verify(&c), Ok(()));
    }

    #[test]
    fn sub_quorum_rejected() {
        let (c, vref) = setup();
        let acks = (0..2).map(|i| ack(&c, &vref, i)).collect();
        assert!(matches!(
            Certificate::new(vref, acks).verify(&c),
            Err(CertificateError::InsufficientStake { .. })
        ));
    }

    #[test]
    fn duplicate_signer_rejected() {
        let (c, vref) = setup();
        let a = ack(&c, &vref, 0);
        let acks = vec![a, a, ack(&c, &vref, 1)];
        assert!(matches!(
            Certificate::new(vref, acks).verify(&c),
            Err(CertificateError::DuplicateSigner(ValidatorId(0)))
        ));
    }

    #[test]
    fn forged_signature_rejected() {
        let (c, vref) = setup();
        // v2's "ack" signed with v3's key.
        let forged =
            (ValidatorId(2), c.keypair(ValidatorId(3)).sign(ACK_CONTEXT, vref.digest.as_bytes()));
        let acks = vec![ack(&c, &vref, 0), ack(&c, &vref, 1), forged];
        assert!(matches!(
            Certificate::new(vref, acks).verify(&c),
            Err(CertificateError::BadSignature(ValidatorId(2)))
        ));
    }

    #[test]
    fn unknown_signer_rejected() {
        let (c, vref) = setup();
        let stray = (
            ValidatorId(9),
            hh_crypto::Keypair::from_seed(9).sign(ACK_CONTEXT, vref.digest.as_bytes()),
        );
        let acks = vec![ack(&c, &vref, 0), ack(&c, &vref, 1), stray];
        assert!(matches!(
            Certificate::new(vref, acks).verify(&c),
            Err(CertificateError::UnknownSigner(ValidatorId(9)))
        ));
    }

    #[test]
    fn ack_for_other_vertex_rejected() {
        let (c, vref) = setup();
        let other = Vertex::new(
            Round(0),
            ValidatorId(1),
            Block::empty(),
            vec![],
            &c.keypair(ValidatorId(1)),
        )
        .reference();
        let mut acks: Vec<_> = (0..2).map(|i| ack(&c, &vref, i)).collect();
        acks.push(ack(&c, &other, 2)); // ack over the wrong digest
        assert!(matches!(
            Certificate::new(vref, acks).verify(&c),
            Err(CertificateError::BadSignature(ValidatorId(2)))
        ));
    }

    #[test]
    fn codec_roundtrip() {
        let (c, vref) = setup();
        let acks = (0..3).map(|i| ack(&c, &vref, i)).collect();
        let cert = Certificate::new(vref, acks);
        let back: Certificate = decode_from_slice(&encode_to_vec(&cert)).unwrap();
        assert_eq!(cert, back);
        assert_eq!(back.verify(&c), Ok(()));
    }

    #[test]
    fn weighted_stake_quorum() {
        // One whale (stake 7 of 10) plus one ack passes; whale alone passes
        // quorum = 2*10/3+1 = 7? 7 >= 7 yes — whale alone certifies.
        let committee = hh_types::CommitteeBuilder::new()
            .add(Stake(7))
            .add(Stake(1))
            .add(Stake(1))
            .add(Stake(1))
            .build()
            .unwrap();
        let v = Vertex::new(
            Round(0),
            ValidatorId(1),
            Block::empty(),
            vec![],
            &committee.keypair(ValidatorId(1)),
        );
        let vref = v.reference();
        let whale_ack = (
            ValidatorId(0),
            committee.keypair(ValidatorId(0)).sign(ACK_CONTEXT, vref.digest.as_bytes()),
        );
        assert_eq!(Certificate::new(vref, vec![whale_ack]).verify(&committee), Ok(()));
        // Three small validators (stake 3) do not.
        let smalls: Vec<_> = (1..4)
            .map(|i| {
                (
                    ValidatorId(i),
                    committee.keypair(ValidatorId(i)).sign(ACK_CONTEXT, vref.digest.as_bytes()),
                )
            })
            .collect();
        assert!(Certificate::new(vref, smalls).verify(&committee).is_err());
    }
}
