//! The broadcast layer state machine.

use crate::cert::{Certificate, ACK_CONTEXT};
use hh_crypto::{Digest, Keypair, Signature};
use hh_dag::{Dag, DagError, EquivocationEvidence, InsertOutcome};
use hh_types::codec::{Decoder, Encode, EncodeExt};
use hh_types::{Committee, DigestMap, Round, Stake, TypeError, ValidatorId, Vertex, VertexRef};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Maximum vertices returned per sync response (keeps messages bounded).
const SYNC_RESPONSE_CAP: usize = 128;

/// Maximum missing digests re-requested per tick. Bounds the burst a
/// single tick can put on the wire while a node digs out of heavy loss;
/// digests past the budget stay due and go out on following ticks.
const SYNC_RETRY_BUDGET: usize = 128;

/// Retries that keep the historical every-tick cadence before the
/// exponential backoff kicks in. Healthy runs resolve their sync
/// requests within a tick or two, so they never see the backoff at all.
const BACKOFF_EVERY_TICK_ATTEMPTS: u32 = 2;

/// Upper bound on the retry gap in ticks.
const BACKOFF_CAP_TICKS: u64 = 8;

/// Consecutive no-progress ticks before stall recovery kicks in. A
/// healthy network advances the DAG front well inside one sync tick, so
/// this path sends nothing there (existing runs stay bit-identical);
/// under heavy loss it is the self-healing floor — pull whole rounds
/// from a rotating peer and re-push our own front vertex.
const STALL_PULL_AFTER_TICKS: u64 = 3;

/// Maximum vertices buffered while awaiting ancestry.
const PENDING_CAP: usize = 10_000;

/// Rounds of lag — buffered front minus inserted front — beyond which
/// the node switches from backward parent-walking to bulk range sync.
/// Backward walking fetches one round per round trip, so a recovering
/// node with a long outage would lose the race against its peers' GC
/// horizon; whole-round pulls catch up orders of magnitude faster.
const CATCH_UP_GAP: u64 = 10;

/// Maximum vertices returned per range response (several whole rounds
/// per round trip at practical committee sizes).
const RANGE_RESPONSE_CAP: usize = 256;

/// Which reliable-broadcast instantiation to run (see crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BroadcastMode {
    /// Push + pull-based sync; sufficient under crash faults.
    BestEffort,
    /// Header → quorum acks → certificate; prevents equivocation.
    Certified,
}

/// Wire messages exchanged by the broadcast layer.
///
/// Vertex-carrying variants hold `Arc<Vertex>` so the fan-out,
/// delivery, and DAG-intake paths share one allocation: a broadcast to
/// n−1 peers bumps a refcount per hop instead of deep-copying the block
/// and parent list. The wire encoding is unchanged (an `Arc` encodes as
/// its payload).
#[derive(Clone, Debug)]
pub enum RbcMessage {
    /// Best-effort vertex push.
    Vertex(Arc<Vertex>),
    /// Certified mode: header proposal awaiting acks.
    Propose(Arc<Vertex>),
    /// Certified mode: signed acknowledgment of a proposal.
    Ack {
        /// The acknowledged vertex.
        vertex: VertexRef,
        /// Signature over the vertex digest under the ack context.
        sig: Signature,
    },
    /// Certified mode: a vertex together with its availability certificate.
    Certified(Arc<Vertex>, Certificate),
    /// Pull request for missing vertices by digest.
    SyncRequest(Vec<Digest>),
    /// Bulk pull of whole rounds starting at `from` — sent by a node
    /// that detects it is far behind the network front (crash-recovery
    /// catch-up). Answered with an ordinary [`RbcMessage::SyncResponse`].
    RangeRequest {
        /// First round wanted (the requester's inserted front).
        from: Round,
    },
    /// Response carrying vertices (with certificates in certified mode).
    SyncResponse(Vec<(Arc<Vertex>, Option<Certificate>)>),
}

/// The outputs of one layer invocation.
#[derive(Debug, Default)]
pub struct RbcEffects {
    /// Vertices newly *delivered*: inserted into the DAG with complete
    /// ancestry, in insertion order. Feed these to consensus.
    pub delivered: Vec<Arc<Vertex>>,
    /// Point-to-point messages to send.
    pub send: Vec<(ValidatorId, RbcMessage)>,
    /// Messages to broadcast to every other validator.
    pub broadcast: Vec<RbcMessage>,
    /// Equivocations witnessed during this invocation: a second distinct
    /// vertex (or header) for a `(round, author)` slot this node already
    /// holds. Raw observations — retransmits of the same twin reappear
    /// here; feed them to an `EvidenceLedger` for deduplicated counts.
    pub evidence: Vec<EquivocationEvidence>,
}

impl RbcEffects {
    fn merge(&mut self, other: RbcEffects) {
        self.delivered.extend(other.delivered);
        self.send.extend(other.send);
        self.broadcast.extend(other.broadcast);
        self.evidence.extend(other.evidence);
    }
}

impl Encode for RbcMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RbcMessage::Vertex(v) => {
                buf.put_u8(0);
                v.encode(buf);
            }
            RbcMessage::Propose(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            RbcMessage::Ack { vertex, sig } => {
                buf.put_u8(2);
                vertex.encode(buf);
                sig.encode(buf);
            }
            RbcMessage::Certified(v, cert) => {
                buf.put_u8(3);
                v.encode(buf);
                cert.encode(buf);
            }
            RbcMessage::SyncRequest(digests) => {
                buf.put_u8(4);
                digests.encode(buf);
            }
            RbcMessage::RangeRequest { from } => {
                buf.put_u8(5);
                from.encode(buf);
            }
            RbcMessage::SyncResponse(pairs) => {
                buf.put_u8(6);
                pairs.encode(buf);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(match d.take_u8()? {
            0 => RbcMessage::Vertex(Arc::new(Vertex::decode(d)?)),
            1 => RbcMessage::Propose(Arc::new(Vertex::decode(d)?)),
            2 => RbcMessage::Ack { vertex: VertexRef::decode(d)?, sig: Signature::decode(d)? },
            3 => RbcMessage::Certified(Arc::new(Vertex::decode(d)?), Certificate::decode(d)?),
            4 => RbcMessage::SyncRequest(Vec::decode(d)?),
            5 => RbcMessage::RangeRequest { from: Round::decode(d)? },
            6 => RbcMessage::SyncResponse(Vec::decode(d)?),
            _ => return Err(TypeError::Decode("invalid rbc message tag")),
        })
    }
}

/// Per-item retransmit state: how often we have re-asked for a missing
/// digest, and the earliest tick the next retry may go out.
#[derive(Clone, Copy, Debug)]
struct RetryState {
    attempts: u32,
    next_due_tick: u64,
}

/// Retry gap (in ticks) after `attempts` requests have gone out: the
/// first couple of retries fire every tick, then the gap doubles to
/// [`BACKOFF_CAP_TICKS`]. Heavy loss converges without a retry storm;
/// a healthy network never leaves the every-tick prefix.
fn backoff_ticks(attempts: u32) -> u64 {
    if attempts <= BACKOFF_EVERY_TICK_ATTEMPTS {
        1
    } else {
        let exp = u64::from(attempts - BACKOFF_EVERY_TICK_ATTEMPTS).min(63);
        (1u64 << exp.min(BACKOFF_CAP_TICKS.ilog2() as u64)).min(BACKOFF_CAP_TICKS)
    }
}

/// Deterministic per-digest jitter added to backed-off retries so
/// retransmits for different digests de-synchronize instead of bursting
/// on the same tick. Zero during the every-tick prefix.
fn jitter_ticks(digest: &Digest, attempts: u32, delay: u64) -> u64 {
    if attempts <= BACKOFF_EVERY_TICK_ATTEMPTS || delay < 2 {
        return 0;
    }
    let span = delay / 2 + 1;
    (digest.prefix_u64() >> 32).wrapping_add(u64::from(attempts)) % span
}

struct PendingProposal {
    vertex: Arc<Vertex>,
    acks: BTreeMap<ValidatorId, Signature>,
    certified: bool,
    /// Re-broadcast attempts so far (same backoff as sync retries).
    rebroadcasts: u32,
    /// Earliest tick of the next re-broadcast.
    next_due_tick: u64,
}

/// The reliable-broadcast state machine for one validator.
///
/// See the crate-level example for usage.
pub struct Rbc {
    committee: Committee,
    me: ValidatorId,
    keypair: Keypair,
    mode: BroadcastMode,
    /// Vertices validated but awaiting ancestry: digest → (vertex, cert).
    /// Digest-keyed maps here use the pass-through hasher — this layer
    /// does several lookups per delivered vertex.
    pending: DigestMap<Digest, (Arc<Vertex>, Option<Certificate>)>,
    /// missing parent digest → digests of pending children waiting on it.
    missing_index: DigestMap<Digest, Vec<Digest>>,
    /// pending child digest → number of parents still missing.
    missing_count: DigestMap<Digest, usize>,
    /// Outstanding sync requests: missing digest → retransmit state.
    requested: DigestMap<Digest, RetryState>,
    /// Certified mode, author side: my proposals collecting acks.
    proposals: BTreeMap<Round, PendingProposal>,
    /// Certified mode, voter side: first header acked per (round, author).
    acked: HashMap<(Round, ValidatorId), Digest>,
    /// Certificates for vertices we accepted (served in sync responses).
    certs: DigestMap<Digest, Certificate>,
    /// Statistics: equivocation attempts observed at this layer.
    equivocation_attempts: u64,
    /// Range-sync requests issued so far (rotates the target peer).
    catch_up_attempts: u64,
    /// Ticks observed (drives the retransmit backoff schedule).
    ticks: u64,
    /// Sync *re*-requests sent from `tick` (excludes the initial
    /// request issued when a gap is first discovered).
    sync_retransmits: u64,
    /// Proposal re-broadcasts sent from `tick`.
    proposal_rebroadcasts: u64,
    /// DAG front at the previous tick (stall detection).
    last_front: Round,
    /// Consecutive ticks the front has not advanced.
    stalled_ticks: u64,
    /// `stalled_ticks` threshold of the next stall-recovery pull.
    next_stall_pull: u64,
    /// Pulls fired within the current stall (drives its backoff).
    stall_attempts: u32,
    /// Stall-recovery pulls sent from `tick`, all time.
    stall_pulls: u64,
}

impl Rbc {
    /// Creates the layer for validator `me`.
    pub fn new(committee: Committee, me: ValidatorId, mode: BroadcastMode) -> Self {
        let keypair = committee.keypair(me);
        Rbc {
            committee,
            me,
            keypair,
            mode,
            pending: DigestMap::default(),
            missing_index: DigestMap::default(),
            missing_count: DigestMap::default(),
            requested: DigestMap::default(),
            proposals: BTreeMap::new(),
            acked: HashMap::new(),
            certs: DigestMap::default(),
            equivocation_attempts: 0,
            catch_up_attempts: 0,
            ticks: 0,
            sync_retransmits: 0,
            proposal_rebroadcasts: 0,
            last_front: Round(0),
            stalled_ticks: 0,
            next_stall_pull: STALL_PULL_AFTER_TICKS,
            stall_attempts: 0,
            stall_pulls: 0,
        }
    }

    /// The broadcast mode in force.
    pub fn mode(&self) -> BroadcastMode {
        self.mode
    }

    /// Number of vertices buffered awaiting ancestry.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Equivocation attempts observed (second distinct header per round).
    pub fn equivocation_attempts(&self) -> u64 {
        self.equivocation_attempts
    }

    /// Sync re-requests sent from `tick` (the initial request when a
    /// gap is discovered is not counted).
    pub fn sync_retransmits(&self) -> u64 {
        self.sync_retransmits
    }

    /// Uncertified-proposal re-broadcasts sent from `tick`.
    pub fn proposal_rebroadcasts(&self) -> u64 {
        self.proposal_rebroadcasts
    }

    /// Stall-recovery pulls sent from `tick`.
    pub fn stall_pulls(&self) -> u64 {
        self.stall_pulls
    }

    /// Total retransmissions: sync re-requests, proposal re-broadcasts
    /// and stall-recovery pulls. The retry-storm regression gate
    /// watches this.
    pub fn retransmits(&self) -> u64 {
        self.sync_retransmits + self.proposal_rebroadcasts + self.stall_pulls
    }

    /// Broadcasts this validator's own `vertex`.
    ///
    /// Best-effort mode delivers it locally at once; certified mode holds it
    /// until quorum acks arrive (self-ack included).
    ///
    /// # Panics
    ///
    /// Panics if the validator constructed a structurally invalid vertex for
    /// its own DAG — a local programming error, never a remote fault.
    pub fn broadcast_own(&mut self, vertex: Vertex, dag: &mut Dag) -> RbcEffects {
        // One allocation from here on: the local DAG, the delivered list
        // and the broadcast message all share this `Arc`.
        let vertex = Arc::new(vertex);
        let mut fx = RbcEffects::default();
        match self.mode {
            BroadcastMode::BestEffort => {
                match dag.try_insert_arc(vertex.clone()) {
                    Ok(_) => {}
                    Err(e) => panic!("own vertex rejected by local dag: {e}"),
                }
                fx.delivered.push(vertex.clone());
                fx.broadcast.push(RbcMessage::Vertex(vertex));
                // Our vertex may unblock buffered children (possible after
                // crash-recovery replays).
                let cascade = self.cascade_from(fx.delivered[0].digest(), dag);
                fx.merge(cascade);
            }
            BroadcastMode::Certified => {
                let round = vertex.round();
                let vref = vertex.reference();
                let self_sig = self.keypair.sign(ACK_CONTEXT, vref.digest.as_bytes());
                let mut acks = BTreeMap::new();
                acks.insert(self.me, self_sig);
                self.acked.insert((round, self.me), vref.digest);
                self.proposals.insert(
                    round,
                    PendingProposal {
                        vertex: vertex.clone(),
                        acks,
                        certified: false,
                        rebroadcasts: 0,
                        next_due_tick: 0,
                    },
                );
                fx.broadcast.push(RbcMessage::Propose(vertex));
                // Degenerate committees (or whales) may self-certify.
                let done = self.try_finalize_proposal(round, dag);
                fx.merge(done);
            }
        }
        fx
    }

    /// Processes an incoming broadcast-layer message from `from`.
    ///
    /// Borrows the message: vertex payloads are `Arc`'d, so the paths
    /// that keep one (DAG insert, pending buffer, delivery) bump its
    /// refcount rather than deep-copying — the caller can hand the same
    /// frame to this layer and still own it afterwards.
    pub fn handle(&mut self, from: ValidatorId, msg: &RbcMessage, dag: &mut Dag) -> RbcEffects {
        match msg {
            RbcMessage::Vertex(v) => {
                if self.mode != BroadcastMode::BestEffort {
                    return RbcEffects::default();
                }
                if !self.author_signature_ok(v) {
                    return RbcEffects::default();
                }
                self.accept(v.clone(), None, dag)
            }
            RbcMessage::Propose(v) => self.on_propose(v),
            RbcMessage::Ack { vertex, sig } => self.on_ack(from, *vertex, *sig, dag),
            RbcMessage::Certified(v, cert) => {
                if self.mode != BroadcastMode::Certified {
                    return RbcEffects::default();
                }
                if !self.author_signature_ok(v) || cert.vertex().digest != v.digest() {
                    return RbcEffects::default();
                }
                if cert.verify(&self.committee).is_err() {
                    return RbcEffects::default();
                }
                self.accept(v.clone(), Some(cert.clone()), dag)
            }
            RbcMessage::SyncRequest(digests) => self.on_sync_request(from, digests, dag),
            RbcMessage::RangeRequest { from: start } => self.on_range_request(from, *start, dag),
            RbcMessage::SyncResponse(pairs) => {
                let mut fx = RbcEffects::default();
                for (v, cert) in pairs {
                    if !self.author_signature_ok(v) {
                        continue;
                    }
                    match (self.mode, cert) {
                        (BroadcastMode::BestEffort, _) => {
                            fx.merge(self.accept(v.clone(), None, dag));
                        }
                        (BroadcastMode::Certified, Some(cert)) => {
                            if cert.vertex().digest == v.digest()
                                && cert.verify(&self.committee).is_ok()
                            {
                                fx.merge(self.accept(v.clone(), Some(cert.clone()), dag));
                            }
                        }
                        (BroadcastMode::Certified, None) => {}
                    }
                }
                fx
            }
        }
    }

    /// Periodic maintenance: re-request still-missing ancestry (per-item
    /// exponential backoff, rotating targets, bounded per-tick budget),
    /// re-broadcast own uncertified proposals on the same backoff, and
    /// prune state below the DAG's GC horizon. Call every few hundred
    /// milliseconds.
    pub fn tick(&mut self, dag: &Dag) -> RbcEffects {
        let mut fx = RbcEffects::default();
        self.ticks += 1;
        let now = self.ticks;
        // Re-request due missing digests from a rotating peer. `requested`
        // is a hash map, so its iteration order is arbitrary — the explicit
        // sort below is what makes retry batches deterministic. Digests
        // past the per-tick budget stay due and drain on later ticks.
        let me = self.me;
        let n = self.committee.size() as u64;
        let mut by_peer: BTreeMap<ValidatorId, Vec<Digest>> = BTreeMap::new();
        let mut due: Vec<Digest> = self
            .requested
            .iter()
            .filter(|(_, s)| s.next_due_tick <= now)
            .map(|(d, _)| *d)
            .collect();
        due.sort();
        due.truncate(SYNC_RETRY_BUDGET);
        for digest in due {
            let state = self.requested.get_mut(&digest).expect("present");
            state.attempts += 1;
            let delay = backoff_ticks(state.attempts);
            state.next_due_tick = now + delay + jitter_ticks(&digest, state.attempts, delay);
            self.sync_retransmits += 1;
            let peer = rotate_peer(me, n, &digest, state.attempts);
            by_peer.entry(peer).or_default().push(digest);
        }
        for (peer, digests) in by_peer {
            fx.send.push((peer, RbcMessage::SyncRequest(digests)));
        }
        // Bulk catch-up: buffered vertices far above the inserted front
        // mean we are recovering from an outage. Backward parent-walking
        // would fetch one round per round trip and lose the race against
        // the peers' advancing GC horizon, so pull whole rounds from a
        // rotating peer until the gap closes.
        let front = dag.highest_round().unwrap_or(Round(0));
        let buffered_front = self.pending.iter().map(|(_, (v, _))| v.round().0).max().unwrap_or(0);
        if buffered_front > front.0 + CATCH_UP_GAP {
            self.catch_up_attempts += 1;
            let mut idx = (me.0 as u64 + self.catch_up_attempts) % n;
            if idx == me.0 as u64 {
                idx = (idx + 1) % n;
            }
            fx.send.push((ValidatorId(idx as u16), RbcMessage::RangeRequest { from: front }));
        }

        // Stall recovery: a lossy network can strand the whole committee
        // with nothing buffered and nothing requested — every copy of a
        // round's vertices died on the wire, so no reference ever names
        // them and the pull-by-digest path above has nothing to pull.
        // When the front stops advancing, fetch whole rounds from a
        // rotating peer and re-push our own front vertex (peers may have
        // lost every copy of it), backing off while the stall persists.
        if front == self.last_front {
            self.stalled_ticks += 1;
        } else {
            self.last_front = front;
            self.stalled_ticks = 0;
            self.stall_attempts = 0;
            self.next_stall_pull = STALL_PULL_AFTER_TICKS;
        }
        if self.stalled_ticks >= self.next_stall_pull {
            self.stall_attempts += 1;
            self.next_stall_pull = self.stalled_ticks + backoff_ticks(self.stall_attempts);
            self.stall_pulls += 1;
            let mut idx = (me.0 as u64 + self.stall_pulls) % n;
            if idx == me.0 as u64 {
                idx = (idx + 1) % n;
            }
            fx.send.push((ValidatorId(idx as u16), RbcMessage::RangeRequest { from: front }));
            if let Some(mine) = dag.round_vertices(front).find(|v| v.author() == me).cloned() {
                match self.mode {
                    BroadcastMode::BestEffort => fx.broadcast.push(RbcMessage::Vertex(mine)),
                    // Certified mode: a vertex in our DAG carries a
                    // certificate; re-push it so peers can accept
                    // without a fresh ack round. (Uncertified proposals
                    // are re-pushed by the loop below.)
                    BroadcastMode::Certified => {
                        if let Some(cert) = self.certs.get(&mine.digest()).cloned() {
                            fx.broadcast.push(RbcMessage::Certified(mine, cert));
                        }
                    }
                }
            }
        }

        // Re-broadcast uncertified proposals (pre-GST losses) on the
        // same backoff schedule as sync retries.
        for p in self.proposals.values_mut() {
            if !p.certified && p.next_due_tick <= now {
                p.rebroadcasts += 1;
                p.next_due_tick = now + backoff_ticks(p.rebroadcasts);
                self.proposal_rebroadcasts += 1;
                fx.broadcast.push(RbcMessage::Propose(p.vertex.clone()));
            }
        }
        // Prune below GC.
        let gc = dag.gc_round();
        self.acked.retain(|(round, _), _| *round >= gc);
        self.proposals.retain(|round, _| *round >= gc);
        self.certs.retain(|d, _| dag.contains(d));
        let stale: Vec<Digest> =
            self.pending.iter().filter(|(_, (v, _))| v.round() < gc).map(|(d, _)| *d).collect();
        for d in stale {
            self.drop_pending(&d);
        }
        fx
    }

    fn author_signature_ok(&self, v: &Vertex) -> bool {
        match self.committee.validator(v.author()) {
            Ok(info) => v.verify(info.public_key()),
            Err(_) => false,
        }
    }

    fn on_propose(&mut self, v: &Arc<Vertex>) -> RbcEffects {
        let mut fx = RbcEffects::default();
        if self.mode != BroadcastMode::Certified || !self.author_signature_ok(v) {
            return fx;
        }
        let key = (v.round(), v.author());
        match self.acked.get(&key) {
            Some(prev) if *prev != v.digest() => {
                // Second distinct header this round: equivocation attempt.
                self.equivocation_attempts += 1;
                fx.evidence.push(EquivocationEvidence {
                    round: v.round(),
                    author: v.author(),
                    stored: *prev,
                    offending: v.digest(),
                });
                return fx;
            }
            _ => {}
        }
        self.acked.insert(key, v.digest());
        let sig = self.keypair.sign(ACK_CONTEXT, v.digest().as_bytes());
        fx.send.push((v.author(), RbcMessage::Ack { vertex: v.reference(), sig }));
        fx
    }

    fn on_ack(
        &mut self,
        from: ValidatorId,
        vref: VertexRef,
        sig: Signature,
        dag: &mut Dag,
    ) -> RbcEffects {
        if self.mode != BroadcastMode::Certified {
            return RbcEffects::default();
        }
        let Ok(info) = self.committee.validator(from) else {
            return RbcEffects::default();
        };
        if !info.public_key().verify(ACK_CONTEXT, vref.digest.as_bytes(), &sig) {
            return RbcEffects::default();
        }
        let Some(p) = self.proposals.get_mut(&vref.round) else {
            return RbcEffects::default();
        };
        if p.certified || p.vertex.digest() != vref.digest {
            return RbcEffects::default();
        }
        p.acks.insert(from, sig);
        self.try_finalize_proposal(vref.round, dag)
    }

    /// If the proposal for `round` has quorum acks, certify, deliver
    /// locally, and broadcast.
    fn try_finalize_proposal(&mut self, round: Round, dag: &mut Dag) -> RbcEffects {
        let mut fx = RbcEffects::default();
        let Some(p) = self.proposals.get_mut(&round) else {
            return fx;
        };
        if p.certified {
            return fx;
        }
        let stake: Stake = p.acks.keys().map(|v| self.committee.stake_of(*v)).sum();
        if stake < self.committee.quorum_threshold() {
            return fx;
        }
        p.certified = true;
        let vertex = p.vertex.clone();
        let cert =
            Certificate::new(vertex.reference(), p.acks.iter().map(|(v, s)| (*v, *s)).collect());
        debug_assert!(cert.verify(&self.committee).is_ok());
        fx.broadcast.push(RbcMessage::Certified(vertex.clone(), cert.clone()));
        fx.merge(self.accept(vertex, Some(cert), dag));
        fx
    }

    /// Validated-vertex intake: insert, or buffer + request missing
    /// ancestry. Cascades over buffered children on success. The
    /// `Arc` travels untouched: inserted into the DAG and pushed to
    /// `delivered` as refcount bumps, never re-allocated.
    fn accept(
        &mut self,
        vertex: Arc<Vertex>,
        cert: Option<Certificate>,
        dag: &mut Dag,
    ) -> RbcEffects {
        let mut fx = RbcEffects::default();
        let mut queue: VecDeque<(Arc<Vertex>, Option<Certificate>)> = VecDeque::new();
        queue.push_back((vertex, cert));

        while let Some((v, cert)) = queue.pop_front() {
            let digest = v.digest();
            let author = v.author();
            match dag.try_insert_arc(v.clone()) {
                Ok(InsertOutcome::Inserted) => {
                    if let Some(c) = cert {
                        self.certs.insert(digest, c);
                    }
                    self.requested.remove(&digest);
                    fx.delivered.push(v);
                    // Unblock children waiting on this digest.
                    if let Some(children) = self.missing_index.remove(&digest) {
                        for child in children {
                            let ready = match self.missing_count.get_mut(&child) {
                                Some(count) => {
                                    *count = count.saturating_sub(1);
                                    *count == 0
                                }
                                None => false,
                            };
                            if ready {
                                self.missing_count.remove(&child);
                                if let Some((cv, ccert)) = self.pending.remove(&child) {
                                    queue.push_back((cv, ccert));
                                }
                            }
                        }
                    }
                }
                Ok(InsertOutcome::AlreadyPresent) => {
                    self.requested.remove(&digest);
                }
                Err(DagError::MissingParents(missing)) => {
                    if self.pending.len() >= PENDING_CAP {
                        self.evict_one_pending();
                    }
                    if self.pending.contains_key(&digest) {
                        continue;
                    }
                    self.pending.insert(digest, (v, cert));
                    self.missing_count.insert(digest, missing.len());
                    let mut to_request = Vec::new();
                    for m in &missing {
                        self.missing_index.entry(*m).or_default().push(digest);
                        if !self.requested.contains_key(m) && !self.pending.contains_key(m) {
                            self.requested.insert(*m, RetryState { attempts: 0, next_due_tick: 0 });
                            to_request.push(*m);
                        }
                    }
                    if !to_request.is_empty() {
                        // First ask the child's author: Claim 1 guarantees
                        // it holds the full ancestry.
                        fx.send.push((author, RbcMessage::SyncRequest(to_request)));
                    }
                }
                Err(DagError::Equivocation { .. }) => {
                    self.equivocation_attempts += 1;
                    if let Some(stored) = dag.vertex_by_author(v.round(), author) {
                        fx.evidence.push(EquivocationEvidence {
                            round: v.round(),
                            author,
                            stored: stored.digest(),
                            offending: digest,
                        });
                    }
                }
                Err(_) => {
                    // Structurally invalid or below GC: drop.
                }
            }
        }
        fx
    }

    /// Re-run the cascade as if `digest` was just inserted (used after
    /// crash-recovery replay inserts vertices directly into the DAG).
    fn cascade_from(&mut self, digest: Digest, dag: &mut Dag) -> RbcEffects {
        let mut fx = RbcEffects::default();
        if let Some(children) = self.missing_index.remove(&digest) {
            for child in children {
                let ready = match self.missing_count.get_mut(&child) {
                    Some(count) => {
                        *count = count.saturating_sub(1);
                        *count == 0
                    }
                    None => false,
                };
                if ready {
                    self.missing_count.remove(&child);
                    if let Some((cv, ccert)) = self.pending.remove(&child) {
                        fx.merge(self.accept(cv, ccert, dag));
                    }
                }
            }
        }
        fx
    }

    fn on_sync_request(&self, from: ValidatorId, digests: &[Digest], dag: &Dag) -> RbcEffects {
        let mut fx = RbcEffects::default();
        let mut found: Vec<(Arc<Vertex>, Option<Certificate>)> = Vec::new();
        for d in digests.iter().take(SYNC_RESPONSE_CAP) {
            if let Some(v) = dag.get(d) {
                let cert = self.certs.get(d).cloned();
                if self.mode == BroadcastMode::Certified && cert.is_none() {
                    continue; // cannot prove availability without the cert
                }
                found.push((v.clone(), cert));
            }
        }
        if !found.is_empty() {
            // Parents first, so the receiver can insert without buffering.
            found.sort_by_key(|(v, _)| v.round());
            fx.send.push((from, RbcMessage::SyncResponse(found)));
        }
        fx
    }

    /// Serves a bulk catch-up request: whole rounds from `start` upward
    /// (ascending round, ascending author — the author-indexed slot
    /// order), as many as fit in one response. The requester re-issues
    /// from its new front on its next tick until the gap closes.
    ///
    /// A responder that has already garbage-collected past `start`
    /// cannot help: serving its retained suffix would hand the requester
    /// vertices whose ancestry no longer exists anywhere, so it declines
    /// (empty response) and the requester's rotation tries other peers.
    /// An outage long enough that *every* peer has GC'd the requester's
    /// front is unrecoverable by replay — that needs checkpoint/state
    /// sync (a ROADMAP item), not a deeper backfill.
    fn on_range_request(&self, from: ValidatorId, start: Round, dag: &Dag) -> RbcEffects {
        let mut fx = RbcEffects::default();
        if start < dag.gc_round() {
            return fx;
        }
        let mut found: Vec<(Arc<Vertex>, Option<Certificate>)> = Vec::new();
        let top = dag.highest_round().unwrap_or(Round(0));
        let mut round = start;
        while round <= top && found.len() < RANGE_RESPONSE_CAP {
            for v in dag.round_vertices(round) {
                let cert = self.certs.get(&v.digest()).cloned();
                if self.mode == BroadcastMode::Certified && cert.is_none() {
                    continue; // cannot prove availability without the cert
                }
                found.push((v.clone(), cert));
                if found.len() >= RANGE_RESPONSE_CAP {
                    break;
                }
            }
            round = round.next();
        }
        if !found.is_empty() {
            fx.send.push((from, RbcMessage::SyncResponse(found)));
        }
        fx
    }

    fn evict_one_pending(&mut self) {
        if let Some(victim) =
            self.pending.iter().min_by_key(|(_, (v, _))| v.round()).map(|(d, _)| *d)
        {
            self.drop_pending(&victim);
        }
    }

    fn drop_pending(&mut self, digest: &Digest) {
        self.pending.remove(digest);
        self.missing_count.remove(digest);
        for waiters in self.missing_index.values_mut() {
            waiters.retain(|d| d != digest);
        }
        self.missing_index.retain(|_, w| !w.is_empty());
    }
}

/// Deterministic retry-target rotation for sync requests, seeded by the
/// missing digest so different validators probe different peers.
fn rotate_peer(me: ValidatorId, n: u64, digest: &Digest, attempts: u32) -> ValidatorId {
    let mut idx = (digest.prefix_u64().wrapping_add(attempts as u64)) % n;
    if idx == me.0 as u64 {
        idx = (idx + 1) % n;
    }
    ValidatorId(idx as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_types::Block;

    fn committee4() -> Committee {
        Committee::new_equal_stake(4)
    }

    fn make_vertex(c: &Committee, round: u64, author: u16, parents: Vec<Digest>) -> Vertex {
        Vertex::new(
            Round(round),
            ValidatorId(author),
            Block::empty(),
            parents,
            &c.keypair(ValidatorId(author)),
        )
    }

    /// Builds one node's (rbc, dag) pair.
    fn node(c: &Committee, id: u16, mode: BroadcastMode) -> (Rbc, Dag) {
        (Rbc::new(c.clone(), ValidatorId(id), mode), Dag::new(c.clone()))
    }

    #[test]
    fn best_effort_push_delivers() {
        let c = committee4();
        let (mut rbc0, mut dag0) = node(&c, 0, BroadcastMode::BestEffort);
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::BestEffort);

        let v = make_vertex(&c, 0, 0, vec![]);
        let fx = rbc0.broadcast_own(v.clone(), &mut dag0);
        assert_eq!(fx.delivered.len(), 1);
        assert_eq!(fx.broadcast.len(), 1);

        let fx1 = rbc1.handle(ValidatorId(0), &fx.broadcast[0], &mut dag1);
        assert_eq!(fx1.delivered.len(), 1);
        assert!(dag1.contains(&v.digest()));
    }

    /// Inserts fully-connected rounds `0..rounds` into `dag`.
    fn fill_rounds(c: &Committee, dag: &mut Dag, rounds: u64) {
        let mut parents: Vec<Digest> = Vec::new();
        for r in 0..rounds {
            let vertices: Vec<Vertex> =
                (0..c.size() as u16).map(|a| make_vertex(c, r, a, parents.clone())).collect();
            parents = vertices.iter().map(|v| v.digest()).collect();
            for v in vertices {
                dag.try_insert(v).unwrap();
            }
        }
    }

    #[test]
    fn far_behind_node_range_syncs_to_the_front() {
        // An up-to-date peer holds 30 rounds; the recovering node holds 5
        // and then sees a front-round broadcast. Backward parent-walking
        // would need ~25 round trips; the tick must instead issue one
        // RangeRequest, and the peer's single response must close the gap.
        let c = committee4();
        let (mut ahead, mut dag_ahead) = node(&c, 0, BroadcastMode::BestEffort);
        let (mut behind, mut dag_behind) = node(&c, 1, BroadcastMode::BestEffort);
        fill_rounds(&c, &mut dag_ahead, 30);
        fill_rounds(&c, &mut dag_behind, 5);

        // A current broadcast arrives: buffered, far above the front.
        let front_vertex = dag_ahead
            .vertex_by_author(Round(29), ValidatorId(0))
            .expect("front vertex")
            .as_ref()
            .clone();
        behind.handle(
            ValidatorId(0),
            &RbcMessage::Vertex(Arc::new(front_vertex.clone())),
            &mut dag_behind,
        );
        assert!(!dag_behind.contains(&front_vertex.digest()), "buffered, not inserted");

        // Tick detects the gap and asks a peer for whole rounds.
        let fx = behind.tick(&dag_behind);
        let request = fx
            .send
            .iter()
            .find(|(_, m)| matches!(m, RbcMessage::RangeRequest { .. }))
            .expect("gap triggers a range request");
        let (peer, request) = (request.0, request.1.clone());
        assert_eq!(request_round(&request), Round(4), "requests from the inserted front");
        assert_eq!(peer, ValidatorId(2), "deterministic peer rotation (me + attempts)");

        // The peer answers with whole rounds; the gap closes in one hop
        // and the buffered front vertex delivers.
        let response = ahead.handle(ValidatorId(1), &request, &mut dag_ahead);
        let (_, reply) = response.send.into_iter().next().expect("peer responds");
        let fx = behind.handle(ValidatorId(0), &reply, &mut dag_behind);
        assert!(!fx.delivered.is_empty());
        assert_eq!(dag_behind.highest_round(), Some(Round(29)));
        assert!(dag_behind.contains(&front_vertex.digest()));

        // Once caught up, ticks stop range-requesting.
        let fx = behind.tick(&dag_behind);
        assert!(
            !fx.send.iter().any(|(_, m)| matches!(m, RbcMessage::RangeRequest { .. })),
            "no gap, no range sync"
        );
    }

    fn request_round(msg: &RbcMessage) -> Round {
        match msg {
            RbcMessage::RangeRequest { from } => *from,
            other => panic!("not a range request: {other:?}"),
        }
    }

    #[test]
    fn small_lag_does_not_range_sync() {
        // Ordinary operation buffers vertices a round or two ahead; that
        // must keep using targeted parent requests, not bulk pulls.
        let c = committee4();
        let (mut behind, mut dag_behind) = node(&c, 1, BroadcastMode::BestEffort);
        let (_, mut dag_ahead) = node(&c, 0, BroadcastMode::BestEffort);
        fill_rounds(&c, &mut dag_ahead, 8);
        fill_rounds(&c, &mut dag_behind, 5);
        let near = dag_ahead
            .vertex_by_author(Round(6), ValidatorId(0))
            .expect("near vertex")
            .as_ref()
            .clone();
        behind.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(near)), &mut dag_behind);
        let fx = behind.tick(&dag_behind);
        assert!(
            !fx.send.iter().any(|(_, m)| matches!(m, RbcMessage::RangeRequest { .. })),
            "a 2-round lag stays on the targeted sync path"
        );
    }

    #[test]
    fn tampered_vertex_rejected() {
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::BestEffort);
        // Signed with the wrong key: author claims v0 but signs with v2.
        let forged = Vertex::new(
            Round(0),
            ValidatorId(0),
            Block::empty(),
            vec![],
            &c.keypair(ValidatorId(2)),
        );
        let fx = rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(forged)), &mut dag1);
        assert!(fx.delivered.is_empty());
        assert!(dag1.is_empty());
    }

    #[test]
    fn missing_ancestry_buffers_and_requests() {
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::BestEffort);

        // Build rounds 0-1 externally.
        let genesis: Vec<Vertex> = (0..4).map(|i| make_vertex(&c, 0, i, vec![])).collect();
        let parents: Vec<Digest> = genesis.iter().map(|v| v.digest()).collect();
        let child = make_vertex(&c, 1, 0, parents.clone());

        // Child arrives before its parents.
        let fx =
            rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(child.clone())), &mut dag1);
        assert!(fx.delivered.is_empty());
        assert_eq!(rbc1.pending_len(), 1);
        // A sync request went to the child's author.
        assert!(matches!(
            &fx.send[..],
            [(ValidatorId(0), RbcMessage::SyncRequest(missing))] if missing.len() == 4
        ));

        // Parents arrive (out of order); child cascades in at the end.
        let mut delivered = 0;
        for g in genesis.iter().rev() {
            let fx =
                rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(g.clone())), &mut dag1);
            delivered += fx.delivered.len();
        }
        assert_eq!(delivered, 5, "4 parents + cascaded child");
        assert!(dag1.contains(&child.digest()));
        assert_eq!(rbc1.pending_len(), 0);
    }

    #[test]
    fn sync_request_answered_parents_first() {
        let c = committee4();
        let (mut rbc0, mut dag0) = node(&c, 0, BroadcastMode::BestEffort);
        let genesis: Vec<Vertex> = (0..4).map(|i| make_vertex(&c, 0, i, vec![])).collect();
        for g in &genesis {
            rbc0.handle(
                ValidatorId(g.author().0),
                &RbcMessage::Vertex(Arc::new(g.clone())),
                &mut dag0,
            );
        }
        let parents: Vec<Digest> = genesis.iter().map(|v| v.digest()).collect();
        let child = make_vertex(&c, 1, 0, parents.clone());
        rbc0.broadcast_own(child.clone(), &mut dag0);

        let mut wanted = vec![child.digest()];
        wanted.extend(parents.clone());
        let fx = rbc0.handle(ValidatorId(2), &RbcMessage::SyncRequest(wanted), &mut dag0);
        match &fx.send[..] {
            [(ValidatorId(2), RbcMessage::SyncResponse(pairs))] => {
                assert_eq!(pairs.len(), 5);
                // Rounds ascend, so a receiver can insert directly.
                let rounds: Vec<u64> = pairs.iter().map(|(v, _)| v.round().0).collect();
                let mut sorted = rounds.clone();
                sorted.sort();
                assert_eq!(rounds, sorted);
            }
            other => panic!("unexpected effects {other:?}"),
        }
    }

    #[test]
    fn certified_flow_produces_certificate() {
        let c = committee4();
        let (mut rbc0, mut dag0) = node(&c, 0, BroadcastMode::Certified);
        let v = make_vertex(&c, 0, 0, vec![]);
        let fx = rbc0.broadcast_own(v.clone(), &mut dag0);
        // Not yet certified: only a proposal went out.
        assert!(fx.delivered.is_empty());
        assert!(matches!(&fx.broadcast[..], [RbcMessage::Propose(_)]));

        // Voters 1 and 2 ack.
        let mut acks = Vec::new();
        for i in 1..=2u16 {
            let (mut rbc_i, mut dag_i) = node(&c, i, BroadcastMode::Certified);
            let fx_i = rbc_i.handle(ValidatorId(0), &fx.broadcast[0], &mut dag_i);
            assert_eq!(fx_i.send.len(), 1);
            acks.push(fx_i.send[0].1.clone());
        }

        // First ack: still below quorum (self + 1 = 2 < 3).
        let fx1 = rbc0.handle(ValidatorId(1), &acks[0], &mut dag0);
        assert!(fx1.delivered.is_empty());
        // Second ack: quorum reached; vertex delivered + Certified broadcast.
        let fx2 = rbc0.handle(ValidatorId(2), &acks[1], &mut dag0);
        assert_eq!(fx2.delivered.len(), 1);
        let certified = fx2
            .broadcast
            .iter()
            .find(|m| matches!(m, RbcMessage::Certified(_, _)))
            .expect("certified broadcast");

        // A fourth node accepts the certified vertex directly.
        let (mut rbc3, mut dag3) = node(&c, 3, BroadcastMode::Certified);
        let fx3 = rbc3.handle(ValidatorId(0), certified, &mut dag3);
        assert_eq!(fx3.delivered.len(), 1);
        assert!(dag3.contains(&v.digest()));
    }

    #[test]
    fn certified_mode_blocks_equivocation() {
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::Certified);
        let v_a = make_vertex(&c, 0, 0, vec![]);
        let v_b = Vertex::new(
            Round(0),
            ValidatorId(0),
            Block::new(vec![hh_types::Transaction::new(9, 9, 9)]),
            vec![],
            &c.keypair(ValidatorId(0)),
        );
        assert_ne!(v_a.digest(), v_b.digest());

        let fx_a =
            rbc1.handle(ValidatorId(0), &RbcMessage::Propose(Arc::new(v_a.clone())), &mut dag1);
        assert_eq!(fx_a.send.len(), 1, "first header acked");
        let fx_b =
            rbc1.handle(ValidatorId(0), &RbcMessage::Propose(Arc::new(v_b.clone())), &mut dag1);
        assert!(fx_b.send.is_empty(), "second distinct header refused");
        assert_eq!(rbc1.equivocation_attempts(), 1);
        // The refusal carries evidence naming both headers.
        assert_eq!(
            fx_b.evidence,
            vec![EquivocationEvidence {
                round: Round(0),
                author: ValidatorId(0),
                stored: v_a.digest(),
                offending: v_b.digest(),
            }]
        );
        // Re-proposing the same first header is fine (retransmission).
        let fx_a2 = rbc1.handle(ValidatorId(0), &RbcMessage::Propose(Arc::new(v_a)), &mut dag1);
        assert_eq!(fx_a2.send.len(), 1);
        assert!(fx_a2.evidence.is_empty());
    }

    #[test]
    fn best_effort_twin_push_surfaces_evidence() {
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::BestEffort);
        let v_a = make_vertex(&c, 0, 0, vec![]);
        let v_b = Vertex::new(
            Round(0),
            ValidatorId(0),
            Block::new(vec![hh_types::Transaction::new(9, 9, 9)]),
            vec![],
            &c.keypair(ValidatorId(0)),
        );
        let fx_a =
            rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(v_a.clone())), &mut dag1);
        assert_eq!(fx_a.delivered.len(), 1);
        assert!(fx_a.evidence.is_empty());
        // A twin push is rejected by the DAG and surfaced as evidence —
        // every time it is retransmitted (deduplication is the ledger's job).
        for _ in 0..2 {
            let fx_b =
                rbc1.handle(ValidatorId(2), &RbcMessage::Vertex(Arc::new(v_b.clone())), &mut dag1);
            assert!(fx_b.delivered.is_empty());
            assert_eq!(
                fx_b.evidence,
                vec![EquivocationEvidence {
                    round: Round(0),
                    author: ValidatorId(0),
                    stored: v_a.digest(),
                    offending: v_b.digest(),
                }]
            );
        }
    }

    #[test]
    fn uncertified_vertex_push_ignored_in_certified_mode() {
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::Certified);
        let v = make_vertex(&c, 0, 0, vec![]);
        let fx = rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(v)), &mut dag1);
        assert!(fx.delivered.is_empty());
        assert!(dag1.is_empty());
    }

    #[test]
    fn forged_ack_ignored() {
        let c = committee4();
        let (mut rbc0, mut dag0) = node(&c, 0, BroadcastMode::Certified);
        let v = make_vertex(&c, 0, 0, vec![]);
        rbc0.broadcast_own(v.clone(), &mut dag0);
        // Ack "from v1" signed by v3's key.
        let bad_sig = c.keypair(ValidatorId(3)).sign(ACK_CONTEXT, v.digest().as_bytes());
        let fx = rbc0.handle(
            ValidatorId(1),
            &RbcMessage::Ack { vertex: v.reference(), sig: bad_sig },
            &mut dag0,
        );
        assert!(fx.delivered.is_empty());
        // Legit acks from v1 and v2 still certify (forgery left no trace).
        for i in 1..=2u16 {
            let sig = c.keypair(ValidatorId(i)).sign(ACK_CONTEXT, v.digest().as_bytes());
            rbc0.handle(ValidatorId(i), &RbcMessage::Ack { vertex: v.reference(), sig }, &mut dag0);
        }
        assert!(dag0.contains(&v.digest()));
    }

    #[test]
    fn integrity_no_double_delivery() {
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::BestEffort);
        let v = make_vertex(&c, 0, 0, vec![]);
        let fx1 = rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(v.clone())), &mut dag1);
        let fx2 = rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(v.clone())), &mut dag1);
        assert_eq!(fx1.delivered.len(), 1);
        assert!(fx2.delivered.is_empty(), "duplicate push must not re-deliver");
    }

    #[test]
    fn tick_rerequests_missing_from_rotating_peers() {
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::BestEffort);
        let genesis: Vec<Vertex> = (0..4).map(|i| make_vertex(&c, 0, i, vec![])).collect();
        let parents: Vec<Digest> = genesis.iter().map(|v| v.digest()).collect();
        let child = make_vertex(&c, 1, 0, parents);
        rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(child)), &mut dag1);

        let mut peers = std::collections::HashSet::new();
        for _ in 0..6 {
            let fx = rbc1.tick(&dag1);
            for (peer, msg) in fx.send {
                assert_ne!(peer, ValidatorId(1), "never sync from self");
                match msg {
                    RbcMessage::SyncRequest(_) => {
                        peers.insert(peer);
                    }
                    // The front never advances here, so stall-recovery
                    // pulls ride along; they have their own test.
                    RbcMessage::RangeRequest { .. } => {}
                    _ => panic!("unexpected tick message"),
                }
            }
        }
        assert!(peers.len() > 1, "targets rotate: {peers:?}");
    }

    #[test]
    fn stalled_front_pulls_whole_rounds_with_backoff() {
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::BestEffort);
        // Quiet before the stall threshold: a healthy network never sees
        // this path, which is what keeps existing runs bit-identical.
        for _ in 0..STALL_PULL_AFTER_TICKS - 1 {
            let fx = rbc1.tick(&dag1);
            assert!(fx.send.is_empty() && fx.broadcast.is_empty(), "quiet before the threshold");
        }
        // Then pulls fire: rotating targets, exponential backoff.
        let mut pulls = 0u64;
        let mut peers = std::collections::HashSet::new();
        for _ in 0..30 {
            let fx = rbc1.tick(&dag1);
            for (peer, msg) in fx.send {
                assert!(matches!(msg, RbcMessage::RangeRequest { .. }));
                assert_ne!(peer, ValidatorId(1), "never pull from self");
                peers.insert(peer);
                pulls += 1;
            }
        }
        assert_eq!(pulls, rbc1.stall_pulls());
        assert!((4..=10).contains(&pulls), "backed off, not storming: {pulls}");
        assert!(peers.len() > 1, "targets rotate: {peers:?}");

        // Progress resets the stall machinery.
        let genesis: Vec<Vertex> = (0..4).map(|i| make_vertex(&c, 0, i, vec![])).collect();
        let parents: Vec<Digest> = genesis.iter().map(|v| v.digest()).collect();
        for g in &genesis {
            rbc1.handle(g.author(), &RbcMessage::Vertex(Arc::new(g.clone())), &mut dag1);
        }
        let child = make_vertex(&c, 1, 0, parents);
        rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(child)), &mut dag1);
        let fx = rbc1.tick(&dag1);
        assert!(fx.send.is_empty(), "fresh progress silences the stall path");
    }

    #[test]
    fn tick_rebroadcasts_uncertified_proposals() {
        let c = committee4();
        let (mut rbc0, mut dag0) = node(&c, 0, BroadcastMode::Certified);
        let v = make_vertex(&c, 0, 0, vec![]);
        rbc0.broadcast_own(v.clone(), &mut dag0);
        let fx = rbc0.tick(&dag0);
        assert!(
            fx.broadcast.iter().any(|m| matches!(m, RbcMessage::Propose(_))),
            "uncertified proposal re-broadcast"
        );
        // Certify it; tick stops re-broadcasting.
        for i in 1..=2u16 {
            let sig = c.keypair(ValidatorId(i)).sign(ACK_CONTEXT, v.digest().as_bytes());
            rbc0.handle(ValidatorId(i), &RbcMessage::Ack { vertex: v.reference(), sig }, &mut dag0);
        }
        let fx = rbc0.tick(&dag0);
        assert!(!fx.broadcast.iter().any(|m| matches!(m, RbcMessage::Propose(_))));
    }

    #[test]
    fn backoff_keeps_every_tick_prefix_then_doubles_to_cap() {
        // The first two retries keep the historical every-tick cadence —
        // healthy runs must be byte-identical to the fixed-cadence code.
        assert_eq!(backoff_ticks(1), 1);
        assert_eq!(backoff_ticks(2), 1);
        // Then the gap doubles…
        assert_eq!(backoff_ticks(3), 2);
        assert_eq!(backoff_ticks(4), 4);
        // …and saturates at the cap.
        assert_eq!(backoff_ticks(5), 8);
        assert_eq!(backoff_ticks(6), 8);
        assert_eq!(backoff_ticks(1000), 8);
    }

    #[test]
    fn jitter_is_zero_in_the_prefix_and_bounded_after() {
        let d = hh_crypto::sha256(b"jitter");
        assert_eq!(jitter_ticks(&d, 1, backoff_ticks(1)), 0);
        assert_eq!(jitter_ticks(&d, 2, backoff_ticks(2)), 0);
        for attempts in 3..20u32 {
            let delay = backoff_ticks(attempts);
            let j = jitter_ticks(&d, attempts, delay);
            assert!(j <= delay / 2, "jitter {j} exceeds half the delay {delay}");
        }
        // Different digests spread out (not all zero).
        let spread: std::collections::HashSet<u64> = (0..64u8)
            .map(|i| jitter_ticks(&hh_crypto::sha256(&[i]), 5, backoff_ticks(5)))
            .collect();
        assert!(spread.len() > 1, "jitter must vary by digest");
    }

    #[test]
    fn persistent_loss_backs_off_instead_of_storming() {
        // One digest stays missing for 40 ticks (nobody ever answers —
        // total loss). The fixed-cadence code sent 40 re-requests; the
        // backoff must stay within a small constant of the no-loss cost.
        let c = committee4();
        let (mut rbc1, dag1) = node(&c, 1, BroadcastMode::BestEffort);
        let genesis: Vec<Vertex> = (0..4).map(|i| make_vertex(&c, 0, i, vec![])).collect();
        let parents: Vec<Digest> = genesis.iter().map(|v| v.digest()).collect();
        let child = make_vertex(&c, 1, 0, parents);
        let mut dag1 = dag1;
        rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(child)), &mut dag1);

        let mut sent = 0usize;
        for _ in 0..40 {
            let fx = rbc1.tick(&dag1);
            for (_, msg) in fx.send {
                if let RbcMessage::SyncRequest(ds) = msg {
                    sent += ds.len();
                }
            }
        }
        // 4 missing parents, each re-requested on the backoff schedule:
        // ticks 1,2,3,~5,~9,~17,~25,~33 ⇒ ~8 apiece, far below 40.
        let per_digest = rbc1.sync_retransmits() as f64 / 4.0;
        assert!(per_digest <= 12.0, "retry storm: {per_digest} re-requests per digest");
        assert!(per_digest >= 5.0, "backoff must keep retrying: {per_digest}");
        assert_eq!(sent as u64, rbc1.sync_retransmits(), "counter matches the wire");
    }

    #[test]
    fn arrival_resets_the_backoff() {
        // After the missing digest arrives, `requested` forgets it; if
        // it ever goes missing again the schedule restarts from attempt
        // one (reset-on-ack).
        let c = committee4();
        let (mut rbc1, mut dag1) = node(&c, 1, BroadcastMode::BestEffort);
        let genesis: Vec<Vertex> = (0..4).map(|i| make_vertex(&c, 0, i, vec![])).collect();
        let parents: Vec<Digest> = genesis.iter().map(|v| v.digest()).collect();
        let child = make_vertex(&c, 1, 0, parents);
        rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(child)), &mut dag1);
        for _ in 0..10 {
            rbc1.tick(&dag1);
        }
        assert!(rbc1.requested.iter().any(|(_, s)| s.attempts >= 3), "deep into backoff");
        for g in &genesis {
            rbc1.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(g.clone())), &mut dag1);
        }
        assert!(rbc1.requested.is_empty(), "arrival clears retransmit state");
        let before = rbc1.sync_retransmits();
        rbc1.tick(&dag1);
        assert_eq!(rbc1.sync_retransmits(), before, "nothing left to retransmit");
    }

    #[test]
    fn proposal_rebroadcast_backs_off_until_certified() {
        let c = committee4();
        let (mut rbc0, mut dag0) = node(&c, 0, BroadcastMode::Certified);
        let v = make_vertex(&c, 0, 0, vec![]);
        rbc0.broadcast_own(v.clone(), &mut dag0);
        let mut per_tick = Vec::new();
        for _ in 0..20 {
            let fx = rbc0.tick(&dag0);
            per_tick
                .push(fx.broadcast.iter().filter(|m| matches!(m, RbcMessage::Propose(_))).count());
        }
        let total: usize = per_tick.iter().sum();
        assert_eq!(per_tick[0], 1, "first tick still rebroadcasts immediately");
        assert!(total < 10, "20 ticks must not rebroadcast 20 times: {total}");
        assert_eq!(total as u64, rbc0.proposal_rebroadcasts());
        assert!(rbc0.retransmits() >= rbc0.proposal_rebroadcasts());
    }

    #[test]
    fn rbc_messages_roundtrip_on_the_wire() {
        use hh_types::codec::{decode_framed, encode_framed};
        let c = committee4();
        let v = make_vertex(&c, 3, 2, vec![hh_crypto::sha256(b"p")]);
        let sig = c.keypair(ValidatorId(1)).sign(ACK_CONTEXT, v.digest().as_bytes());
        let cert = Certificate::new(
            v.reference(),
            (0..3u16)
                .map(|i| {
                    let kp = c.keypair(ValidatorId(i));
                    (ValidatorId(i), kp.sign(ACK_CONTEXT, v.digest().as_bytes()))
                })
                .collect(),
        );
        let messages = vec![
            RbcMessage::Vertex(Arc::new(v.clone())),
            RbcMessage::Propose(Arc::new(v.clone())),
            RbcMessage::Ack { vertex: v.reference(), sig },
            RbcMessage::Certified(Arc::new(v.clone()), cert.clone()),
            RbcMessage::SyncRequest(vec![hh_crypto::sha256(b"a"), hh_crypto::sha256(b"b")]),
            RbcMessage::RangeRequest { from: Round(17) },
            RbcMessage::SyncResponse(vec![
                (Arc::new(v.clone()), Some(cert)),
                (Arc::new(v.clone()), None),
            ]),
        ];
        for msg in messages {
            let frame = encode_framed(&msg);
            let back: RbcMessage = decode_framed(&frame).expect("roundtrip");
            // RbcMessage has no PartialEq (Vertex caches digests); compare
            // re-encodings instead.
            assert_eq!(encode_framed(&back), frame, "lossless roundtrip for {msg:?}");
        }
        // A truncated or tag-mangled frame dies at decode.
        let mut frame = encode_framed(&RbcMessage::RangeRequest { from: Round(1) });
        frame[0] = 99;
        assert!(decode_framed::<RbcMessage>(&frame).is_err());
    }

    #[test]
    fn late_ack_after_certification_ignored() {
        let c = committee4();
        let (mut rbc0, mut dag0) = node(&c, 0, BroadcastMode::Certified);
        let v = make_vertex(&c, 0, 0, vec![]);
        rbc0.broadcast_own(v.clone(), &mut dag0);
        for i in 1..=2u16 {
            let sig = c.keypair(ValidatorId(i)).sign(ACK_CONTEXT, v.digest().as_bytes());
            rbc0.handle(ValidatorId(i), &RbcMessage::Ack { vertex: v.reference(), sig }, &mut dag0);
        }
        let sig3 = c.keypair(ValidatorId(3)).sign(ACK_CONTEXT, v.digest().as_bytes());
        let fx = rbc0.handle(
            ValidatorId(3),
            &RbcMessage::Ack { vertex: v.reference(), sig: sig3 },
            &mut dag0,
        );
        assert!(fx.delivered.is_empty());
        assert!(fx.broadcast.is_empty());
    }
}
