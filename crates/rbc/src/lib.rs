//! Reliable broadcast of DAG vertices (the paper's Definition 1).
//!
//! HammerHead sits on a DAG built by reliable broadcast: every vertex an
//! honest party delivers is eventually delivered by all honest parties
//! (*Agreement*), at most once per `(round, author)` (*Integrity*), and
//! honest broadcasts always deliver (*Validity*). This crate implements the
//! two instantiations used in practice:
//!
//! * [`BroadcastMode::BestEffort`] — the author pushes the vertex to
//!   everyone; receivers whose DAG is missing the vertex's ancestry issue
//!   pull-based [`RbcMessage::SyncRequest`]s (Narwhal's "fetcher" pattern).
//!   Sufficient under crash faults, which is the paper's evaluation setting,
//!   and cheaper by one round-trip.
//! * [`BroadcastMode::Certified`] — Narwhal-style: the author proposes a
//!   header, collects quorum-stake signed acks, assembles a
//!   [`Certificate`], and broadcasts the certified vertex. Honest validators
//!   ack at most one header per `(round, author)`, so quorum intersection
//!   makes per-round equivocation impossible — two conflicting vertices can
//!   never both gather certificates.
//!
//! The layer is a pure state machine ([`Rbc`]): it consumes protocol
//! messages plus a DAG reference and emits [`RbcEffects`] (messages to send
//! and vertices newly *delivered* — inserted into the DAG with complete
//! ancestry). The validator wires it to the network runtime.
//!
//! # Example
//!
//! ```
//! use hh_rbc::{BroadcastMode, Rbc, RbcMessage};
//! use hh_dag::Dag;
//! use hh_types::{Block, Committee, Round, ValidatorId, Vertex};
//!
//! let committee = Committee::new_equal_stake(4);
//! let mut dag0 = Dag::new(committee.clone());
//! let mut rbc0 = Rbc::new(committee.clone(), ValidatorId(0), BroadcastMode::BestEffort);
//!
//! // v0 creates and broadcasts its genesis vertex.
//! let v = Vertex::new(Round(0), ValidatorId(0), Block::empty(),
//!                     vec![], &committee.keypair(ValidatorId(0)));
//! let fx = rbc0.broadcast_own(v.clone(), &mut dag0);
//! assert_eq!(fx.delivered.len(), 1);         // self-delivery is immediate
//! assert_eq!(fx.broadcast.len(), 1);         // one message to everyone
//!
//! // v1 receives it.
//! let mut dag1 = Dag::new(committee.clone());
//! let mut rbc1 = Rbc::new(committee, ValidatorId(1), BroadcastMode::BestEffort);
//! let fx = rbc1.handle(ValidatorId(0), &fx.broadcast[0], &mut dag1);
//! assert_eq!(fx.delivered.len(), 1);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod cert;
mod layer;

pub use cert::{Certificate, CertificateError};
pub use layer::{BroadcastMode, Rbc, RbcEffects, RbcMessage};
