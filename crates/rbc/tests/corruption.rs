//! Property tests: in-flight corruption of any encoded wire frame must
//! die at the receiving codec.
//!
//! The chaos model flips bytes in encoded frames *below* the protocol,
//! so the framed codec (`encode_framed` / `decode_framed`, payload +
//! CRC-32 trailer) is the only line of defense between a flipped bit
//! and a forged message entering the DAG. These properties pin the
//! contract the simulator's corruption hook relies on: a mutated or
//! truncated frame decodes to an error — never to a *different* valid
//! message.

use hh_crypto::Digest;
use hh_rbc::{Certificate, RbcMessage};
use hh_types::codec::{decode_framed, encode_framed};
use hh_types::{Block, Committee, Round, ValidatorId, Vertex, VertexRef};
use proptest::prelude::*;
use std::sync::Arc;

fn committee() -> Committee {
    Committee::new_equal_stake(4)
}

fn vertex(c: &Committee, round: u64, author: u16, parents: Vec<Digest>) -> Vertex {
    Vertex::new(
        Round(round),
        ValidatorId(author),
        Block::empty(),
        parents,
        &c.keypair(ValidatorId(author)),
    )
}

fn vref(v: &Vertex) -> VertexRef {
    VertexRef { round: v.round(), author: v.author(), digest: v.digest() }
}

/// One representative message per wire tag, shaped by `(pick, round,
/// author)` so cases cover every variant with varied content.
fn message(c: &Committee, pick: u8, round: u64, author: u16) -> RbcMessage {
    let author = author % c.size() as u16;
    let parent = Arc::new(vertex(c, round, (author + 1) % c.size() as u16, vec![]));
    let v = Arc::new(vertex(c, round + 1, author, vec![parent.digest()]));
    let sig = |id: u16, tag: &[u8]| c.keypair(ValidatorId(id)).sign(b"corruption-test", tag);
    let cert = Certificate::new(
        vref(&v),
        (0..3).map(|i| (ValidatorId(i), sig(i, v.digest().to_string().as_bytes()))).collect(),
    );
    match pick % 7 {
        0 => RbcMessage::Vertex(v),
        1 => RbcMessage::Propose(v),
        2 => RbcMessage::Ack { vertex: vref(&v), sig: sig(author, b"ack") },
        3 => RbcMessage::Certified(v, cert),
        4 => RbcMessage::SyncRequest(vec![v.digest(), parent.digest()]),
        5 => RbcMessage::RangeRequest { from: Round(round) },
        6 => RbcMessage::SyncResponse(vec![(parent, None), (v, Some(cert))]),
        _ => unreachable!("pick % 7"),
    }
}

proptest! {
    /// Random byte flips anywhere in the frame — payload or CRC trailer
    /// — must make `decode_framed` fail. A flipped frame that decoded
    /// into *any* message would let the chaos model forge traffic.
    #[test]
    fn flipped_frames_never_decode(
        pick in 0u8..7,
        round in 0u64..40,
        author in 0u16..4,
        flips in proptest::collection::vec((0usize..1 << 16, 1u8..=255), 1..8),
    ) {
        let c = committee();
        let msg = message(&c, pick, round, author);
        let frame = encode_framed(&msg);

        // Sanity: the clean frame round-trips to identical bytes.
        let decoded = decode_framed::<RbcMessage>(&frame).expect("clean frame decodes");
        prop_assert_eq!(&encode_framed(&decoded), &frame, "round-trip changed the frame");

        // Non-zero XOR masks, positions wrapped into the frame; distinct
        // flips can still cancel pairwise, so skip the identity case.
        let mut mutated = frame.clone();
        for (pos, mask) in flips {
            let i = pos % mutated.len();
            mutated[i] ^= mask;
        }
        if mutated != frame {
            prop_assert!(
                decode_framed::<RbcMessage>(&mutated).is_err(),
                "a corrupted frame decoded as a valid message (tag {})",
                frame[0]
            );
        }
    }

    /// Every strict prefix of a frame — a truncated read — must fail.
    #[test]
    fn truncated_frames_never_decode(
        pick in 0u8..7,
        round in 0u64..40,
        author in 0u16..4,
    ) {
        let c = committee();
        let frame = encode_framed(&message(&c, pick, round, author));
        for len in 0..frame.len() {
            prop_assert!(
                decode_framed::<RbcMessage>(&frame[..len]).is_err(),
                "a {len}-byte prefix of a {}-byte frame decoded",
                frame.len()
            );
        }
    }
}
