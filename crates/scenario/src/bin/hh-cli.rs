//! `hh-cli` — run, sweep, list and validate HammerHead scenarios.
//!
//! ```text
//! hh-cli run scenarios/fig1_faultless.toml [--quick] [--rounds 50] [--out out.json]
//! hh-cli matrix scenarios/fig2_faults.toml --set hammerhead.period_rounds=4,20,120
//! hh-cli list [scenarios/]
//! hh-cli validate scenarios/fig2_faults.toml [--dump]
//! ```
//!
//! `run` executes every run a scenario expands to and prints a row per
//! run; `--out` additionally writes the deterministic JSON report.
//! `matrix` is `run` plus at least one `--set key=v1,v2,...` patch —
//! list values become sweep axes. `list` shows every scenario in a
//! directory with its expanded run count. `validate` parses and expands
//! without running.

use hh_scenario::{
    load_scenario, render_header, report_json, run_plan_with, toml, ExecOptions, PlanOptions,
    RunLimit, ScenarioError, ScenarioSpec,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
hh-cli — declarative scenario runner for the HammerHead reproduction

USAGE:
    hh-cli run <scenario.toml> [OPTIONS]      execute a scenario
    hh-cli matrix <scenario.toml> --set k=v1,v2,... [OPTIONS]
                                              sweep patched parameter axes
    hh-cli list [dir]                         list scenarios (default: scenarios/)
    hh-cli validate <scenario.toml> [--dump]  parse + expand without running
    hh-cli testnet [OPTIONS]                  run a local committee of real
                                              hh-node processes over loopback
                                              TCP (see `hh-node testnet --help`)

OPTIONS (run / matrix):
    --quick           apply the scenario's [quick] scaled-down overrides
    --duration <s>    override the duration axis (simulated seconds)
    --seed <n>        override the seed axis
    --rounds <n>      stop each run once the DAG passes round <n>
    --jobs <n>        run up to <n> runs in parallel (default: the
                      host's available parallelism); output is
                      byte-identical for every <n>
    --profile         print per-run wall-clock and simulated-events/sec
                      to stderr; the report (rows, JSON) is unchanged
    --set <k=v,..>    patch a scenario key before validation; list values
                      become sweep axes (repeatable)
    --out <file>      write the JSON report to <file>
    --json            print the JSON report to stdout instead of rows
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], false),
        Some("matrix") => cmd_run(&args[1..], true),
        Some("list") => cmd_list(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("testnet") => return cmd_testnet(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

struct RunArgs {
    scenario: PathBuf,
    quick: bool,
    duration: Option<u64>,
    seed: Option<u64>,
    rounds: Option<u64>,
    jobs: usize,
    sets: Vec<(Vec<String>, toml::Value)>,
    out: Option<PathBuf>,
    json: bool,
    profile: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut parsed = RunArgs {
        scenario: PathBuf::new(),
        quick: false,
        duration: None,
        seed: None,
        rounds: None,
        jobs: ExecOptions::default_jobs(),
        sets: Vec::new(),
        out: None,
        json: false,
        profile: false,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--json" => parsed.json = true,
            "--profile" => parsed.profile = true,
            "--duration" => parsed.duration = Some(flag_u64(&mut it, "--duration")?),
            "--seed" => parsed.seed = Some(flag_u64(&mut it, "--seed")?),
            "--rounds" => parsed.rounds = Some(flag_u64(&mut it, "--rounds")?),
            "--jobs" => {
                let jobs = flag_u64(&mut it, "--jobs")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                parsed.jobs = jobs as usize;
            }
            "--out" => {
                parsed.out = Some(PathBuf::from(it.next().ok_or("--out requires a file path")?))
            }
            "--set" => {
                let kv = it.next().ok_or("--set requires key=value[,value...]")?;
                parsed.sets.push(parse_set(kv)?);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.as_slice() {
        [one] => parsed.scenario = PathBuf::from(one),
        [] => return Err("missing scenario file".into()),
        more => return Err(format!("expected one scenario file, got {more:?}")),
    }
    Ok(parsed)
}

fn flag_u64<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or(format!("{flag} requires a number"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

/// Parses `a.b.c=v1,v2` into a key path and a TOML value (an array when
/// multiple comma-separated values are given).
fn parse_set(kv: &str) -> Result<(Vec<String>, toml::Value), String> {
    let (path, values) =
        kv.split_once('=').ok_or_else(|| format!("--set `{kv}` is not of the form key=value"))?;
    let path: Vec<String> = path.split('.').map(str::to_string).collect();
    if path.iter().any(String::is_empty) {
        return Err(format!("--set `{kv}` has an empty key segment"));
    }
    let parts: Vec<toml::Value> = values.split(',').map(parse_scalar).collect();
    let value = if parts.len() == 1 {
        parts.into_iter().next().expect("split yields at least one part")
    } else {
        toml::Value::Array(parts)
    };
    Ok((path, value))
}

fn parse_scalar(s: &str) -> toml::Value {
    if let Ok(i) = s.parse::<i64>() {
        return toml::Value::Int(i);
    }
    if let Ok(x) = s.parse::<f64>() {
        return toml::Value::Float(x);
    }
    match s {
        "true" => toml::Value::Bool(true),
        "false" => toml::Value::Bool(false),
        _ => toml::Value::Str(s.to_string()),
    }
}

/// Applies a `--set` patch to the parsed scenario document, creating
/// intermediate tables as needed.
fn apply_set(root: &mut toml::Value, path: &[String], value: toml::Value) -> Result<(), String> {
    let (last, prefix) = path.split_last().expect("parse_set rejects empty paths");
    let mut table = match root {
        toml::Value::Table(t) => t,
        _ => return Err("scenario root is not a table".into()),
    };
    for part in prefix {
        table = match table.entry(part.clone()).or_insert_with(toml::Value::table) {
            toml::Value::Table(t) => t,
            other => return Err(format!("--set path segment `{part}` is not a table ({other:?})")),
        };
    }
    table.insert(last.clone(), value);
    Ok(())
}

fn load_with_sets(
    path: &Path,
    sets: &[(Vec<String>, toml::Value)],
) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut root = toml::parse(&text).map_err(|e| e.to_string())?;
    for (set_path, value) in sets {
        apply_set(&mut root, set_path, value.clone())?;
    }
    ScenarioSpec::from_value(&root).map_err(|e| e.to_string())
}

fn cmd_run(args: &[String], require_set: bool) -> Result<(), String> {
    let args = parse_run_args(args)?;
    if require_set && args.sets.is_empty() {
        return Err("matrix requires at least one --set key=v1,v2,... axis".into());
    }
    let spec = load_with_sets(&args.scenario, &args.sets)?;
    let opts = PlanOptions {
        quick: args.quick,
        duration_override: args.duration,
        seed_override: args.seed,
    };
    let plan = spec.plan(&opts).map_err(|e| e.to_string())?;
    let limit = match args.rounds {
        Some(n) => RunLimit::Rounds(n),
        None => RunLimit::Duration,
    };

    // Note: the worker count is deliberately absent from the output —
    // rows, progress lines, and JSON are byte-identical for any --jobs.
    if !args.json {
        println!(
            "# scenario {} — {} run(s){}",
            plan.name,
            plan.runs.len(),
            if args.quick { " [quick]" } else { "" }
        );
    }
    let opts = ExecOptions { jobs: args.jobs, verbose: !args.json, profile: args.profile };
    let report = run_plan_with(&plan, limit, &opts);
    if !args.json {
        println!("{}", render_header(&report));
    }
    let json = report_json(&report).render();
    if args.json {
        print!("{json}");
    }
    if let Some(out) = &args.out {
        std::fs::write(out, &json).map_err(|e| format!("{}: {e}", out.display()))?;
        if !args.json {
            println!("wrote {}", out.display());
        }
    }
    Ok(())
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let dir = match args {
        [] => PathBuf::from("scenarios"),
        [one] => PathBuf::from(one),
        more => return Err(format!("expected at most one directory, got {more:?}")),
    };
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        println!("no scenarios in {}", dir.display());
        return Ok(());
    }
    for path in entries {
        match load_scenario(&path) {
            Ok(spec) => {
                let runs = spec
                    .plan(&PlanOptions::default())
                    .map(|p| p.runs.len().to_string())
                    .unwrap_or_else(|_| "?".into());
                println!(
                    "{:<34} {:>4} runs  {}",
                    path.file_name().unwrap_or_default().to_string_lossy(),
                    runs,
                    spec.description
                );
            }
            Err(e) => println!(
                "{:<34} INVALID: {e}",
                path.file_name().unwrap_or_default().to_string_lossy()
            ),
        }
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let mut dump = false;
    let mut path = None;
    for arg in args {
        match arg.as_str() {
            "--dump" => dump = true,
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => {
                if path.replace(PathBuf::from(other)).is_some() {
                    return Err("expected exactly one scenario file".into());
                }
            }
        }
    }
    let path = path.ok_or("missing scenario file")?;
    let spec = load_scenario(&path).map_err(|e| match e {
        ScenarioError::Io(m) => m,
        other => other.to_string(),
    })?;
    let plan = spec.plan(&PlanOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "{}: ok — {} run(s) across {} committee size(s)",
        spec.name,
        plan.runs.len(),
        spec.committee_sizes.len()
    );
    if dump {
        print!("{}", spec.to_toml());
    }
    Ok(())
}

/// `hh-cli testnet ...` delegates to the `hh-node` binary (which owns
/// the harness) rather than linking it: `hh-node` depends on this crate
/// for its TOML config format, so the dependency can only point one
/// way. The binary is expected next to this executable — both are
/// workspace bins, so any `cargo build --workspace` puts them side by
/// side; `$HH_NODE_BIN` overrides the location.
fn cmd_testnet(args: &[String]) -> ExitCode {
    let binary = match std::env::var("HH_NODE_BIN").map(PathBuf::from) {
        Ok(p) => p,
        Err(_) => {
            let sibling = std::env::current_exe()
                .ok()
                .and_then(|exe| exe.parent().map(|d| d.join("hh-node")));
            match sibling {
                Some(p) if p.is_file() => p,
                _ => {
                    eprintln!(
                        "error: hh-node binary not found next to hh-cli; \
                         build it with `cargo build -p hh-node` or set HH_NODE_BIN"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    match std::process::Command::new(&binary).arg("testnet").args(args).status() {
        Ok(status) => ExitCode::from(status.code().unwrap_or(1) as u8),
        Err(e) => {
            eprintln!("error: running {}: {e}", binary.display());
            ExitCode::FAILURE
        }
    }
}
