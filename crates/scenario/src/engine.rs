//! The report layer: assembles executed runs into a [`ScenarioReport`]
//! and renders it.
//!
//! One [`RunRow`] per planned run: the standard paper metrics
//! ([`hh_sim::RunResult`]) plus whatever extra analyses the scenario
//! declared (windowed latency percentiles, skipped leader rounds, B/G
//! schedule churn). Reports render as an aligned text table for humans
//! and as deterministic JSON for `BENCH_*.json`-style artifacts.
//!
//! Execution itself lives in [`crate::executor`]; this module owns all
//! output. Progress rows are printed here, from the ordered emission
//! the executor contract guarantees, so worker threads never write to
//! stdout and verbose/quiet runs build the same report.

use crate::executor::{Executor, PooledExecutor, SerialExecutor};
use crate::json::Json;
use crate::spec::{PlannedRun, ScenarioPlan};
use hh_sim::{LatencySummary, RunLimit, RunResult};
use std::fmt::Write as _;

/// Latency summary for one named submission-time window.
#[derive(Clone, Debug)]
pub struct WindowRow {
    /// Window name from the scenario.
    pub name: String,
    /// Post-warmup latencies of transactions submitted inside the window.
    pub latency: LatencySummary,
}

/// Re-inclusion measurements for one recovered validator: how long the
/// leader schedule took to hand it slots again after its restart.
#[derive(Clone, Debug)]
pub struct ReinclusionRow {
    /// The recovered validator.
    pub validator: u16,
    /// Recovery instant (µs of simulated time).
    pub recovered_at_us: u64,
    /// Network round at the recovery instant (the measurement baseline).
    pub recovery_round: u64,
    /// First round at or after recovery where the schedule names this
    /// validator leader; `None` if no slot arrived within the run.
    pub first_leader_round: Option<u64>,
    /// `first_leader_round - recovery_round`.
    pub rounds_to_first_leader: Option<u64>,
    /// Round of this validator's first committed anchor after recovery
    /// (its first *successful* leader slot); `None` if none committed.
    pub first_commit_round: Option<u64>,
    /// `first_commit_round - recovery_round`.
    pub rounds_to_first_commit: Option<u64>,
    /// This validator's final score in each completed epoch, oldest
    /// first (HammerHead runs; empty for the baseline) — the rebound the
    /// re-inclusion rides on.
    pub score_trajectory: Vec<u64>,
}

/// Adversary measurements for one byzantine validator: how fast the
/// reputation mechanism pushed the attacker out of the leader schedule,
/// and what the attack cost everyone while it lasted.
#[derive(Clone, Debug)]
pub struct AdversaryRow {
    /// The attacker.
    pub validator: u16,
    /// Its strategy label(s) from the schedule (`+`-joined when a node
    /// runs different strategies in different windows).
    pub strategy: String,
    /// Round at which the first schedule excluding the attacker took
    /// effect; `None` if it was never demoted (always for round-robin).
    pub rounds_to_demotion: Option<u64>,
    /// Epoch whose closing scores first excluded the attacker.
    pub epochs_to_demotion: Option<u64>,
    /// Completed epochs whose closing scores excluded the attacker.
    pub exclusions: u64,
    /// Fraction of anchor (even) rounds up to the last committed anchor
    /// where the schedule named the attacker leader. Round-robin pins
    /// this near `1/n`; a demoting scorer drives it toward zero.
    pub leader_share_overall: f64,
    /// The same share per completed epoch, oldest first (HammerHead
    /// runs; empty for the baseline) — the attacker's slot share decaying
    /// over time.
    pub leader_share_by_epoch: Vec<f64>,
    /// Equivocation evidence units charged to the attacker in the
    /// observer's ledger (non-zero only for equivocating strategies).
    pub evidence_units: u64,
}

/// Chaos-delivery accounting for one run: what the adverse network did
/// to the wire and what the self-healing delivery layer spent riding it
/// out — plus the safety checker's verdict, which must always be zero
/// violations for a run to produce a row at all.
#[derive(Clone, Copy, Debug)]
pub struct ChaosRow {
    /// Frames delivered (after chaos effects).
    pub delivered: u64,
    /// Frames the chaos plan dropped outright.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Corrupted frames rejected at the receiver's codec.
    pub corrupt_rejected: u64,
    /// Frames given extra reorder delay.
    pub reordered: u64,
    /// RBC retransmits (sync retries, proposal re-broadcasts, stall
    /// pulls) spent recovering the lost traffic.
    pub retransmits: u64,
    /// Commit records audited by the safety checker.
    pub safety_records: u64,
    /// Safety invariant violations (always zero on a reported run —
    /// violations abort before reporting; surfaced so artifacts can
    /// gate on it explicitly).
    pub safety_violations: u64,
}

/// Extra per-run analysis results.
#[derive(Clone, Debug, Default)]
pub struct AnalysisRow {
    /// One entry per `[[analysis.window]]`.
    pub windows: Vec<WindowRow>,
    /// Even rounds ≤ the last committed anchor without a committed anchor
    /// (Lemma 6's metric), when requested.
    pub skipped_rounds: Option<u64>,
    /// Round of the last committed anchor, when `skipped_rounds` is on.
    pub last_anchor_round: Option<u64>,
    /// Total validators swapped out across all schedule switches (the
    /// size of every epoch's B set summed), when requested.
    pub bg_churn: Option<u64>,
    /// One entry per recovery event, when the `reinclusion` analysis is
    /// requested (`Some([])` for runs whose schedule has no recoveries).
    pub reinclusion: Option<Vec<ReinclusionRow>>,
    /// One entry per byzantine validator, when the `adversary` analysis
    /// is requested (`Some([])` for runs with no byzantine schedule).
    pub adversary: Option<Vec<AdversaryRow>>,
    /// Chaos-delivery accounting, when the `chaos` analysis is
    /// requested.
    pub chaos: Option<ChaosRow>,
}

/// Execution-cost sample for one run, rendered only under `--profile`.
///
/// Wall-clock is inherently nondeterministic, so none of this may ever
/// reach the report's rows or JSON — CI enforces that `--profile`
/// leaves the JSON byte-identical.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunProfile {
    /// Wall-clock seconds the run took on its worker.
    pub wall_s: f64,
    /// Simulator events the run processed (deterministic).
    pub sim_events: u64,
    /// Event-loop cost breakdown, populated only while profiling is
    /// enabled (the counters are dead weight otherwise).
    pub breakdown: Option<ProfBreakdown>,
}

/// Where a run's wall-clock went, from the flag-gated hot-path
/// counters. Delivery time includes the handler's nested work, so the
/// digest/signature/codec shares nest *inside* the delivery share
/// rather than summing with it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfBreakdown {
    /// Event-loop counters: queue ops, deliveries, timers.
    pub net: hh_sim::prof::NetProf,
    /// Crypto/codec counters: digests, signatures, framed passes.
    pub crypto: hh_sim::prof::CryptoProf,
}

impl RunProfile {
    /// Simulated events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.sim_events as f64 / self.wall_s.max(1e-9)
    }
}

/// One finished run.
#[derive(Clone, Debug)]
pub struct RunRow {
    /// The plan entry that produced this row.
    pub run: PlannedRun,
    /// Standard metrics.
    pub result: RunResult,
    /// Scenario-declared analyses.
    pub analysis: AnalysisRow,
    /// Execution-cost sample (never part of the report output).
    pub profile: RunProfile,
}

/// A fully executed scenario.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Scenario description.
    pub description: String,
    /// Paper figure, if declared.
    pub figure: Option<String>,
    /// Stop rule the runs used.
    pub limit: RunLimit,
    /// Whether the scenario declared a `[workload]` table; gates the
    /// per-run workload goodput block in rows and JSON (undeclared
    /// workloads keep legacy report bytes).
    pub workload_declared: bool,
    /// One row per run, in plan order.
    pub rows: Vec<RunRow>,
}

/// How a plan executes: worker count, progress verbosity, profiling.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Worker threads; 1 runs serially on the calling thread.
    pub jobs: usize,
    /// Print one progress row per finished run (always in plan order).
    pub verbose: bool,
    /// Print per-run wall-clock and simulated-events/sec to stderr.
    /// Never changes the report: rows and JSON stay byte-identical.
    pub profile: bool,
}

impl ExecOptions {
    /// The `--jobs` default: every core the host offers (1 when the
    /// parallelism cannot be determined).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { jobs: 1, verbose: false, profile: false }
    }
}

/// Executes every run of the plan serially, printing progress rows to
/// stdout as they finish when `verbose`.
///
/// Shorthand for [`run_plan_with`] at `jobs = 1`; sweeps wanting the
/// worker pool pass an explicit [`ExecOptions`].
///
/// # Panics
///
/// Panics if a run violates the Total Order audit — a safety violation
/// is never something to report as a data point.
pub fn run_plan(plan: &ScenarioPlan, limit: RunLimit, verbose: bool) -> ScenarioReport {
    run_plan_with(plan, limit, &ExecOptions { jobs: 1, verbose, profile: false })
}

/// Executes every run of the plan on `opts.jobs` workers and assembles
/// the report.
///
/// The report — rows, progress lines, JSON bytes — is identical for
/// every worker count: runs are dispatched by index, each row is a pure
/// function of its plan entry, and rows are emitted and assembled in
/// plan order.
///
/// # Panics
///
/// Panics if a run violates the Total Order audit, with the failing
/// run's labels in the message regardless of which worker hit it.
pub fn run_plan_with(plan: &ScenarioPlan, limit: RunLimit, opts: &ExecOptions) -> ScenarioReport {
    // Arm (or disarm) the hot-path counters before any worker starts;
    // wall-clock never reaches the report either way, so the JSON stays
    // byte-identical with or without profiling.
    hh_sim::prof::set_enabled(opts.profile);
    if opts.jobs > 1 {
        build_report(plan, limit, &PooledExecutor::new(opts.jobs), opts)
    } else {
        build_report(plan, limit, &SerialExecutor, opts)
    }
}

/// Assembles the [`ScenarioReport`] from whatever executor ran the
/// plan. All stdout happens here, on the calling thread, from the
/// executor's ordered emission.
fn build_report(
    plan: &ScenarioPlan,
    limit: RunLimit,
    executor: &dyn Executor,
    opts: &ExecOptions,
) -> ScenarioReport {
    let mut emit = |row: &RunRow| {
        if opts.verbose {
            println!("{}", render_row(row));
        }
        if opts.profile {
            // Stderr, so `--json` pipelines stay clean; wall-clock never
            // enters the report.
            eprintln!("{}", render_profile(row));
        }
    };
    let rows = executor.execute(plan, limit, &mut emit);
    ScenarioReport {
        name: plan.name.clone(),
        description: plan.description.clone(),
        figure: plan.figure.clone(),
        limit,
        workload_declared: plan.workload_declared,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Text rendering
// ---------------------------------------------------------------------------

/// One aligned human-readable line for a finished run.
pub fn render_row(row: &RunRow) -> String {
    let r = &row.result;
    let mut line = format!(
        "  {:<16} n={:<3} f={:<2} load={:<5} -> {:>7.0} tx/s | latency {:>6.2}s ±{:>5.2} \
         (p50 {:>5.2} p95 {:>5.2}) | commits {:>5} timeouts {:>4} epochs {:>3}",
        row.run.variant,
        row.run.config.committee_size,
        row.run.fault_count,
        row.run.config.load_tps,
        r.throughput_tps,
        r.latency.mean,
        r.latency.stddev,
        r.latency.p50,
        r.latency.p95,
        r.commits,
        r.leader_timeouts,
        r.schedule_epochs,
    );
    for w in &row.analysis.windows {
        let _ = write!(
            line,
            "\n      window {:<10} p50 {:>6.3}s p95 {:>6.3}s mean {:>6.3}s ({} txs)",
            w.name, w.latency.p50, w.latency.p95, w.latency.mean, w.latency.count
        );
    }
    if let (Some(skipped), Some(last)) =
        (row.analysis.skipped_rounds, row.analysis.last_anchor_round)
    {
        let _ = write!(
            line,
            "\n      skipped {skipped} of {} leader rounds (last anchor round {last})",
            last / 2 + 1
        );
    }
    if let Some(churn) = row.analysis.bg_churn {
        let _ = write!(line, "\n      schedule churn: {churn} validators swapped out");
    }
    if row.result.restarts > 0 {
        let _ = write!(
            line,
            "\n      recovery: {} restart(s){}",
            row.result.restarts,
            if row.result.recovery_divergence { " [DIVERGENCE]" } else { "" }
        );
    }
    if let Some(reinclusion) = &row.analysis.reinclusion {
        for r in reinclusion {
            let fmt_rounds = |x: Option<u64>| match x {
                Some(rounds) => format!("+{rounds}"),
                None => "never".to_string(),
            };
            let _ = write!(
                line,
                "\n      reinclusion v{}: recovered at round {} | first slot {} | \
                 first commit {}",
                r.validator,
                r.recovery_round,
                fmt_rounds(r.rounds_to_first_leader),
                fmt_rounds(r.rounds_to_first_commit),
            );
        }
    }
    if let Some(adversary) = &row.analysis.adversary {
        for a in adversary {
            let demotion = match (a.epochs_to_demotion, a.rounds_to_demotion) {
                (Some(e), Some(r)) => format!("demoted after epoch {e} (round {r})"),
                _ => "never demoted".to_string(),
            };
            let _ = write!(
                line,
                "\n      adversary v{} ({}): {demotion} | excluded {}x | \
                 slot share {:.1}% | evidence {}",
                a.validator,
                a.strategy,
                a.exclusions,
                a.leader_share_overall * 100.0,
                a.evidence_units,
            );
        }
    }
    if let Some(c) = &row.analysis.chaos {
        let _ = write!(
            line,
            "\n      chaos: delivered {} | dropped {} dup {} corrupt-rejected {} reordered {} \
             | retransmits {} | safety {} records, {} violations",
            c.delivered,
            c.dropped,
            c.duplicated,
            c.corrupt_rejected,
            c.reordered,
            c.retransmits,
            c.safety_records,
            c.safety_violations,
        );
    }
    line
}

/// The `--profile` line for a finished run: execution cost, not metrics.
pub fn render_profile(row: &RunRow) -> String {
    let p = &row.profile;
    let mut line = format!(
        "  profile {:<16} n={:<3} load={:<5} wall {:>7.3}s | {:>9} sim events | {:>10.0} events/s",
        row.run.variant,
        row.run.config.committee_size,
        row.run.config.load_tps,
        p.wall_s,
        p.sim_events,
        p.events_per_sec(),
    );
    if let Some(b) = &p.breakdown {
        let wall_ns = (p.wall_s * 1e9).max(1.0);
        let pct = |ns: u64| ns as f64 * 100.0 / wall_ns;
        let _ = write!(
            line,
            "\n  profile   breakdown: queue {:.1}% ({} ops) | deliver {:.1}% ({} msgs) | \
             timers {:.1}% ({}) | digest {:.1}% ({}) | sign/verify {:.1}% ({}) | \
             codec {:.1}% ({} frames)  [crypto+codec shares nest inside deliver]",
            pct(b.net.queue_ns),
            b.net.queue_ops,
            pct(b.net.deliver_ns),
            b.net.deliver_ops,
            pct(b.net.timer_ns),
            b.net.timer_ops,
            pct(b.crypto.digest_ns),
            b.crypto.digest_ops,
            pct(b.crypto.sig_ns),
            b.crypto.sig_ops,
            pct(b.crypto.codec_ns),
            b.crypto.codec_ops,
        );
    }
    line
}

/// The report header line.
pub fn render_header(report: &ScenarioReport) -> String {
    let mut line = format!("# scenario {}", report.name);
    if let Some(figure) = &report.figure {
        let _ = write!(line, " ({figure})");
    }
    if !report.description.is_empty() {
        let _ = write!(line, " — {}", report.description);
    }
    line
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

fn latency_json(latency: &LatencySummary) -> Json {
    Json::object()
        .with("count", Json::Int(latency.count as i64))
        .with("mean_s", Json::Float(latency.mean))
        .with("stddev_s", Json::Float(latency.stddev))
        .with("p50_s", Json::Float(latency.p50))
        .with("p95_s", Json::Float(latency.p95))
        .with("max_s", Json::Float(latency.max))
}

/// The per-run workload block: offered vs accepted vs committed
/// goodput, shed rate, byte goodput. Only rendered for scenarios that
/// declared a `[workload]` table.
fn workload_json(row: &RunRow) -> Json {
    let r = &row.result;
    let offered = r.submitted + r.client_skipped;
    let accepted = r.submitted.saturating_sub(r.shed);
    let elapsed = r.elapsed_secs.max(1e-6);
    let shed_rate = if r.submitted > 0 { r.shed as f64 / r.submitted as f64 } else { 0.0 };
    Json::object()
        .with("offered", Json::Int(offered as i64))
        .with("offered_tps", Json::Float(offered as f64 / elapsed))
        .with("submitted", Json::Int(r.submitted as i64))
        .with("accepted", Json::Int(accepted as i64))
        .with("committed", Json::Int(r.executed as i64))
        .with("goodput_tps", Json::Float(r.throughput_tps))
        .with("shed_rate", Json::Float(shed_rate))
        .with("payload_bytes", Json::Int(row.run.config.workload.payload_bytes as i64))
        .with("bytes_submitted", Json::Int(r.bytes_submitted as i64))
        .with("bytes_committed", Json::Int(r.bytes_committed as i64))
        .with("goodput_bytes_per_sec", Json::Float(r.bytes_committed as f64 / elapsed))
}

fn row_json(row: &RunRow, workload_declared: bool) -> Json {
    // Only inherently numeric labels render as JSON numbers; free-form
    // labels (variant, scoring, exclusion) stay strings even when they
    // happen to look numeric, so consumers see stable types.
    const NUMERIC_LABELS: &[&str] =
        &["committee", "faults", "load_tps", "duration_secs", "seed", "period_rounds"];
    let mut labels = Json::object();
    for (key, value) in &row.run.labels {
        let as_int: Option<i64> =
            if NUMERIC_LABELS.contains(&key.as_str()) { value.parse().ok() } else { None };
        labels = labels.with(
            key,
            match as_int {
                Some(i) => Json::Int(i),
                None => Json::Str(value.clone()),
            },
        );
    }
    let r = &row.result;
    let mut metrics = Json::object()
        .with("throughput_tps", Json::Float(r.throughput_tps))
        .with("latency", latency_json(&r.latency))
        .with("commit_latency", latency_json(&r.commit_latency))
        .with("commits", Json::Int(r.commits as i64))
        .with("leader_timeouts", Json::Int(r.leader_timeouts as i64))
        .with("submitted", Json::Int(r.submitted as i64))
        .with("client_skipped", Json::Int(r.client_skipped as i64))
        .with("shed", Json::Int(r.shed as i64))
        .with("schedule_epochs", Json::Int(r.schedule_epochs as i64))
        .with("agreement_ok", Json::Bool(r.agreement_ok))
        .with("chain_hash", Json::Str(r.chain_hash.to_string()));
    if workload_declared {
        metrics = metrics.with("workload", workload_json(row));
    }
    // Recovery counters appear only for runs that actually restarted (or
    // diverged), so fault-free reports keep their exact bytes.
    if r.restarts > 0 || r.recovery_divergence {
        metrics = metrics.with(
            "recovery",
            Json::object()
                .with("restarts", Json::Int(r.restarts as i64))
                .with("recovery_divergence", Json::Bool(r.recovery_divergence)),
        );
    }

    let mut out = Json::object().with("labels", labels).with("metrics", metrics);
    let a = &row.analysis;
    if !a.windows.is_empty()
        || a.skipped_rounds.is_some()
        || a.bg_churn.is_some()
        || a.reinclusion.is_some()
        || a.adversary.is_some()
        || a.chaos.is_some()
    {
        let mut analysis = Json::object();
        if !a.windows.is_empty() {
            analysis = analysis.with(
                "windows",
                Json::Array(
                    a.windows
                        .iter()
                        .map(|w| {
                            Json::object()
                                .with("name", Json::Str(w.name.clone()))
                                .with("latency", latency_json(&w.latency))
                        })
                        .collect(),
                ),
            );
        }
        if let Some(skipped) = a.skipped_rounds {
            analysis = analysis.with("skipped_leader_rounds", Json::Int(skipped as i64));
        }
        if let Some(last) = a.last_anchor_round {
            analysis = analysis.with("last_anchor_round", Json::Int(last as i64));
        }
        if let Some(churn) = a.bg_churn {
            analysis = analysis.with("bg_churn", Json::Int(churn as i64));
        }
        if let Some(reinclusion) = &a.reinclusion {
            let opt_round = |x: Option<u64>| match x {
                Some(r) => Json::Int(r as i64),
                None => Json::Null,
            };
            analysis = analysis.with(
                "reinclusion",
                Json::Array(
                    reinclusion
                        .iter()
                        .map(|r| {
                            Json::object()
                                .with("validator", Json::Int(r.validator as i64))
                                .with("recovered_at_us", Json::Int(r.recovered_at_us as i64))
                                .with("recovery_round", Json::Int(r.recovery_round as i64))
                                .with("first_leader_round", opt_round(r.first_leader_round))
                                .with("rounds_to_first_leader", opt_round(r.rounds_to_first_leader))
                                .with("first_commit_round", opt_round(r.first_commit_round))
                                .with("rounds_to_first_commit", opt_round(r.rounds_to_first_commit))
                                .with(
                                    "score_trajectory",
                                    Json::Array(
                                        r.score_trajectory
                                            .iter()
                                            .map(|s| Json::Int(*s as i64))
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            );
        }
        if let Some(adversary) = &a.adversary {
            let opt_int = |x: Option<u64>| match x {
                Some(v) => Json::Int(v as i64),
                None => Json::Null,
            };
            analysis = analysis.with(
                "adversary",
                Json::Array(
                    adversary
                        .iter()
                        .map(|adv| {
                            Json::object()
                                .with("validator", Json::Int(adv.validator as i64))
                                .with("strategy", Json::Str(adv.strategy.clone()))
                                .with("rounds_to_demotion", opt_int(adv.rounds_to_demotion))
                                .with("epochs_to_demotion", opt_int(adv.epochs_to_demotion))
                                .with("exclusions", Json::Int(adv.exclusions as i64))
                                .with("leader_share_overall", Json::Float(adv.leader_share_overall))
                                .with(
                                    "leader_share_by_epoch",
                                    Json::Array(
                                        adv.leader_share_by_epoch
                                            .iter()
                                            .map(|s| Json::Float(*s))
                                            .collect(),
                                    ),
                                )
                                .with("evidence_units", Json::Int(adv.evidence_units as i64))
                        })
                        .collect(),
                ),
            );
        }
        if let Some(c) = &a.chaos {
            analysis = analysis.with(
                "chaos",
                Json::object()
                    .with("delivered", Json::Int(c.delivered as i64))
                    .with("dropped", Json::Int(c.dropped as i64))
                    .with("duplicated", Json::Int(c.duplicated as i64))
                    .with("corrupt_rejected", Json::Int(c.corrupt_rejected as i64))
                    .with("reordered", Json::Int(c.reordered as i64))
                    .with("retransmits", Json::Int(c.retransmits as i64))
                    .with("safety_records", Json::Int(c.safety_records as i64))
                    .with("safety_violations", Json::Int(c.safety_violations as i64)),
            );
        }
        out = out.with("analysis", analysis);
    }
    out
}

/// Renders the whole report as deterministic JSON.
pub fn report_json(report: &ScenarioReport) -> Json {
    let limit = match report.limit {
        RunLimit::Duration => Json::Str("duration".into()),
        RunLimit::Rounds(n) => Json::object().with("rounds", Json::Int(n as i64)),
    };
    Json::object()
        .with("scenario", Json::Str(report.name.clone()))
        .with("description", Json::Str(report.description.clone()))
        .with(
            "figure",
            match &report.figure {
                Some(f) => Json::Str(f.clone()),
                None => Json::Null,
            },
        )
        .with("limit", limit)
        .with(
            "runs",
            Json::Array(
                report.rows.iter().map(|row| row_json(row, report.workload_declared)).collect(),
            ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PlanOptions, ScenarioSpec};

    fn tiny_spec(extra: &str) -> ScenarioSpec {
        ScenarioSpec::parse(&format!(
            r#"
name = "engine-test"
[committee]
size = 4
[load]
tps = 200
[run]
duration_secs = 3
warmup_secs = 1
[network]
model = "flat"
{extra}
"#
        ))
        .unwrap()
    }

    #[test]
    fn runs_plan_and_reports_metrics() {
        let plan = tiny_spec("").plan(&PlanOptions::default()).unwrap();
        let report = run_plan(&plan, RunLimit::Duration, false);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert!(row.result.agreement_ok);
        assert!(row.result.commits > 0);
        let json = report_json(&report).render();
        assert!(json.contains("\"scenario\": \"engine-test\""));
        assert!(json.contains("\"throughput_tps\""));
    }

    #[test]
    fn analyses_populate_when_requested() {
        let extra = r#"
[analysis]
skipped_rounds = true
schedule_churn = true
[[analysis.window]]
name = "early"
from_frac = 0.0
to_frac = 0.5
[[analysis.window]]
name = "late"
from_frac = 0.5
to_frac = 1.0
"#;
        let plan = tiny_spec(extra).plan(&PlanOptions::default()).unwrap();
        let report = run_plan(&plan, RunLimit::Duration, false);
        let a = &report.rows[0].analysis;
        assert_eq!(a.windows.len(), 2);
        assert!(a.skipped_rounds.is_some());
        assert!(a.bg_churn.is_some());
        let json = report_json(&report).render();
        assert!(json.contains("skipped_leader_rounds"));
        assert!(json.contains("\"early\""));
    }

    #[test]
    fn numeric_looking_variant_labels_stay_strings() {
        let spec = ScenarioSpec::parse(
            r#"
name = "labels"
[committee]
size = 4
[run]
duration_secs = 2
warmup_secs = 1
[network]
model = "flat"
[[variant]]
label = "120"
period_rounds = 120
"#,
        )
        .unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        let report = run_plan(&plan, RunLimit::Duration, false);
        let json = report_json(&report).render();
        assert!(json.contains("\"variant\": \"120\""), "free-form label must stay a string");
        assert!(json.contains("\"period_rounds\": 120"), "numeric label renders as a number");
    }

    #[test]
    fn identical_seeds_render_identical_json() {
        let plan = tiny_spec("").plan(&PlanOptions::default()).unwrap();
        let a = report_json(&run_plan(&plan, RunLimit::Duration, false)).render();
        let b = report_json(&run_plan(&plan, RunLimit::Duration, false)).render();
        assert_eq!(a, b);
    }

    #[test]
    fn verbose_and_quiet_runs_build_the_same_report() {
        // Progress printing lives in the report layer, outside the
        // execution path — toggling it must not change a byte of the
        // report.
        let extra = r#"
[analysis]
skipped_rounds = true
[[analysis.window]]
name = "whole"
from_frac = 0.0
to_frac = 1.0
"#;
        let plan = tiny_spec(extra).plan(&PlanOptions::default()).unwrap();
        let quiet = report_json(&run_plan(&plan, RunLimit::Duration, false)).render();
        let verbose = report_json(&run_plan(&plan, RunLimit::Duration, true)).render();
        assert_eq!(quiet, verbose);
    }

    #[test]
    fn worker_count_does_not_change_the_json() {
        let spec = ScenarioSpec::parse(
            r#"
name = "jobs-test"
[committee]
size = 4
[load]
tps = [100, 200]
[run]
duration_secs = 2
warmup_secs = 1
seeds = [1, 2]
[network]
model = "flat"
[analysis]
skipped_rounds = true
[[analysis.window]]
name = "late"
from_frac = 0.5
to_frac = 1.0
"#,
        )
        .unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        let serial = report_json(&run_plan_with(
            &plan,
            RunLimit::Duration,
            &ExecOptions { jobs: 1, verbose: false, profile: false },
        ))
        .render();
        let pooled = report_json(&run_plan_with(
            &plan,
            RunLimit::Duration,
            &ExecOptions { jobs: 4, verbose: false, profile: false },
        ))
        .render();
        assert_eq!(serial, pooled, "--jobs must never change report bytes");
    }
}
