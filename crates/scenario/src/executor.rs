//! Run execution: one planned run at a time, serially or on a worker
//! pool.
//!
//! The pipeline is `ScenarioPlan → Executor → ScenarioReport`: the plan
//! (from [`crate::spec`]) is an indexed list of independent simulated
//! runs, an [`Executor`] turns every index into a [`RunRow`], and the
//! report layer in [`crate::engine`] assembles and renders them. Runs
//! are *dispatched by index* and rows are always surfaced in plan
//! order, so the report — progress lines, text table, JSON bytes — is
//! identical whichever executor (or worker count) produced it.
//!
//! [`PooledExecutor`] uses scoped worker threads pulling indices off a
//! shared atomic counter (self-scheduling, so long runs never serialize
//! behind short ones) and sending finished rows back over the vendored
//! crossbeam channel. Workers never touch stdout; ordered emission
//! happens on the collecting thread. A panicking run — the Total Order
//! audit, above all — aborts the pool and is re-raised with the failing
//! run's labels attached.

use crate::engine::{
    AdversaryRow, AnalysisRow, ChaosRow, ReinclusionRow, RunProfile, RunRow, WindowRow,
};
use crate::spec::{AnalysisSpec, PlannedRun, ScenarioPlan};
use hh_sim::{collect_streamed_metrics, run_sim_streaming, MetricsSink, RunLimit, SimHandle};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Human-readable `k=v` labels of a planned run (panic messages,
/// progress rows).
pub(crate) fn describe(run: &PlannedRun) -> String {
    run.labels.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
}

/// Executes run `index` of the plan: streams the simulation into a
/// [`MetricsSink`] (with one accumulator per declared analysis window),
/// audits Total Order, and computes the declared analyses.
///
/// Pure in `(plan, index, limit)` — every executor produces the same
/// row for the same index, which is what makes the report independent
/// of scheduling.
///
/// # Panics
///
/// Panics if the run violates the Total Order audit — a safety
/// violation is never something to report as a data point.
pub(crate) fn execute_run(plan: &ScenarioPlan, index: usize, limit: RunLimit) -> RunRow {
    let started = std::time::Instant::now();
    // Thread-local baselines: the whole run executes on this thread, so
    // the counter movement from here to the end is exactly its cost.
    let profiling = hh_sim::prof::enabled();
    let net_before = hh_sim::prof::net_snapshot();
    let crypto_before = hh_sim::prof::crypto_snapshot();
    let run = &plan.runs[index];
    let config = &run.config;
    let duration_us = config.duration_secs * 1_000_000;
    let mut sink = MetricsSink::new(config.warmup_secs * 1_000_000);
    for window in &plan.analysis.windows {
        let from_us = (duration_us as f64 * window.from_frac) as u64;
        let to_us = (duration_us as f64 * window.to_frac) as u64;
        sink = sink.with_window(&window.name, from_us, to_us);
    }
    let (handle, end_us) = run_sim_streaming(config, limit, &mut sink);
    let result = collect_streamed_metrics(config, &handle, end_us, &mut sink);
    assert!(
        result.agreement_ok,
        "TOTAL ORDER VIOLATION in scenario `{}`, run {} ({})",
        plan.name,
        index,
        describe(run)
    );
    let mut analysis = analyze(&plan.analysis, run, &handle, end_us);
    if plan.analysis.chaos {
        // Network-level counters come off the simulator; the retransmit
        // and safety totals are already aggregated into the result.
        let stats = handle.sim.stats();
        analysis.chaos = Some(ChaosRow {
            delivered: stats.delivered,
            dropped: stats.chaos_dropped,
            duplicated: stats.chaos_duplicated,
            corrupt_rejected: stats.chaos_corrupt_rejected,
            reordered: stats.chaos_reordered,
            retransmits: result.rbc_retransmits,
            safety_records: result.safety_records,
            safety_violations: result.safety_violations,
        });
    }
    analysis.windows = sink
        .window_summaries()
        .into_iter()
        .map(|(name, latency)| WindowRow { name, latency })
        .collect();
    // Execution-cost sample: always taken (it is two reads), only
    // rendered under --profile, and kept out of the report output so
    // rows and JSON stay deterministic.
    let profile = RunProfile {
        wall_s: started.elapsed().as_secs_f64(),
        sim_events: handle.sim.stats().events,
        breakdown: profiling.then(|| crate::engine::ProfBreakdown {
            net: hh_sim::prof::net_snapshot().since(&net_before),
            crypto: hh_sim::prof::crypto_snapshot().since(&crypto_before),
        }),
    };
    RunRow { run: run.clone(), result, analysis, profile }
}

/// Computes the handle-derived analyses (skipped leader rounds, B/G
/// churn, re-inclusion). Window latencies come straight from the run's
/// sink.
fn analyze(spec: &AnalysisSpec, run: &PlannedRun, handle: &SimHandle, end_us: u64) -> AnalysisRow {
    let mut analysis = AnalysisRow::default();
    let config = &run.config;
    // Live at the actual stop, matching the metrics collectors.
    let live: Vec<usize> = config.faults.live_at(handle.n_validators, end_us);

    if spec.skipped_rounds {
        // Lemma 6: count even (anchor) rounds at or below the last
        // committed anchor that never committed, in the most advanced
        // live validator's view.
        let anchors = live
            .iter()
            .map(|i| handle.validator(*i).committed_anchors().to_vec())
            .max_by_key(|a| a.len())
            .unwrap_or_default();
        let last = anchors.last().map(|a| a.round.0).unwrap_or(0);
        let committed: std::collections::HashSet<u64> = anchors.iter().map(|a| a.round.0).collect();
        let skipped = (0..=last).step_by(2).filter(|r| !committed.contains(r)).count() as u64;
        analysis.skipped_rounds = Some(skipped);
        analysis.last_anchor_round = Some(last);
    }

    if spec.schedule_churn {
        let churn = live
            .iter()
            .filter_map(|i| handle.validator(*i).hammerhead_policy())
            .map(|p| p.epoch_history().iter().map(|e| e.excluded.len() as u64).sum::<u64>())
            .max()
            .unwrap_or(0);
        analysis.bg_churn = Some(churn);
    }

    if spec.reinclusion {
        analysis.reinclusion = Some(reinclusion_rows(&live, handle));
    }

    if spec.adversary {
        analysis.adversary = Some(adversary_rows(run, &live, handle));
    }

    analysis
}

/// The adversary analysis: for every byzantine validator, how fast the
/// schedule demoted it (rounds and epochs to its first exclusion), how
/// its leader-slot share evolved across epochs, and how much
/// equivocation evidence the network holds against it.
///
/// Judged through the most advanced live validator's view, like the
/// re-inclusion analysis: its schedule history resolves `leader_at` for
/// every committed round and its evidence ledger is as complete as any
/// honest node's.
fn adversary_rows(run: &PlannedRun, live: &[usize], handle: &SimHandle) -> Vec<AdversaryRow> {
    let observer_index = live
        .iter()
        .copied()
        .max_by_key(|i| (handle.validator(*i).commit_count(), std::cmp::Reverse(*i)));
    let Some(observer_index) = observer_index else {
        return Vec::new();
    };
    let observer = handle.validator(observer_index);
    let last_anchor_round = observer.committed_anchors().last().map(|a| a.round.0).unwrap_or(0);
    let schedule = &run.config.byzantine;

    // Leader-slot share of `v` over the even (anchor) rounds in
    // `[from, until)`.
    let share_over = |from: u64, until: u64, v: hh_types::ValidatorId| -> f64 {
        let from = from + (from % 2);
        let slots = (from..until).step_by(2);
        let (mut held, mut total) = (0u64, 0u64);
        for r in slots {
            total += 1;
            if observer.leader_at(hh_types::Round(r)) == v {
                held += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            held as f64 / total as f64
        }
    };

    schedule
        .nodes()
        .into_iter()
        .map(|node| {
            let v = hh_types::ValidatorId(node);
            let mut labels: Vec<&str> = schedule
                .entries()
                .iter()
                .filter(|e| e.node == node)
                .map(|e| e.strategy.label())
                .collect();
            labels.dedup();
            let mut rounds_to_demotion = None;
            let mut epochs_to_demotion = None;
            let mut exclusions = 0u64;
            let mut leader_share_by_epoch = Vec::new();
            if let Some(p) = observer.hammerhead_policy() {
                // Epoch k's schedule governs the rounds between boundary
                // k-1's new round and boundary k's.
                let mut span_start = 0u64;
                for summary in p.epoch_history() {
                    let boundary = summary.new_initial_round.0;
                    leader_share_by_epoch.push(share_over(span_start, boundary, v));
                    if summary.excluded.contains(&v) {
                        exclusions += 1;
                        if epochs_to_demotion.is_none() {
                            epochs_to_demotion = Some(summary.epoch);
                            rounds_to_demotion = Some(boundary);
                        }
                    }
                    span_start = boundary;
                }
            }
            AdversaryRow {
                validator: node,
                strategy: labels.join("+"),
                rounds_to_demotion,
                epochs_to_demotion,
                exclusions,
                leader_share_overall: share_over(0, last_anchor_round + 1, v),
                leader_share_by_epoch,
                evidence_units: observer.equivocation_evidence().count_for(v),
            }
        })
        .collect()
}

/// The re-inclusion analysis: for every recovered validator, how long the
/// schedule took to hand it a leader slot again and how long until its
/// first committed anchor, measured in rounds from the network round at
/// its recovery (sampled by the sim driver), plus its per-epoch score
/// trajectory under HammerHead.
///
/// Rounds are judged through the most advanced live validator's view —
/// its schedule history resolves `leader_at` for every committed round,
/// and its committed anchors bound the search (a slot past the last
/// anchor is unknown, not pending).
fn reinclusion_rows(live: &[usize], handle: &SimHandle) -> Vec<ReinclusionRow> {
    // Most advanced live validator; ties break toward the lowest index.
    let observer_index = live
        .iter()
        .copied()
        .max_by_key(|i| (handle.validator(*i).commit_count(), std::cmp::Reverse(*i)));
    let Some(observer_index) = observer_index else {
        return Vec::new();
    };
    let observer = handle.validator(observer_index);
    let anchors = observer.committed_anchors();
    let last_anchor_round = anchors.last().map(|a| a.round.0).unwrap_or(0);

    handle
        .recovery_samples
        .iter()
        .map(|sample| {
            let v = hh_types::ValidatorId(sample.validator);
            let recovery_round = sample.network_round;
            // Leader slots live on even rounds; scan from the first even
            // round at or after recovery up to the last committed anchor.
            let first_even = recovery_round + (recovery_round % 2);
            let first_leader_round = (first_even..=last_anchor_round)
                .step_by(2)
                .find(|r| observer.leader_at(hh_types::Round(*r)) == v);
            let first_commit_round = anchors
                .iter()
                .find(|a| a.author == v && a.round.0 >= recovery_round)
                .map(|a| a.round.0);
            let score_trajectory = observer
                .hammerhead_policy()
                .map(|p| {
                    p.epoch_history()
                        .iter()
                        .map(|e| e.final_scores.get(v.index()).copied().unwrap_or(0))
                        .collect()
                })
                .unwrap_or_default();
            ReinclusionRow {
                validator: sample.validator,
                recovered_at_us: sample.at_us,
                recovery_round,
                first_leader_round,
                rounds_to_first_leader: first_leader_round.map(|r| r - recovery_round),
                first_commit_round,
                rounds_to_first_commit: first_commit_round.map(|r| r - recovery_round),
                score_trajectory,
            }
        })
        .collect()
}

/// Turns every run of a plan into a [`RunRow`].
///
/// Implementations must call `emit` exactly once per run, in plan order
/// (run 0 first), each call made after that run finished — the report
/// layer relies on this for race-free ordered progress output — and
/// return the rows in plan order.
pub trait Executor {
    /// Executes the whole plan.
    fn execute(
        &self,
        plan: &ScenarioPlan,
        limit: RunLimit,
        emit: &mut dyn FnMut(&RunRow),
    ) -> Vec<RunRow>;
}

/// Runs everything on the calling thread, in plan order.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn execute(
        &self,
        plan: &ScenarioPlan,
        limit: RunLimit,
        emit: &mut dyn FnMut(&RunRow),
    ) -> Vec<RunRow> {
        (0..plan.runs.len())
            .map(|index| {
                let row = execute_run(plan, index, limit);
                emit(&row);
                row
            })
            .collect()
    }
}

/// Runs the plan on `jobs` scoped worker threads.
///
/// Indices are claimed from a shared atomic counter, so workers
/// self-schedule: whoever finishes first takes the next run, keeping
/// every thread busy through uneven run lengths. Finished rows flow
/// back over an unbounded crossbeam channel to the collecting thread,
/// which buffers out-of-order arrivals and emits strictly in plan
/// order.
#[derive(Clone, Copy, Debug)]
pub struct PooledExecutor {
    jobs: usize,
}

impl PooledExecutor {
    /// An executor with `jobs` workers (at least 1).
    pub fn new(jobs: usize) -> Self {
        PooledExecutor { jobs: jobs.max(1) }
    }
}

impl Executor for PooledExecutor {
    fn execute(
        &self,
        plan: &ScenarioPlan,
        limit: RunLimit,
        emit: &mut dyn FnMut(&RunRow),
    ) -> Vec<RunRow> {
        let total = plan.runs.len();
        let jobs = self.jobs.min(total);
        if jobs <= 1 {
            return SerialExecutor.execute(plan, limit, emit);
        }

        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let (row_tx, row_rx) = crossbeam::channel::unbounded();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let row_tx = row_tx.clone();
                let (next, abort) = (&next, &abort);
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total || abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| execute_run(plan, index, limit)));
                    let failed = outcome.is_err();
                    if row_tx.send((index, outcome)).is_err() || failed {
                        break;
                    }
                });
            }
            drop(row_tx);

            let mut slots: Vec<Option<RunRow>> = (0..total).map(|_| None).collect();
            let mut emitted = 0;
            for (index, outcome) in row_rx.iter() {
                match outcome {
                    Ok(row) => {
                        slots[index] = Some(row);
                        while emitted < total {
                            match &slots[emitted] {
                                Some(row) => emit(row),
                                None => break,
                            }
                            emitted += 1;
                        }
                    }
                    Err(payload) => {
                        // Stop handing out new work, then re-raise with
                        // the failing run's labels so a Total Order
                        // violation in a 300-run sweep names its run.
                        abort.store(true, Ordering::Relaxed);
                        let labels = describe(&plan.runs[index]);
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned());
                        match message {
                            Some(m) => panic!("run {index} ({labels}) failed: {m}"),
                            None => {
                                // Opaque payloads can't be wrapped without
                                // losing them — name the run on stderr,
                                // then re-raise the original.
                                eprintln!("run {index} ({labels}) failed; re-raising its panic");
                                std::panic::resume_unwind(payload)
                            }
                        }
                    }
                }
            }
            slots
                .into_iter()
                .enumerate()
                .map(|(i, slot)| slot.unwrap_or_else(|| panic!("run {i} produced no row")))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PlanOptions, ScenarioSpec};

    fn sweep_plan() -> ScenarioPlan {
        ScenarioSpec::parse(
            r#"
name = "executor-test"
[committee]
size = 4
[load]
tps = [100, 200, 300]
[run]
duration_secs = 2
warmup_secs = 1
seeds = [1, 2]
[network]
model = "flat"
"#,
        )
        .expect("parses")
        .plan(&PlanOptions::default())
        .expect("plans")
    }

    #[test]
    fn pooled_rows_match_serial_in_order_and_content() {
        let plan = sweep_plan();
        assert_eq!(plan.runs.len(), 6);
        let mut serial_seen = Vec::new();
        let serial = SerialExecutor.execute(&plan, RunLimit::Duration, &mut |row| {
            serial_seen.push(row.run.labels.clone())
        });
        let mut pooled_seen = Vec::new();
        let pooled = PooledExecutor::new(3).execute(&plan, RunLimit::Duration, &mut |row| {
            pooled_seen.push(row.run.labels.clone())
        });

        assert_eq!(serial_seen, pooled_seen, "emission order must be plan order");
        assert_eq!(serial.len(), pooled.len());
        for (s, p) in serial.iter().zip(&pooled) {
            assert_eq!(s.run.labels, p.run.labels);
            assert_eq!(s.result.chain_hash, p.result.chain_hash);
            assert_eq!(s.result.throughput_tps, p.result.throughput_tps);
            assert_eq!(s.result.latency, p.result.latency);
        }
    }

    #[test]
    fn pooled_with_more_workers_than_runs_still_completes() {
        let plan = sweep_plan();
        let rows = PooledExecutor::new(64).execute(&plan, RunLimit::Rounds(20), &mut |_| {});
        assert_eq!(rows.len(), plan.runs.len());
        assert!(rows.iter().all(|r| r.result.agreement_ok));
    }

    #[test]
    fn pooled_panic_carries_run_labels() {
        // A plan whose second run cannot even build (everyone crashed)
        // panics inside a worker; the pool must re-raise on the calling
        // thread with that run's labels attached, not hang or lose it.
        let good = sweep_plan();
        let mut bad_config = good.runs[0].config.clone();
        bad_config.faults = hh_sim::FaultSchedule::new().crash_from_start([0, 1, 2, 3]);
        let bad = PlannedRun {
            variant: "doomed".into(),
            system: "bullshark".into(),
            labels: vec![("variant".into(), "doomed".into()), ("committee".into(), "4".into())],
            fault_count: 4,
            config: bad_config,
        };
        let plan = ScenarioPlan {
            name: "panic-test".into(),
            description: String::new(),
            figure: None,
            runs: vec![good.runs[0].clone(), bad],
            analysis: AnalysisSpec::default(),
            workload_declared: false,
        };

        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            PooledExecutor::new(2).execute(&plan, RunLimit::Rounds(10), &mut |_| {})
        }));
        let payload = result.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("variant=doomed"),
            "panic message should carry the failing run's labels, got: {message}"
        );
    }
}
