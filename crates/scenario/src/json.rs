//! A small JSON value and pretty-printer.
//!
//! Scenario reports are machine-readable JSON (`BENCH_*.json`-style).
//! The workspace carries no serde (`DESIGN.md` §5), so this module
//! provides the write side only: a [`Json`] tree and a deterministic
//! renderer. Object keys keep insertion order, which is what lets the
//! golden-shape test pin the output format.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with enough digits to round-trip).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair (builder style; meaningful on
    /// [`Json::Object`] only).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn with(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Object(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Json::with on non-object {other:?}"),
        }
        self
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that
                    // round-trips; normalize integral floats to keep a
                    // decimal point so consumers see a stable type.
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') {
                        out.push_str(&s);
                    } else {
                        let _ = write!(out, "{s}.0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::object()
            .with("name", Json::Str("x".into()))
            .with("n", Json::Int(3))
            .with("rate", Json::Float(1.5))
            .with("whole", Json::Float(2.0))
            .with("ok", Json::Bool(true))
            .with("none", Json::Null)
            .with("xs", Json::Array(vec![Json::Int(1), Json::Int(2)]))
            .with("empty", Json::Array(vec![]))
            .with("sub", Json::object().with("k", Json::Str("v".into())));
        let text = doc.render();
        assert!(text.contains("\"name\": \"x\""));
        assert!(text.contains("\"whole\": 2.0"), "integral float keeps its point: {text}");
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let text = Json::Str("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null\n");
    }
}
