//! Declarative scenario engine for the HammerHead reproduction.
//!
//! Every claim in the paper is a *scenario* — a committee shape, a load,
//! a fault schedule, a scheduling configuration, and the metrics that
//! come out. This crate turns those from hard-coded binaries into data:
//!
//! * a TOML schema (see `docs/scenarios.md`) parsed and validated by
//!   [`ScenarioSpec`] — unknown keys and unrunnable parameter
//!   combinations are rejected up front;
//! * axis expansion ([`ScenarioSpec::plan`]): list-valued knobs
//!   (committee sizes, loads, seeds, periods…) expand into the cross
//!   product of concrete [`hh_sim::ExperimentConfig`]s;
//! * a `plan → executor → report` pipeline: an [`Executor`] (serial or
//!   a scoped worker pool, [`run_plan_with`] + [`ExecOptions`]) turns
//!   every planned run into a row via the streaming bounded-memory
//!   metrics sink, and the report layer assembles a [`ScenarioReport`]
//!   with the paper's metrics plus declared analyses (latency windows,
//!   skipped leader rounds, B/G churn);
//! * deterministic JSON output ([`report_json`]) — same seeds, same
//!   bytes, for any `--jobs` worker count;
//! * the `hh-cli` binary: `hh-cli run scenarios/fig1_faultless.toml`,
//!   `hh-cli list`, `hh-cli matrix`, `hh-cli validate`.
//!
//! The checked-in scenario files under `scenarios/` reproduce the
//! paper's figures; the seven binaries in `hh-bench` are thin wrappers
//! over them.
//!
//! # Example
//!
//! ```
//! use hh_scenario::{PlanOptions, RunLimit, ScenarioSpec};
//!
//! let spec = ScenarioSpec::parse(r#"
//! name = "smoke"
//! [committee]
//! size = 4
//! [run]
//! duration_secs = 2
//! warmup_secs = 1
//! [network]
//! model = "flat"
//! "#).unwrap();
//! let plan = spec.plan(&PlanOptions::default()).unwrap();
//! let report = hh_scenario::run_plan(&plan, RunLimit::Duration, false);
//! assert!(report.rows[0].result.agreement_ok);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod engine;
mod executor;
mod json;
mod spec;
pub mod toml;

pub use engine::{
    render_header, render_profile, render_row, report_json, run_plan, run_plan_with, AdversaryRow,
    AnalysisRow, ExecOptions, ReinclusionRow, RunProfile, RunRow, ScenarioReport, WindowRow,
};
pub use executor::{Executor, PooledExecutor, SerialExecutor};
pub use hh_sim::RunLimit;
pub use json::Json;
pub use spec::{
    parse_scoring, scoring_name, AnalysisSpec, ArrivalSpec, ByzantineEntrySpec,
    ByzantineStrategySpec, CountExpr, ExclusionSpec, FaultsSpec, NetworkSpec, NodeSel,
    PartitionEntry, PartitionSel, PlanOptions, PlannedRun, QuickSpec, RateSpec, ScenarioError,
    ScenarioPlan, ScenarioSpec, SlowdownEntry, SystemSpec, TimedFaultEntry, VariantSpec, WhenSpec,
    WindowSpec, WorkloadPhaseSpec, WorkloadSpec,
};

use std::path::{Path, PathBuf};

/// Loads and parses a scenario file.
pub fn load_scenario(path: &Path) -> Result<ScenarioSpec, ScenarioError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
    ScenarioSpec::parse(&text)
}

/// The repository's `scenarios/` directory, resolved relative to this
/// crate at compile time — lets the `hh-bench` wrappers find their
/// scenario files regardless of the working directory.
pub fn repo_scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}
