//! The scenario schema: parsing, validation and expansion into concrete
//! [`ExperimentConfig`]s.
//!
//! A scenario file is declarative: it names the committee/load/duration/
//! seed *axes* (scalar or list — lists expand to the cross product), the
//! system variants to compare, the fault schedule, and optional analyses.
//! [`ScenarioSpec::parse`] rejects unknown keys and invalid parameter
//! combinations up front, so a typo'd knob fails loudly instead of
//! silently running the default. The full schema is documented in
//! `docs/scenarios.md`.

use crate::toml::{self, TomlError, Value};
use hammerhead::{HammerheadConfig, ScheduleConfig, ScoringRule};
use hh_sim::{
    Arrival, ByzantineSchedule, ChaosEntry, ChaosSchedule, ChaosTarget, ExperimentConfig,
    FaultSchedule, Phase, SubmissionMode, SystemKind, Workload, MAX_PAYLOAD_BYTES,
};
use hh_types::{Committee, Stake, ValidatorId, TX_HEADER_BYTES};
use std::collections::BTreeMap;
use std::fmt;

/// Anything that can go wrong turning scenario text into a run plan.
#[derive(Clone, Debug)]
pub enum ScenarioError {
    /// The TOML itself does not parse.
    Toml(TomlError),
    /// The TOML parses but does not match the schema.
    Schema(String),
    /// The spec matches the schema but describes an unrunnable experiment.
    Invalid(String),
    /// Reading the scenario file failed.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Toml(e) => write!(f, "{e}"),
            ScenarioError::Schema(m) => write!(f, "schema error: {m}"),
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
            ScenarioError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<TomlError> for ScenarioError {
    fn from(e: TomlError) -> Self {
        ScenarioError::Toml(e)
    }
}

/// Which system a variant benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemSpec {
    /// Static stake-weighted round-robin Bullshark (the baseline).
    Bullshark,
    /// HammerHead reputation scheduling.
    Hammerhead,
    /// One pinned leader (the §7 extreme; ablations only).
    StaticLeader,
}

impl SystemSpec {
    fn parse(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "bullshark" | "round-robin" => Ok(SystemSpec::Bullshark),
            "hammerhead" => Ok(SystemSpec::Hammerhead),
            "static-leader" => Ok(SystemSpec::StaticLeader),
            other => Err(ScenarioError::Schema(format!(
                "unknown system `{other}` (expected bullshark, hammerhead or static-leader)"
            ))),
        }
    }

    /// The label used in output rows.
    pub fn label(self) -> &'static str {
        match self {
            SystemSpec::Bullshark => "bullshark",
            SystemSpec::Hammerhead => "hammerhead",
            SystemSpec::StaticLeader => "static-leader",
        }
    }
}

/// The link-latency model of a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkSpec {
    /// The paper's 13-region AWS matrix.
    Geo,
    /// A flat network with the given constant one-way delay.
    Flat {
        /// One-way delay in milliseconds.
        ms: u64,
    },
}

/// The schedule-exclusion budget (set `B`'s stake bound).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExclusionSpec {
    /// The committee's `f` (the paper's benchmark setting).
    F,
    /// A percentage of total committee stake (Sui mainnet runs 20%).
    Pct(u64),
    /// An absolute stake amount.
    Stake(u64),
}

impl ExclusionSpec {
    fn to_config(self, committee: &Committee) -> Option<Stake> {
        match self {
            ExclusionSpec::F => None,
            ExclusionSpec::Pct(pct) => Some(Stake(committee.total_stake().0 * pct / 100)),
            ExclusionSpec::Stake(s) => Some(Stake(s)),
        }
    }

    fn label(self) -> String {
        match self {
            ExclusionSpec::F => "f".to_string(),
            ExclusionSpec::Pct(p) => format!("{p}%"),
            ExclusionSpec::Stake(s) => format!("stake{s}"),
        }
    }
}

/// Parses a scoring-rule name (`vote-based`, `leader-outcome`,
/// `vote-ema-<alpha>`).
pub fn parse_scoring(s: &str) -> Result<ScoringRule, ScenarioError> {
    if s == "vote-based" {
        return Ok(ScoringRule::VoteBased);
    }
    if s == "leader-outcome" {
        return Ok(ScoringRule::LeaderOutcome);
    }
    if let Some(alpha) = s.strip_prefix("vote-ema-") {
        let alpha_percent: u8 = alpha
            .parse()
            .map_err(|_| ScenarioError::Schema(format!("bad vote-ema alpha in `{s}`")))?;
        return Ok(ScoringRule::VoteEma { alpha_percent });
    }
    Err(ScenarioError::Schema(format!(
        "unknown scoring rule `{s}` (expected vote-based, leader-outcome or vote-ema-<alpha>)"
    )))
}

/// Formats a scoring rule back to its scenario-file name.
pub fn scoring_name(rule: ScoringRule) -> String {
    match rule {
        ScoringRule::VoteBased => "vote-based".to_string(),
        ScoringRule::LeaderOutcome => "leader-outcome".to_string(),
        ScoringRule::VoteEma { alpha_percent } => format!("vote-ema-{alpha_percent}"),
    }
}

/// A validator count: absolute, or derived from the committee size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountExpr {
    /// Exactly this many validators.
    Abs(u64),
    /// `max(1, committee_size / k)` — "one in every k", as in the paper's
    /// "10% of validators" (`"n/10"`) or "maximum tolerable faults"
    /// (`"n/3"`).
    DivN(u64),
}

impl CountExpr {
    fn parse(value: &Value) -> Result<Self, ScenarioError> {
        match value {
            Value::Int(i) if *i >= 0 => Ok(CountExpr::Abs(*i as u64)),
            Value::Str(s) => {
                let k = s
                    .strip_prefix("n/")
                    .and_then(|k| k.parse::<u64>().ok())
                    .filter(|k| *k > 0)
                    .ok_or_else(|| {
                        ScenarioError::Schema(format!(
                            "bad count `{s}` (expected an integer or \"n/<k>\")"
                        ))
                    })?;
                Ok(CountExpr::DivN(k))
            }
            other => Err(ScenarioError::Schema(format!(
                "bad count `{other:?}` (expected an integer or \"n/<k>\")"
            ))),
        }
    }

    /// Resolves against a committee size.
    pub fn resolve(self, committee_size: usize) -> usize {
        match self {
            CountExpr::Abs(k) => k as usize,
            CountExpr::DivN(k) => (committee_size / k as usize).max(1),
        }
    }

    fn to_value(self) -> Value {
        match self {
            CountExpr::Abs(k) => Value::Int(k as i64),
            CountExpr::DivN(k) => Value::Str(format!("n/{k}")),
        }
    }
}

/// One named system configuration under test.
#[derive(Clone, Debug, PartialEq)]
pub struct VariantSpec {
    /// Output label for this variant's rows.
    pub label: String,
    /// System override (defaults to hammerhead).
    pub system: SystemSpec,
    /// Pinned leader for [`SystemSpec::StaticLeader`].
    pub static_leader: u16,
    /// Scoring-rule override.
    pub scoring: Option<ScoringRule>,
    /// Period override.
    pub period_rounds: Option<u64>,
    /// Exclusion-budget override.
    pub exclusion: Option<ExclusionSpec>,
}

/// When a fault event fires or a window opens/closes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WhenSpec {
    /// At an absolute simulated second.
    Secs(u64),
    /// At this fraction of the run duration (resolved per-run, so a
    /// "degrade halfway" scenario scales with `--duration`).
    Frac(f64),
}

impl WhenSpec {
    /// Resolves to microseconds of simulated time for a run of
    /// `duration_secs`.
    pub fn resolve_us(self, duration_secs: u64) -> u64 {
        match self {
            WhenSpec::Secs(secs) => secs * 1_000_000,
            WhenSpec::Frac(frac) => (duration_secs as f64 * frac * 1e6) as u64,
        }
    }
}

/// Which validators a fault hits.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeSel {
    /// Explicit validator ids.
    Ids(Vec<u16>),
    /// The first `count` validators (low ids hold early leader slots).
    First(CountExpr),
}

/// One slowdown window from the scenario's fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowdownEntry {
    /// Affected validators.
    pub nodes: NodeSel,
    /// Window start.
    pub at: WhenSpec,
    /// Window end; `None` degrades until the end of the run.
    pub until: Option<WhenSpec>,
    /// Extra one-way delay while degraded, in milliseconds.
    pub extra_ms: u64,
}

/// One timed crash or recovery event (`[[faults.crash]]` /
/// `[[faults.recover]]`).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedFaultEntry {
    /// Affected validators.
    pub nodes: NodeSel,
    /// When the event fires.
    pub at: WhenSpec,
}

/// Which validators a partition cuts off from the rest.
#[derive(Clone, Debug, PartialEq)]
pub enum PartitionSel {
    /// Explicit groups on each side of the cut.
    Groups {
        /// One side.
        a: Vec<u16>,
        /// The other side.
        b: Vec<u16>,
    },
    /// The first `count` validators against everyone else (scales with
    /// the committee axis).
    IsolateFirst(CountExpr),
}

/// One partition window (`[[faults.partition]]`).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionEntry {
    /// The cut.
    pub sel: PartitionSel,
    /// Window start.
    pub from: WhenSpec,
    /// Heal time.
    pub until: WhenSpec,
}

/// The strategy of one `[[faults.byzantine]]` entry — the declarative
/// form of [`hh_sim::ByzantineStrategy`], with times in scenario units
/// (ms delays, whole-second flip periods).
#[derive(Clone, Debug, PartialEq)]
pub enum ByzantineStrategySpec {
    /// Broadcast a conflicting twin before every own vertex.
    Equivocate,
    /// Drop inbound vertex pushes from `targets`, forcing own proposals
    /// to wait for the slowest quorum.
    WithholdVotes {
        /// Victim validators whose pushes are ignored (≤ f of them).
        targets: Vec<u16>,
    },
    /// Hold every own broadcast back by a fixed delay.
    LazyLeader {
        /// Delay in milliseconds.
        delay_ms: u64,
    },
    /// Alternate honest and lazy half-periods.
    FlipFlop {
        /// Half-period length in seconds.
        flip_secs: u64,
        /// Delay in milliseconds during lazy half-periods.
        delay_ms: u64,
    },
}

/// One byzantine window (`[[faults.byzantine]]`).
#[derive(Clone, Debug, PartialEq)]
pub struct ByzantineEntrySpec {
    /// The attacker.
    pub node: u16,
    /// What it does.
    pub strategy: ByzantineStrategySpec,
    /// Window start.
    pub from: WhenSpec,
    /// Window end (`None` = until the run ends).
    pub until: Option<WhenSpec>,
}

/// One chaos window (`[[faults.chaos]]`) — the declarative form of
/// [`hh_sim::ChaosEntry`], with the reorder bound in milliseconds.
///
/// Scope defaults to every link; `node` narrows it to one validator's
/// links (inbound and outbound), `link` to one directed pair.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosEntrySpec {
    /// Afflict only this validator's links, when set.
    pub node: Option<u16>,
    /// Afflict only the directed `(from, to)` link, when set.
    pub link: Option<(u16, u16)>,
    /// Window start.
    pub from: WhenSpec,
    /// Window end (`None` = until the run ends).
    pub until: Option<WhenSpec>,
    /// Probability a frame is dropped outright.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame's encoded bytes are flipped in flight.
    pub corrupt: f64,
    /// Maximum extra per-frame delay in milliseconds, drawn uniformly.
    pub reorder_ms: u64,
}

/// The scenario's fault schedule — the declarative form of
/// [`hh_sim::FaultSchedule`], resolved per planned run (committee size
/// and duration fix the `n/k` counts and `*_frac` times).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultsSpec {
    /// Explicitly crashed validator ids (from t=0).
    pub crashed: Vec<u16>,
    /// Crash the last `count` validators from t=0 (Fig. 2's setting).
    pub crash_last: Option<CountExpr>,
    /// Slowdown windows (the §1 incident's shape).
    pub slowdowns: Vec<SlowdownEntry>,
    /// Mid-run crash events.
    pub crashes: Vec<TimedFaultEntry>,
    /// Recovery events (each must follow a crash of the same validator;
    /// recovered nodes replay their WAL through `Validator::on_restart`).
    pub recovers: Vec<TimedFaultEntry>,
    /// Partition windows.
    pub partitions: Vec<PartitionEntry>,
    /// Byzantine strategy windows (the adversary suite).
    pub byzantine: Vec<ByzantineEntrySpec>,
    /// Adverse-network chaos windows (frame drop / duplicate / corrupt /
    /// reorder on selected links).
    pub chaos: Vec<ChaosEntrySpec>,
}

/// The arrival process of a `[workload]` table or `[[workload.phase]]`
/// entry — the declarative form of [`hh_sim::Arrival`], with rates as
/// scales on the run's `[load] tps` axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalSpec {
    /// Fixed-rate with ±10% jitter (the `[load] tps` sugar).
    Constant,
    /// Exponential inter-arrivals at the same mean rate.
    Poisson,
    /// `burst_secs` on at the scaled rate, `idle_secs` off, repeating.
    OnOff {
        /// Burst length, seconds.
        burst_secs: f64,
        /// Idle gap, seconds.
        idle_secs: f64,
    },
    /// Rate interpolated linearly across the phase (or whole run).
    Ramp {
        /// Scale at the phase start (default 0).
        from_scale: f64,
        /// Scale at the phase end.
        to_scale: f64,
    },
}

/// The rate of one workload phase, relative or absolute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateSpec {
    /// A multiplier on the run's `[load] tps` value (sweeps with the
    /// load axis).
    Scale(f64),
    /// An absolute rate in tx/s (divided by the run's load to recover
    /// the scale; requires a non-zero load).
    Tps(u64),
}

/// One `[[workload.phase]]` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadPhaseSpec {
    /// Phase start (`from_secs` / `from_frac`); the first phase must
    /// start at 0.
    pub from: WhenSpec,
    /// The phase's rate (ignored by [`ArrivalSpec::Ramp`], which
    /// carries its own scales).
    pub rate: RateSpec,
    /// The arrival process in force.
    pub arrival: ArrivalSpec,
}

/// The `[workload]` table — the declarative form of
/// [`hh_sim::Workload`], resolved per planned run (duration fixes
/// `from_frac` instants, the load axis fixes absolute `tps` rates).
///
/// A scenario without this table desugars to a constant closed-loop
/// workload at the `[load] tps` rate — the historical client, bit for
/// bit.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Whether the scenario wrote a `[workload]` table at all. Only
    /// declared workloads add the per-run `workload` block (offered vs
    /// accepted vs committed goodput, shed rate, byte goodput) to the
    /// report, keeping legacy scenario JSON byte-identical.
    pub declared: bool,
    /// Open- vs closed-loop submission.
    pub mode: SubmissionMode,
    /// Modeled payload bytes per transaction.
    pub payload_bytes: u32,
    /// Heaviest/lightest per-client rate ratio (1 = uniform).
    pub spread: f64,
    /// Proposer block byte bound, when set.
    pub block_bytes: Option<u64>,
    /// Single-phase arrival process (used when `phases` is empty).
    pub arrival: ArrivalSpec,
    /// Multi-phase timeline; non-empty replaces `arrival`.
    pub phases: Vec<WorkloadPhaseSpec>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            declared: false,
            mode: SubmissionMode::Closed,
            payload_bytes: 0,
            spread: 1.0,
            block_bytes: None,
            arrival: ArrivalSpec::Constant,
            phases: Vec::new(),
        }
    }
}

impl WorkloadSpec {
    fn lower_arrival(arrival: &ArrivalSpec, scale: f64) -> Arrival {
        match *arrival {
            ArrivalSpec::Constant => Arrival::Constant { scale },
            ArrivalSpec::Poisson => Arrival::Poisson { scale },
            ArrivalSpec::OnOff { burst_secs, idle_secs } => {
                Arrival::OnOff { scale, burst_secs, idle_secs }
            }
            ArrivalSpec::Ramp { from_scale, to_scale } => Arrival::Ramp { from_scale, to_scale },
        }
    }

    /// Resolves the declarative workload against a run of `duration`
    /// seconds at `load_tps` offered load into the concrete
    /// [`hh_sim::Workload`], and validates the result. An undeclared
    /// workload lowers to exactly [`Workload::constant`] — the `[load]
    /// tps` sugar.
    pub fn build(&self, duration: u64, load_tps: u64) -> Result<Workload, ScenarioError> {
        let duration_us = duration.saturating_mul(1_000_000);
        let phases = if self.phases.is_empty() {
            vec![Phase { from_us: 0, arrival: Self::lower_arrival(&self.arrival, 1.0) }]
        } else {
            let mut phases = Vec::with_capacity(self.phases.len());
            for spec in &self.phases {
                let scale = match spec.rate {
                    RateSpec::Scale(s) => s,
                    RateSpec::Tps(tps) => {
                        if load_tps == 0 {
                            return Err(ScenarioError::Invalid(
                                "a workload phase gives an absolute tps but the load axis \
                                 is 0 — use `scale`, or set [load] tps"
                                    .into(),
                            ));
                        }
                        tps as f64 / load_tps as f64
                    }
                };
                phases.push(Phase {
                    from_us: spec.from.resolve_us(duration),
                    arrival: Self::lower_arrival(&spec.arrival, scale),
                });
            }
            // Ordering of the resolved starts (mixed secs/frac pairs
            // escape the parse-time check) is enforced by
            // `Workload::validate` below.
            if let Some(late) = phases.iter().find(|p| p.from_us >= duration_us) {
                return Err(ScenarioError::Invalid(format!(
                    "workload phase at {} µs starts at or after the {duration}s run ends",
                    late.from_us
                )));
            }
            phases
        };
        let workload = Workload {
            phases,
            mode: self.mode,
            payload_bytes: self.payload_bytes,
            spread: self.spread,
        };
        workload.validate().map_err(|e| ScenarioError::Invalid(format!("workload: {e}")))?;
        Ok(workload)
    }
}

/// A named latency-measurement window over submission times.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSpec {
    /// Window name in the report.
    pub name: String,
    /// Start, as a fraction of the run duration (inclusive).
    pub from_frac: f64,
    /// End, as a fraction of the run duration (exclusive).
    pub to_frac: f64,
}

/// Extra per-run analyses beyond the standard metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalysisSpec {
    /// Latency percentiles per named submission-time window.
    pub windows: Vec<WindowSpec>,
    /// Count even rounds ≤ the last committed anchor with no committed
    /// anchor (the Lemma 6 "skipped leader rounds" metric).
    pub skipped_rounds: bool,
    /// Report per-epoch B/G churn from the schedule history.
    pub schedule_churn: bool,
    /// Per recovered validator: rounds from recovery to its first
    /// post-recovery leader slot and first committed anchor, plus its
    /// score trajectory across epochs (HammerHead runs).
    pub reinclusion: bool,
    /// Per byzantine validator: rounds and epochs until first demotion,
    /// leader-slot share over time, equivocation evidence, and the
    /// honest commit latency alongside (runs with `[[faults.byzantine]]`).
    pub adversary: bool,
    /// Chaos-delivery accounting: frames delivered / dropped /
    /// duplicated / corrupt-rejected / reordered, RBC retransmits spent
    /// digging out, and the safety checker's record and violation counts
    /// (runs with `[[faults.chaos]]`).
    pub chaos: bool,
}

/// Scaled-down axis overrides applied by `--quick`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QuickSpec {
    /// Committee-size axis override.
    pub sizes: Option<Vec<usize>>,
    /// Load axis override.
    pub tps: Option<Vec<u64>>,
    /// Duration axis override.
    pub duration_secs: Option<Vec<u64>>,
    /// Seed axis override.
    pub seeds: Option<Vec<u64>>,
    /// Period axis override.
    pub period_rounds: Option<Vec<u64>>,
}

/// A fully parsed scenario file.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in output and by `hh-cli list`).
    pub name: String,
    /// Human description.
    pub description: String,
    /// The paper figure/section this scenario reproduces, if any.
    pub figure: Option<String>,
    /// Committee-size axis.
    pub committee_sizes: Vec<usize>,
    /// Offered-load axis (tx/s).
    pub load_tps: Vec<u64>,
    /// Run-length axis (simulated seconds).
    pub duration_secs: Vec<u64>,
    /// Warmup excluded from latency stats; default `max(1, duration/6)`.
    pub warmup_secs: Option<u64>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Global Stabilization Time (0 = synchronous, the benchmark setting).
    pub gst_secs: u64,
    /// Client in-flight window in seconds of offered rate.
    pub client_window_secs: f64,
    /// Link-latency model.
    pub network: NetworkSpec,
    /// Systems axis, used when `variants` is empty.
    pub systems: Vec<SystemSpec>,
    /// HammerHead period axis.
    pub period_rounds: Vec<u64>,
    /// HammerHead exclusion-budget axis.
    pub exclusion: Vec<ExclusionSpec>,
    /// HammerHead scoring-rule axis.
    pub scoring: Vec<ScoringRule>,
    /// Seed for the initial schedule permutation.
    pub schedule_seed: u64,
    /// Recompute each epoch's slot swap against the base schedule S0
    /// (the production leader-swap-table semantics; required for
    /// crash-recovery re-inclusion to be observable).
    pub swap_from_base: bool,
    /// The workload shape (`[workload]`; defaults to the `[load] tps`
    /// constant-rate sugar).
    pub workload: WorkloadSpec,
    /// Explicit variants; when non-empty they replace the systems ×
    /// hammerhead-knob axes.
    pub variants: Vec<VariantSpec>,
    /// Fault schedule applied to every run.
    pub faults: FaultsSpec,
    /// Extra analyses.
    pub analysis: AnalysisSpec,
    /// `--quick` overrides.
    pub quick: QuickSpec,
}

// ---------------------------------------------------------------------------
// Strict table reading
// ---------------------------------------------------------------------------

fn check_keys(
    table: &BTreeMap<String, Value>,
    context: &str,
    allowed: &[&str],
) -> Result<(), ScenarioError> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::Schema(format!(
                "unknown key `{key}` in {context} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn get_table<'a>(
    table: &'a BTreeMap<String, Value>,
    key: &str,
) -> Result<Option<&'a BTreeMap<String, Value>>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Table(t)) => Ok(Some(t)),
        Some(other) => {
            Err(ScenarioError::Schema(format!("`{key}` must be a table, got {other:?}")))
        }
    }
}

fn get_str(
    table: &BTreeMap<String, Value>,
    key: &str,
    context: &str,
) -> Result<Option<String>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => {
            Err(ScenarioError::Schema(format!("`{context}.{key}` must be a string, got {other:?}")))
        }
    }
}

fn get_u64(
    table: &BTreeMap<String, Value>,
    key: &str,
    context: &str,
) -> Result<Option<u64>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(other) => Err(ScenarioError::Schema(format!(
            "`{context}.{key}` must be a non-negative integer, got {other:?}"
        ))),
    }
}

fn get_f64(
    table: &BTreeMap<String, Value>,
    key: &str,
    context: &str,
) -> Result<Option<f64>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Float(x)) => Ok(Some(*x)),
        Some(Value::Int(i)) => Ok(Some(*i as f64)),
        Some(other) => {
            Err(ScenarioError::Schema(format!("`{context}.{key}` must be a number, got {other:?}")))
        }
    }
}

fn get_bool(
    table: &BTreeMap<String, Value>,
    key: &str,
    context: &str,
) -> Result<Option<bool>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(ScenarioError::Schema(format!(
            "`{context}.{key}` must be a boolean, got {other:?}"
        ))),
    }
}

/// Reads a scalar-or-list axis of non-negative integers.
fn get_u64_axis(
    table: &BTreeMap<String, Value>,
    key: &str,
    context: &str,
) -> Result<Option<Vec<u64>>, ScenarioError> {
    let to_u64 = |v: &Value| -> Result<u64, ScenarioError> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(ScenarioError::Schema(format!(
                "`{context}.{key}` entries must be non-negative integers, got {other:?}"
            ))),
        }
    };
    match table.get(key) {
        None => Ok(None),
        Some(Value::Array(items)) => {
            if items.is_empty() {
                return Err(ScenarioError::Schema(format!("`{context}.{key}` must not be empty")));
            }
            Ok(Some(items.iter().map(to_u64).collect::<Result<_, _>>()?))
        }
        Some(v) => Ok(Some(vec![to_u64(v)?])),
    }
}

fn get_str_axis(
    table: &BTreeMap<String, Value>,
    key: &str,
    context: &str,
) -> Result<Option<Vec<String>>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(vec![s.clone()])),
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                other => Err(ScenarioError::Schema(format!(
                    "`{context}.{key}` entries must be strings, got {other:?}"
                ))),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(other) => Err(ScenarioError::Schema(format!(
            "`{context}.{key}` must be a string or list of strings, got {other:?}"
        ))),
    }
}

/// Reads the entries of an array-of-tables key (`[[faults.crash]]`
/// style); absent keys yield an empty list.
fn get_entry_tables<'a>(
    table: &'a BTreeMap<String, Value>,
    key: &str,
    context: &str,
) -> Result<Vec<&'a BTreeMap<String, Value>>, ScenarioError> {
    match table.get(key) {
        None => Ok(Vec::new()),
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| {
                item.as_table().ok_or_else(|| {
                    ScenarioError::Schema(format!("{context} entries must be tables"))
                })
            })
            .collect(),
        Some(other) => Err(ScenarioError::Schema(format!(
            "`{context}` must be an array of tables, got {other:?}"
        ))),
    }
}

/// Reads the `nodes` (id list) / `first` (count) validator selector of a
/// fault entry.
fn get_node_sel(table: &BTreeMap<String, Value>, context: &str) -> Result<NodeSel, ScenarioError> {
    match (table.get("nodes"), table.get("first")) {
        (Some(Value::Array(ids)), None) => Ok(NodeSel::Ids(
            ids.iter()
                .map(|v| match v {
                    Value::Int(i) if *i >= 0 => Ok(*i as u16),
                    other => Err(ScenarioError::Schema(format!(
                        "bad validator id {other:?} in {context}.nodes"
                    ))),
                })
                .collect::<Result<_, _>>()?,
        )),
        (None, Some(v)) => Ok(NodeSel::First(CountExpr::parse(v)?)),
        _ => Err(ScenarioError::Schema(format!(
            "{context} needs exactly one of `nodes` (id list) or `first` (count)"
        ))),
    }
}

/// Reads an optional `<prefix>_secs` / `<prefix>_frac` instant.
fn get_when(
    table: &BTreeMap<String, Value>,
    prefix: &str,
    context: &str,
) -> Result<Option<WhenSpec>, ScenarioError> {
    let secs_key = format!("{prefix}_secs");
    let frac_key = format!("{prefix}_frac");
    match (get_u64(table, &secs_key, context)?, get_f64(table, &frac_key, context)?) {
        (Some(secs), None) => Ok(Some(WhenSpec::Secs(secs))),
        (None, Some(frac)) => Ok(Some(WhenSpec::Frac(frac))),
        (None, None) => Ok(None),
        _ => Err(ScenarioError::Schema(format!("{context} sets both {secs_key} and {frac_key}"))),
    }
}

/// Reads an optional list of validator ids.
fn get_id_list(
    table: &BTreeMap<String, Value>,
    key: &str,
    context: &str,
) -> Result<Option<Vec<u16>>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Array(ids)) => ids
            .iter()
            .map(|v| match v {
                Value::Int(i) if *i >= 0 => Ok(*i as u16),
                other => Err(ScenarioError::Schema(format!(
                    "bad validator id {other:?} in {context}.{key}"
                ))),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(other) => Err(ScenarioError::Schema(format!(
            "`{context}.{key}` must be a list of validator ids, got {other:?}"
        ))),
    }
}

/// Keys that configure an arrival process, shared by `[workload]` and
/// `[[workload.phase]]`.
const ARRIVAL_PARAM_KEYS: &[&str] =
    &["burst_secs", "idle_secs", "ramp_from_scale", "ramp_to_scale"];

/// Reads the arrival process of a `[workload]` table or phase entry.
fn get_arrival(
    table: &BTreeMap<String, Value>,
    context: &str,
) -> Result<ArrivalSpec, ScenarioError> {
    let name = get_str(table, "arrival", context)?.unwrap_or_else(|| "constant".into());
    let forbid = |keys: &[&str]| -> Result<(), ScenarioError> {
        for key in keys {
            if table.contains_key(*key) {
                return Err(ScenarioError::Schema(format!(
                    "`{context}.{key}` does not apply to arrival = \"{name}\""
                )));
            }
        }
        Ok(())
    };
    match name.as_str() {
        "constant" => {
            forbid(ARRIVAL_PARAM_KEYS)?;
            Ok(ArrivalSpec::Constant)
        }
        "poisson" => {
            forbid(ARRIVAL_PARAM_KEYS)?;
            Ok(ArrivalSpec::Poisson)
        }
        "onoff" => {
            forbid(&["ramp_from_scale", "ramp_to_scale"])?;
            let burst_secs = get_f64(table, "burst_secs", context)?.ok_or_else(|| {
                ScenarioError::Schema(format!("{context} arrival = \"onoff\" requires burst_secs"))
            })?;
            let idle_secs = get_f64(table, "idle_secs", context)?.ok_or_else(|| {
                ScenarioError::Schema(format!("{context} arrival = \"onoff\" requires idle_secs"))
            })?;
            Ok(ArrivalSpec::OnOff { burst_secs, idle_secs })
        }
        "ramp" => {
            forbid(&["burst_secs", "idle_secs"])?;
            let to_scale = get_f64(table, "ramp_to_scale", context)?.ok_or_else(|| {
                ScenarioError::Schema(format!(
                    "{context} arrival = \"ramp\" requires ramp_to_scale"
                ))
            })?;
            Ok(ArrivalSpec::Ramp {
                from_scale: get_f64(table, "ramp_from_scale", context)?.unwrap_or(0.0),
                to_scale,
            })
        }
        other => Err(ScenarioError::Schema(format!(
            "unknown arrival process `{other}` (expected constant, poisson, onoff or ramp)"
        ))),
    }
}

fn axis_u64_value(xs: &[u64]) -> Value {
    if xs.len() == 1 {
        Value::Int(xs[0] as i64)
    } else {
        Value::Array(xs.iter().map(|x| Value::Int(*x as i64)).collect())
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Parses and validates scenario TOML text.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        Self::from_value(&toml::parse(text)?)
    }

    /// Builds a spec from an already-parsed TOML document (the hook
    /// `hh-cli --set` uses to patch knobs before schema validation).
    pub fn from_value(root_value: &Value) -> Result<Self, ScenarioError> {
        let root = root_value
            .as_table()
            .ok_or_else(|| ScenarioError::Schema("scenario root must be a table".into()))?;
        check_keys(
            root,
            "the scenario root",
            &[
                "name",
                "description",
                "figure",
                "committee",
                "load",
                "run",
                "network",
                "systems",
                "hammerhead",
                "workload",
                "variant",
                "faults",
                "analysis",
                "quick",
            ],
        )?;

        let name = get_str(root, "name", "scenario")?
            .ok_or_else(|| ScenarioError::Schema("missing required key `name`".into()))?;
        let description = get_str(root, "description", "scenario")?.unwrap_or_default();
        let figure = get_str(root, "figure", "scenario")?;

        // [committee]
        let committee = get_table(root, "committee")?;
        let committee_sizes = match committee {
            Some(t) => {
                check_keys(t, "[committee]", &["size", "sizes"])?;
                if t.contains_key("size") && t.contains_key("sizes") {
                    return Err(ScenarioError::Schema(
                        "set only one of committee.size / committee.sizes".into(),
                    ));
                }
                let axis = get_u64_axis(t, "sizes", "committee")?.or(get_u64_axis(
                    t,
                    "size",
                    "committee",
                )?);
                axis.map(|xs| xs.into_iter().map(|x| x as usize).collect())
                    .unwrap_or_else(|| vec![10])
            }
            None => vec![10],
        };

        // [load]
        let load_tps = match get_table(root, "load")? {
            Some(t) => {
                check_keys(t, "[load]", &["tps"])?;
                get_u64_axis(t, "tps", "load")?.unwrap_or_else(|| vec![500])
            }
            None => vec![500],
        };

        // [run]
        let (duration_secs, warmup_secs, seeds, gst_secs, client_window_secs) =
            match get_table(root, "run")? {
                Some(t) => {
                    check_keys(
                        t,
                        "[run]",
                        &[
                            "duration_secs",
                            "warmup_secs",
                            "seed",
                            "seeds",
                            "gst_secs",
                            "client_window_secs",
                        ],
                    )?;
                    if t.contains_key("seed") && t.contains_key("seeds") {
                        return Err(ScenarioError::Schema(
                            "set only one of run.seed / run.seeds".into(),
                        ));
                    }
                    (
                        get_u64_axis(t, "duration_secs", "run")?.unwrap_or_else(|| vec![60]),
                        get_u64(t, "warmup_secs", "run")?,
                        get_u64_axis(t, "seeds", "run")?
                            .or(get_u64_axis(t, "seed", "run")?)
                            .unwrap_or_else(|| vec![42]),
                        get_u64(t, "gst_secs", "run")?.unwrap_or(0),
                        get_f64(t, "client_window_secs", "run")?.unwrap_or(2.0),
                    )
                }
                None => (vec![60], None, vec![42], 0, 2.0),
            };

        // [network]
        let network = match get_table(root, "network")? {
            Some(t) => {
                check_keys(t, "[network]", &["model", "flat_ms"])?;
                let model = get_str(t, "model", "network")?.unwrap_or_else(|| "geo".into());
                match model.as_str() {
                    "geo" => {
                        if t.contains_key("flat_ms") {
                            return Err(ScenarioError::Schema(
                                "`network.flat_ms` only applies to model = \"flat\"".into(),
                            ));
                        }
                        NetworkSpec::Geo
                    }
                    "flat" => {
                        NetworkSpec::Flat { ms: get_u64(t, "flat_ms", "network")?.unwrap_or(5) }
                    }
                    other => {
                        return Err(ScenarioError::Schema(format!(
                            "unknown network model `{other}` (expected geo or flat)"
                        )))
                    }
                }
            }
            None => NetworkSpec::Geo,
        };

        // [systems]
        let systems = match get_table(root, "systems")? {
            Some(t) => {
                check_keys(t, "[systems]", &["run"])?;
                get_str_axis(t, "run", "systems")?
                    .unwrap_or_else(|| vec!["hammerhead".into()])
                    .iter()
                    .map(|s| SystemSpec::parse(s))
                    .collect::<Result<Vec<_>, _>>()?
            }
            None => vec![SystemSpec::Hammerhead],
        };

        // [hammerhead]
        let (period_rounds, exclusion, scoring, schedule_seed, swap_from_base) =
            match get_table(root, "hammerhead")? {
                Some(t) => {
                    check_keys(
                        t,
                        "[hammerhead]",
                        &[
                            "period_rounds",
                            "max_excluded_pct",
                            "max_excluded_stake",
                            "scoring",
                            "schedule_seed",
                            "swap_from_base",
                        ],
                    )?;
                    let pct = get_u64_axis(t, "max_excluded_pct", "hammerhead")?;
                    let stake = get_u64_axis(t, "max_excluded_stake", "hammerhead")?;
                    if pct.is_some() && stake.is_some() {
                        return Err(ScenarioError::Schema(
                            "set only one of hammerhead.max_excluded_pct / max_excluded_stake"
                                .into(),
                        ));
                    }
                    let exclusion = match (pct, stake) {
                        (Some(ps), _) => ps.into_iter().map(ExclusionSpec::Pct).collect(),
                        (_, Some(ss)) => ss.into_iter().map(ExclusionSpec::Stake).collect(),
                        _ => vec![ExclusionSpec::F],
                    };
                    let scoring = get_str_axis(t, "scoring", "hammerhead")?
                        .unwrap_or_else(|| vec!["vote-based".into()])
                        .iter()
                        .map(|s| parse_scoring(s))
                        .collect::<Result<Vec<_>, _>>()?;
                    (
                        get_u64_axis(t, "period_rounds", "hammerhead")?.unwrap_or_else(|| vec![20]),
                        exclusion,
                        scoring,
                        get_u64(t, "schedule_seed", "hammerhead")?.unwrap_or(0),
                        get_bool(t, "swap_from_base", "hammerhead")?.unwrap_or(false),
                    )
                }
                None => (vec![20], vec![ExclusionSpec::F], vec![ScoringRule::VoteBased], 0, false),
            };

        // [workload]
        let workload = match get_table(root, "workload")? {
            Some(t) => {
                check_keys(
                    t,
                    "[workload]",
                    &[
                        "arrival",
                        "mode",
                        "payload_bytes",
                        "spread",
                        "block_bytes",
                        "burst_secs",
                        "idle_secs",
                        "ramp_from_scale",
                        "ramp_to_scale",
                        "phase",
                    ],
                )?;
                let mode = match get_str(t, "mode", "workload")?.as_deref() {
                    None | Some("closed") => SubmissionMode::Closed,
                    Some("open") => SubmissionMode::Open,
                    Some(other) => {
                        return Err(ScenarioError::Schema(format!(
                            "unknown workload mode `{other}` (expected closed or open)"
                        )))
                    }
                };
                let payload_bytes = match get_u64(t, "payload_bytes", "workload")? {
                    Some(b) if b > MAX_PAYLOAD_BYTES as u64 => {
                        return Err(ScenarioError::Invalid(format!(
                            "workload payload_bytes {b} exceeds the {MAX_PAYLOAD_BYTES}-byte cap"
                        )))
                    }
                    Some(b) => b as u32,
                    None => 0,
                };
                let mut phases = Vec::new();
                for p in get_entry_tables(t, "phase", "[[workload.phase]]")? {
                    check_keys(
                        p,
                        "[[workload.phase]]",
                        &[
                            "from_secs",
                            "from_frac",
                            "scale",
                            "tps",
                            "arrival",
                            "burst_secs",
                            "idle_secs",
                            "ramp_from_scale",
                            "ramp_to_scale",
                        ],
                    )?;
                    let arrival = get_arrival(p, "[[workload.phase]]")?;
                    let scale = get_f64(p, "scale", "workload.phase")?;
                    let tps = get_u64(p, "tps", "workload.phase")?;
                    if matches!(arrival, ArrivalSpec::Ramp { .. })
                        && (scale.is_some() || tps.is_some())
                    {
                        return Err(ScenarioError::Schema(
                            "ramp phases take ramp_from_scale / ramp_to_scale, not scale or tps"
                                .into(),
                        ));
                    }
                    let rate = match (scale, tps) {
                        (Some(_), Some(_)) => {
                            return Err(ScenarioError::Schema(
                                "[[workload.phase]] sets both `scale` and `tps`".into(),
                            ))
                        }
                        (Some(s), None) => RateSpec::Scale(s),
                        (None, Some(t)) => RateSpec::Tps(t),
                        (None, None) => RateSpec::Scale(1.0),
                    };
                    phases.push(WorkloadPhaseSpec {
                        from: get_when(p, "from", "[[workload.phase]]")?
                            .unwrap_or(WhenSpec::Secs(0)),
                        rate,
                        arrival,
                    });
                }
                if !phases.is_empty() {
                    for key in ["arrival"].iter().chain(ARRIVAL_PARAM_KEYS) {
                        if t.contains_key(*key) {
                            return Err(ScenarioError::Schema(format!(
                                "`workload.{key}` conflicts with an explicit \
                                 [[workload.phase]] timeline"
                            )));
                        }
                    }
                }
                let arrival = if phases.is_empty() {
                    get_arrival(t, "[workload]")?
                } else {
                    ArrivalSpec::Constant
                };
                WorkloadSpec {
                    declared: true,
                    mode,
                    payload_bytes,
                    spread: get_f64(t, "spread", "workload")?.unwrap_or(1.0),
                    block_bytes: get_u64(t, "block_bytes", "workload")?,
                    arrival,
                    phases,
                }
            }
            None => WorkloadSpec::default(),
        };

        // [[variant]]
        let variants = match root.get("variant") {
            None => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .map(|item| {
                    let t = item.as_table().ok_or_else(|| {
                        ScenarioError::Schema("[[variant]] entries must be tables".into())
                    })?;
                    check_keys(
                        t,
                        "[[variant]]",
                        &[
                            "label",
                            "system",
                            "static_leader",
                            "scoring",
                            "period_rounds",
                            "max_excluded_pct",
                            "max_excluded_stake",
                        ],
                    )?;
                    let label = get_str(t, "label", "variant")?.ok_or_else(|| {
                        ScenarioError::Schema("[[variant]] requires a `label`".into())
                    })?;
                    let system = match get_str(t, "system", "variant")? {
                        Some(s) => SystemSpec::parse(&s)?,
                        None => SystemSpec::Hammerhead,
                    };
                    let pct = get_u64(t, "max_excluded_pct", "variant")?;
                    let stake = get_u64(t, "max_excluded_stake", "variant")?;
                    if pct.is_some() && stake.is_some() {
                        return Err(ScenarioError::Schema(
                            "variant sets both max_excluded_pct and max_excluded_stake".into(),
                        ));
                    }
                    Ok(VariantSpec {
                        label,
                        system,
                        static_leader: get_u64(t, "static_leader", "variant")?.unwrap_or(0) as u16,
                        scoring: get_str(t, "scoring", "variant")?
                            .map(|s| parse_scoring(&s))
                            .transpose()?,
                        period_rounds: get_u64(t, "period_rounds", "variant")?,
                        exclusion: pct.map(ExclusionSpec::Pct).or(stake.map(ExclusionSpec::Stake)),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(other) => {
                return Err(ScenarioError::Schema(format!(
                    "`variant` must be an array of tables ([[variant]]), got {other:?}"
                )))
            }
        };

        // [faults]
        let faults = match get_table(root, "faults")? {
            Some(t) => {
                check_keys(
                    t,
                    "[faults]",
                    &[
                        "crashed",
                        "crash_last",
                        "slowdown",
                        "crash",
                        "recover",
                        "partition",
                        "byzantine",
                        "chaos",
                    ],
                )?;
                let crashed = get_u64_axis(t, "crashed", "faults")?
                    .unwrap_or_default()
                    .into_iter()
                    .map(|x| x as u16)
                    .collect();
                let crash_last = t.get("crash_last").map(CountExpr::parse).transpose()?;

                let mut slowdowns = Vec::new();
                for s in get_entry_tables(t, "slowdown", "[[faults.slowdown]]")? {
                    check_keys(
                        s,
                        "[[faults.slowdown]]",
                        &[
                            "nodes",
                            "first",
                            "at_secs",
                            "at_frac",
                            "until_secs",
                            "until_frac",
                            "extra_ms",
                        ],
                    )?;
                    let extra_ms = get_u64(s, "extra_ms", "faults.slowdown")?.ok_or_else(|| {
                        ScenarioError::Schema("[[faults.slowdown]] requires `extra_ms`".into())
                    })?;
                    slowdowns.push(SlowdownEntry {
                        nodes: get_node_sel(s, "[[faults.slowdown]]")?,
                        at: get_when(s, "at", "[[faults.slowdown]]")?.unwrap_or(WhenSpec::Secs(0)),
                        until: get_when(s, "until", "[[faults.slowdown]]")?,
                        extra_ms,
                    });
                }

                // [[faults.recover]] first, then the `recover_at_*` sugar
                // on [[faults.crash]] desugars into the same list.
                let mut recovers = Vec::new();
                for r in get_entry_tables(t, "recover", "[[faults.recover]]")? {
                    check_keys(r, "[[faults.recover]]", &["nodes", "first", "at_secs", "at_frac"])?;
                    recovers.push(TimedFaultEntry {
                        nodes: get_node_sel(r, "[[faults.recover]]")?,
                        at: get_when(r, "at", "[[faults.recover]]")?.ok_or_else(|| {
                            ScenarioError::Schema(
                                "[[faults.recover]] requires at_secs or at_frac".into(),
                            )
                        })?,
                    });
                }
                let mut crashes = Vec::new();
                for entry in get_entry_tables(t, "crash", "[[faults.crash]]")? {
                    check_keys(
                        entry,
                        "[[faults.crash]]",
                        &[
                            "nodes",
                            "first",
                            "at_secs",
                            "at_frac",
                            "recover_at_secs",
                            "recover_at_frac",
                        ],
                    )?;
                    let nodes = get_node_sel(entry, "[[faults.crash]]")?;
                    if let Some(recover_at) = get_when(entry, "recover_at", "[[faults.crash]]")? {
                        recovers.push(TimedFaultEntry { nodes: nodes.clone(), at: recover_at });
                    }
                    crashes.push(TimedFaultEntry {
                        nodes,
                        at: get_when(entry, "at", "[[faults.crash]]")?.unwrap_or(WhenSpec::Secs(0)),
                    });
                }

                let mut partitions = Vec::new();
                for p in get_entry_tables(t, "partition", "[[faults.partition]]")? {
                    check_keys(
                        p,
                        "[[faults.partition]]",
                        &[
                            "a",
                            "b",
                            "isolate_first",
                            "from_secs",
                            "from_frac",
                            "until_secs",
                            "until_frac",
                        ],
                    )?;
                    let a = get_id_list(p, "a", "faults.partition")?;
                    let b = get_id_list(p, "b", "faults.partition")?;
                    let sel = match (a, b, p.get("isolate_first")) {
                        (Some(a), Some(b), None) => PartitionSel::Groups { a, b },
                        (None, None, Some(v)) => PartitionSel::IsolateFirst(CountExpr::parse(v)?),
                        _ => {
                            return Err(ScenarioError::Schema(
                                "[[faults.partition]] needs either both `a` and `b` id lists \
                                 or `isolate_first` (count)"
                                    .into(),
                            ))
                        }
                    };
                    partitions.push(PartitionEntry {
                        sel,
                        from: get_when(p, "from", "[[faults.partition]]")?
                            .unwrap_or(WhenSpec::Secs(0)),
                        until: get_when(p, "until", "[[faults.partition]]")?.ok_or_else(|| {
                            ScenarioError::Schema(
                                "[[faults.partition]] requires until_secs or until_frac".into(),
                            )
                        })?,
                    });
                }

                let mut byzantine = Vec::new();
                for b in get_entry_tables(t, "byzantine", "[[faults.byzantine]]")? {
                    check_keys(
                        b,
                        "[[faults.byzantine]]",
                        &[
                            "node",
                            "strategy",
                            "from_secs",
                            "from_frac",
                            "until_secs",
                            "until_frac",
                            "targets",
                            "delay_ms",
                            "flip_secs",
                        ],
                    )?;
                    let node = get_u64(b, "node", "faults.byzantine")?.ok_or_else(|| {
                        ScenarioError::Schema("[[faults.byzantine]] requires `node`".into())
                    })? as u16;
                    let name = get_str(b, "strategy", "faults.byzantine")?.ok_or_else(|| {
                        ScenarioError::Schema("[[faults.byzantine]] requires `strategy`".into())
                    })?;
                    let targets = get_id_list(b, "targets", "faults.byzantine")?;
                    let delay_ms = get_u64(b, "delay_ms", "faults.byzantine")?;
                    let flip_secs = get_u64(b, "flip_secs", "faults.byzantine")?;
                    let forbid = |key: &str, present: bool| {
                        if present {
                            Err(ScenarioError::Schema(format!(
                                "`{key}` does not apply to the `{name}` strategy"
                            )))
                        } else {
                            Ok(())
                        }
                    };
                    let require = |key: &str| {
                        ScenarioError::Schema(format!("the `{name}` strategy requires `{key}`"))
                    };
                    let strategy = match name.as_str() {
                        "equivocate" => {
                            forbid("targets", targets.is_some())?;
                            forbid("delay_ms", delay_ms.is_some())?;
                            forbid("flip_secs", flip_secs.is_some())?;
                            ByzantineStrategySpec::Equivocate
                        }
                        "withhold_votes" => {
                            forbid("delay_ms", delay_ms.is_some())?;
                            forbid("flip_secs", flip_secs.is_some())?;
                            ByzantineStrategySpec::WithholdVotes {
                                targets: targets.ok_or_else(|| require("targets"))?,
                            }
                        }
                        "lazy_leader" => {
                            forbid("targets", targets.is_some())?;
                            forbid("flip_secs", flip_secs.is_some())?;
                            ByzantineStrategySpec::LazyLeader {
                                delay_ms: delay_ms.ok_or_else(|| require("delay_ms"))?,
                            }
                        }
                        "flip_flop" => {
                            forbid("targets", targets.is_some())?;
                            ByzantineStrategySpec::FlipFlop {
                                flip_secs: flip_secs.ok_or_else(|| require("flip_secs"))?,
                                delay_ms: delay_ms.ok_or_else(|| require("delay_ms"))?,
                            }
                        }
                        other => {
                            return Err(ScenarioError::Schema(format!(
                                "unknown byzantine strategy `{other}` (expected equivocate, \
                                 withhold_votes, lazy_leader or flip_flop)"
                            )))
                        }
                    };
                    byzantine.push(ByzantineEntrySpec {
                        node,
                        strategy,
                        from: get_when(b, "from", "[[faults.byzantine]]")?
                            .unwrap_or(WhenSpec::Secs(0)),
                        until: get_when(b, "until", "[[faults.byzantine]]")?,
                    });
                }

                let mut chaos = Vec::new();
                for c in get_entry_tables(t, "chaos", "[[faults.chaos]]")? {
                    check_keys(
                        c,
                        "[[faults.chaos]]",
                        &[
                            "node",
                            "from",
                            "to",
                            "from_secs",
                            "from_frac",
                            "until_secs",
                            "until_frac",
                            "drop",
                            "duplicate",
                            "corrupt",
                            "reorder_ms",
                        ],
                    )?;
                    let node = get_u64(c, "node", "faults.chaos")?.map(|x| x as u16);
                    let link_from = get_u64(c, "from", "faults.chaos")?.map(|x| x as u16);
                    let link_to = get_u64(c, "to", "faults.chaos")?.map(|x| x as u16);
                    let link = match (node, link_from, link_to) {
                        (_, None, None) => None,
                        (None, Some(a), Some(b)) => Some((a, b)),
                        _ => {
                            return Err(ScenarioError::Schema(
                                "[[faults.chaos]] afflicts all links by default; narrow it \
                                 with either `node` or the directed pair `from` + `to`, \
                                 not a mix"
                                    .into(),
                            ))
                        }
                    };
                    chaos.push(ChaosEntrySpec {
                        node,
                        link,
                        from: get_when(c, "from", "[[faults.chaos]]")?.unwrap_or(WhenSpec::Secs(0)),
                        until: get_when(c, "until", "[[faults.chaos]]")?,
                        drop: get_f64(c, "drop", "faults.chaos")?.unwrap_or(0.0),
                        duplicate: get_f64(c, "duplicate", "faults.chaos")?.unwrap_or(0.0),
                        corrupt: get_f64(c, "corrupt", "faults.chaos")?.unwrap_or(0.0),
                        reorder_ms: get_u64(c, "reorder_ms", "faults.chaos")?.unwrap_or(0),
                    });
                }

                FaultsSpec {
                    crashed,
                    crash_last,
                    slowdowns,
                    crashes,
                    recovers,
                    partitions,
                    byzantine,
                    chaos,
                }
            }
            None => FaultsSpec::default(),
        };

        // [analysis]
        let analysis = match get_table(root, "analysis")? {
            Some(t) => {
                check_keys(
                    t,
                    "[analysis]",
                    &[
                        "skipped_rounds",
                        "schedule_churn",
                        "reinclusion",
                        "adversary",
                        "chaos",
                        "window",
                    ],
                )?;
                let windows = match t.get("window") {
                    None => Vec::new(),
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(|item| {
                            let w = item.as_table().ok_or_else(|| {
                                ScenarioError::Schema(
                                    "[[analysis.window]] entries must be tables".into(),
                                )
                            })?;
                            check_keys(
                                w,
                                "[[analysis.window]]",
                                &["name", "from_frac", "to_frac"],
                            )?;
                            Ok(WindowSpec {
                                name: get_str(w, "name", "analysis.window")?.ok_or_else(|| {
                                    ScenarioError::Schema(
                                        "[[analysis.window]] requires `name`".into(),
                                    )
                                })?,
                                from_frac: get_f64(w, "from_frac", "analysis.window")?
                                    .unwrap_or(0.0),
                                to_frac: get_f64(w, "to_frac", "analysis.window")?.unwrap_or(1.0),
                            })
                        })
                        .collect::<Result<Vec<_>, ScenarioError>>()?,
                    Some(other) => {
                        return Err(ScenarioError::Schema(format!(
                            "`analysis.window` must be an array of tables, got {other:?}"
                        )))
                    }
                };
                AnalysisSpec {
                    windows,
                    skipped_rounds: get_bool(t, "skipped_rounds", "analysis")?.unwrap_or(false),
                    schedule_churn: get_bool(t, "schedule_churn", "analysis")?.unwrap_or(false),
                    reinclusion: get_bool(t, "reinclusion", "analysis")?.unwrap_or(false),
                    adversary: get_bool(t, "adversary", "analysis")?.unwrap_or(false),
                    chaos: get_bool(t, "chaos", "analysis")?.unwrap_or(false),
                }
            }
            None => AnalysisSpec::default(),
        };

        // [quick]
        let quick = match get_table(root, "quick")? {
            Some(t) => {
                check_keys(
                    t,
                    "[quick]",
                    &["sizes", "tps", "duration_secs", "seeds", "period_rounds"],
                )?;
                QuickSpec {
                    sizes: get_u64_axis(t, "sizes", "quick")?
                        .map(|xs| xs.into_iter().map(|x| x as usize).collect()),
                    tps: get_u64_axis(t, "tps", "quick")?,
                    duration_secs: get_u64_axis(t, "duration_secs", "quick")?,
                    seeds: get_u64_axis(t, "seeds", "quick")?,
                    period_rounds: get_u64_axis(t, "period_rounds", "quick")?,
                }
            }
            None => QuickSpec::default(),
        };

        let spec = ScenarioSpec {
            name,
            description,
            figure,
            committee_sizes,
            load_tps,
            duration_secs,
            warmup_secs,
            seeds,
            gst_secs,
            client_window_secs,
            network,
            systems,
            period_rounds,
            exclusion,
            scoring,
            schedule_seed,
            swap_from_base,
            workload,
            variants,
            faults,
            analysis,
            quick,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation beyond per-key type checks; the per-committee
    /// checks ([`HammerheadConfig::validate`], fault counts) run during
    /// [`ScenarioSpec::plan`] where the committee size is known.
    fn validate(&self) -> Result<(), ScenarioError> {
        if self.committee_sizes.iter().any(|n| *n < 4) {
            return Err(ScenarioError::Invalid(
                "committee sizes below 4 cannot tolerate any fault (n = 3f + 1)".into(),
            ));
        }
        if self.duration_secs.contains(&0) {
            return Err(ScenarioError::Invalid("duration_secs must be positive".into()));
        }
        if let Some(w) = self.warmup_secs {
            if let Some(short) = self.duration_secs.iter().find(|d| **d <= w) {
                return Err(ScenarioError::Invalid(format!(
                    "warmup_secs {w} does not leave a measurement window in a {short}s run"
                )));
            }
        }
        if self.client_window_secs <= 0.0 {
            return Err(ScenarioError::Invalid("client_window_secs must be positive".into()));
        }
        let mut labels: Vec<&str> = self.variants.iter().map(|v| v.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() != self.variants.len() {
            return Err(ScenarioError::Invalid("variant labels must be unique".into()));
        }
        for w in &self.analysis.windows {
            if !(0.0..=1.0).contains(&w.from_frac)
                || !(0.0..=1.0).contains(&w.to_frac)
                || w.from_frac >= w.to_frac
            {
                return Err(ScenarioError::Invalid(format!(
                    "analysis window `{}` must satisfy 0 <= from_frac < to_frac <= 1",
                    w.name
                )));
            }
        }
        fn check_frac(when: WhenSpec, what: &str) -> Result<(), ScenarioError> {
            if let WhenSpec::Frac(frac) = when {
                if !(0.0..=1.0).contains(&frac) {
                    return Err(ScenarioError::Invalid(format!(
                        "{what} fraction must be within [0, 1]"
                    )));
                }
            }
            Ok(())
        }
        /// Same-kind windows can be ordered here; mixed secs/frac pairs
        /// are checked after per-run resolution.
        fn check_window(from: WhenSpec, until: WhenSpec, what: &str) -> Result<(), ScenarioError> {
            let empty = match (from, until) {
                (WhenSpec::Secs(a), WhenSpec::Secs(b)) => a >= b,
                (WhenSpec::Frac(a), WhenSpec::Frac(b)) => a >= b,
                _ => false,
            };
            if empty {
                return Err(ScenarioError::Invalid(format!("{what} window is empty")));
            }
            Ok(())
        }
        self.validate_workload()?;
        for s in &self.faults.slowdowns {
            if s.extra_ms == 0 {
                return Err(ScenarioError::Invalid("slowdown extra_ms must be positive".into()));
            }
            check_frac(s.at, "slowdown at")?;
            if let Some(until) = s.until {
                check_frac(until, "slowdown until")?;
                check_window(s.at, until, "slowdown")?;
            }
        }
        for entry in self.faults.crashes.iter().chain(&self.faults.recovers) {
            check_frac(entry.at, "crash/recover at")?;
        }
        for p in &self.faults.partitions {
            check_frac(p.from, "partition from")?;
            check_frac(p.until, "partition until")?;
            check_window(p.from, p.until, "partition")?;
            if let PartitionSel::Groups { a, b } = &p.sel {
                if a.is_empty() || b.is_empty() {
                    return Err(ScenarioError::Invalid(
                        "partition groups must both be non-empty".into(),
                    ));
                }
                if let Some(shared) = a.iter().find(|x| b.contains(x)) {
                    return Err(ScenarioError::Invalid(format!(
                        "validator {shared} is on both sides of a partition"
                    )));
                }
            }
        }
        for c in &self.faults.chaos {
            check_frac(c.from, "chaos from")?;
            if let Some(until) = c.until {
                check_frac(until, "chaos until")?;
                check_window(c.from, until, "chaos")?;
            }
        }
        Ok(())
    }

    /// Structural validation of the `[workload]` table: value ranges and
    /// timeline ordering that need no per-run resolution (mixed
    /// secs/frac phase starts are ordered in [`ScenarioSpec::plan`],
    /// mirroring the fault-schedule grammar).
    fn validate_workload(&self) -> Result<(), ScenarioError> {
        let w = &self.workload;
        if w.spread < 1.0 || !w.spread.is_finite() {
            return Err(ScenarioError::Invalid(format!(
                "workload spread must be ≥ 1, got {}",
                w.spread
            )));
        }
        if let Some(block_bytes) = w.block_bytes {
            let one_tx = (TX_HEADER_BYTES as u64) + w.payload_bytes as u64;
            if block_bytes < one_tx {
                return Err(ScenarioError::Invalid(format!(
                    "workload block_bytes {block_bytes} cannot fit one \
                     {one_tx}-byte transaction"
                )));
            }
        }
        fn check_arrival(a: &ArrivalSpec, what: &str) -> Result<(), ScenarioError> {
            match *a {
                ArrivalSpec::Constant | ArrivalSpec::Poisson => Ok(()),
                ArrivalSpec::OnOff { burst_secs, idle_secs } => {
                    // The sim truncates bursts to whole µs; anything
                    // below that would be silently idle forever.
                    if burst_secs * 1e6 < 1.0 || !burst_secs.is_finite() {
                        return Err(ScenarioError::Invalid(format!(
                            "{what} burst_secs must be at least 1 µs"
                        )));
                    }
                    if idle_secs < 0.0 || !idle_secs.is_finite() {
                        return Err(ScenarioError::Invalid(format!(
                            "{what} idle_secs must be non-negative"
                        )));
                    }
                    Ok(())
                }
                ArrivalSpec::Ramp { from_scale, to_scale } => {
                    if from_scale < 0.0
                        || to_scale < 0.0
                        || !from_scale.is_finite()
                        || !to_scale.is_finite()
                    {
                        return Err(ScenarioError::Invalid(format!(
                            "{what} ramp scales must be non-negative"
                        )));
                    }
                    if from_scale == 0.0 && to_scale == 0.0 {
                        return Err(ScenarioError::Invalid(format!(
                            "{what} ramp never leaves zero"
                        )));
                    }
                    Ok(())
                }
            }
        }
        fn check_frac(when: WhenSpec, what: &str) -> Result<(), ScenarioError> {
            if let WhenSpec::Frac(frac) = when {
                if !(0.0..=1.0).contains(&frac) {
                    return Err(ScenarioError::Invalid(format!(
                        "{what} fraction must be within [0, 1]"
                    )));
                }
            }
            Ok(())
        }
        if w.phases.is_empty() {
            check_arrival(&w.arrival, "workload")?;
            return Ok(());
        }
        let first_at_zero = match w.phases[0].from {
            WhenSpec::Secs(s) => s == 0,
            WhenSpec::Frac(f) => f == 0.0,
        };
        if !first_at_zero {
            return Err(ScenarioError::Invalid(format!(
                "the first workload phase must start at 0, got {:?}",
                w.phases[0].from
            )));
        }
        let mut any_active = false;
        for (i, phase) in w.phases.iter().enumerate() {
            check_frac(phase.from, "workload phase from")?;
            check_arrival(&phase.arrival, "workload phase")?;
            let peak = match (phase.rate, phase.arrival) {
                (_, ArrivalSpec::Ramp { from_scale, to_scale }) => from_scale.max(to_scale),
                (RateSpec::Scale(s), _) => s,
                (RateSpec::Tps(t), _) => t as f64,
            };
            if peak < 0.0 || !peak.is_finite() {
                return Err(ScenarioError::Invalid(format!(
                    "workload phase {i} has a bad rate ({peak})"
                )));
            }
            any_active |= peak > 0.0;
        }
        if !any_active {
            return Err(ScenarioError::Invalid(
                "every workload phase has zero rate — nothing ever arrives".into(),
            ));
        }
        // Same-kind starts can be ordered here; mixed secs/frac pairs are
        // checked after per-run resolution.
        for pair in w.phases.windows(2) {
            let out_of_order = match (pair[0].from, pair[1].from) {
                (WhenSpec::Secs(a), WhenSpec::Secs(b)) => a >= b,
                (WhenSpec::Frac(a), WhenSpec::Frac(b)) => a >= b,
                _ => false,
            };
            if out_of_order {
                return Err(ScenarioError::Invalid(
                    "workload phase starts must be strictly ascending".into(),
                ));
            }
        }
        Ok(())
    }

    /// Serializes the spec back to a TOML value (the canonical form used
    /// by round-trip tests and `hh-cli validate --dump`).
    pub fn to_value(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert("name".into(), Value::Str(self.name.clone()));
        if !self.description.is_empty() {
            root.insert("description".into(), Value::Str(self.description.clone()));
        }
        if let Some(figure) = &self.figure {
            root.insert("figure".into(), Value::Str(figure.clone()));
        }

        let mut committee = BTreeMap::new();
        committee.insert(
            "sizes".into(),
            axis_u64_value(&self.committee_sizes.iter().map(|n| *n as u64).collect::<Vec<_>>()),
        );
        root.insert("committee".into(), Value::Table(committee));

        let mut load = BTreeMap::new();
        load.insert("tps".into(), axis_u64_value(&self.load_tps));
        root.insert("load".into(), Value::Table(load));

        let mut run = BTreeMap::new();
        run.insert("duration_secs".into(), axis_u64_value(&self.duration_secs));
        if let Some(w) = self.warmup_secs {
            run.insert("warmup_secs".into(), Value::Int(w as i64));
        }
        run.insert("seeds".into(), axis_u64_value(&self.seeds));
        if self.gst_secs != 0 {
            run.insert("gst_secs".into(), Value::Int(self.gst_secs as i64));
        }
        if self.client_window_secs != 2.0 {
            run.insert("client_window_secs".into(), Value::Float(self.client_window_secs));
        }
        root.insert("run".into(), Value::Table(run));

        let mut network = BTreeMap::new();
        match self.network {
            NetworkSpec::Geo => {
                network.insert("model".into(), Value::Str("geo".into()));
            }
            NetworkSpec::Flat { ms } => {
                network.insert("model".into(), Value::Str("flat".into()));
                network.insert("flat_ms".into(), Value::Int(ms as i64));
            }
        }
        root.insert("network".into(), Value::Table(network));

        let mut systems = BTreeMap::new();
        systems.insert(
            "run".into(),
            Value::Array(self.systems.iter().map(|s| Value::Str(s.label().to_string())).collect()),
        );
        root.insert("systems".into(), Value::Table(systems));

        let mut hammerhead = BTreeMap::new();
        hammerhead.insert("period_rounds".into(), axis_u64_value(&self.period_rounds));
        match self.exclusion.as_slice() {
            [ExclusionSpec::F] => {}
            xs if xs.iter().all(|x| matches!(x, ExclusionSpec::Pct(_))) => {
                let pcts: Vec<u64> = xs
                    .iter()
                    .map(|x| match x {
                        ExclusionSpec::Pct(p) => *p,
                        _ => unreachable!("checked by the guard"),
                    })
                    .collect();
                hammerhead.insert("max_excluded_pct".into(), axis_u64_value(&pcts));
            }
            xs => {
                let stakes: Vec<u64> = xs
                    .iter()
                    .map(|x| match x {
                        ExclusionSpec::Stake(s) => *s,
                        other => panic!("mixed exclusion axis {other:?}"),
                    })
                    .collect();
                hammerhead.insert("max_excluded_stake".into(), axis_u64_value(&stakes));
            }
        }
        if self.scoring != vec![ScoringRule::VoteBased] {
            hammerhead.insert(
                "scoring".into(),
                Value::Array(self.scoring.iter().map(|s| Value::Str(scoring_name(*s))).collect()),
            );
        }
        if self.schedule_seed != 0 {
            hammerhead.insert("schedule_seed".into(), Value::Int(self.schedule_seed as i64));
        }
        if self.swap_from_base {
            hammerhead.insert("swap_from_base".into(), Value::Bool(true));
        }
        root.insert("hammerhead".into(), Value::Table(hammerhead));

        if self.workload.declared {
            fn insert_arrival(t: &mut BTreeMap<String, Value>, arrival: &ArrivalSpec) {
                match *arrival {
                    ArrivalSpec::Constant => {}
                    ArrivalSpec::Poisson => {
                        t.insert("arrival".into(), Value::Str("poisson".into()));
                    }
                    ArrivalSpec::OnOff { burst_secs, idle_secs } => {
                        t.insert("arrival".into(), Value::Str("onoff".into()));
                        t.insert("burst_secs".into(), Value::Float(burst_secs));
                        t.insert("idle_secs".into(), Value::Float(idle_secs));
                    }
                    ArrivalSpec::Ramp { from_scale, to_scale } => {
                        t.insert("arrival".into(), Value::Str("ramp".into()));
                        if from_scale != 0.0 {
                            t.insert("ramp_from_scale".into(), Value::Float(from_scale));
                        }
                        t.insert("ramp_to_scale".into(), Value::Float(to_scale));
                    }
                }
            }
            let w = &self.workload;
            let mut workload = BTreeMap::new();
            workload.insert(
                "mode".into(),
                Value::Str(
                    match w.mode {
                        SubmissionMode::Closed => "closed",
                        SubmissionMode::Open => "open",
                    }
                    .into(),
                ),
            );
            if w.payload_bytes != 0 {
                workload.insert("payload_bytes".into(), Value::Int(w.payload_bytes as i64));
            }
            if w.spread != 1.0 {
                workload.insert("spread".into(), Value::Float(w.spread));
            }
            if let Some(block_bytes) = w.block_bytes {
                workload.insert("block_bytes".into(), Value::Int(block_bytes as i64));
            }
            if w.phases.is_empty() {
                insert_arrival(&mut workload, &w.arrival);
            } else {
                let items = w
                    .phases
                    .iter()
                    .map(|p| {
                        let mut t = BTreeMap::new();
                        insert_when(&mut t, "from", p.from, true);
                        if !matches!(p.arrival, ArrivalSpec::Ramp { .. }) {
                            match p.rate {
                                // Scale 1.0 is the parse-side default.
                                RateSpec::Scale(s) => {
                                    if s != 1.0 {
                                        t.insert("scale".into(), Value::Float(s));
                                    }
                                }
                                RateSpec::Tps(tps) => {
                                    t.insert("tps".into(), Value::Int(tps as i64));
                                }
                            }
                        }
                        insert_arrival(&mut t, &p.arrival);
                        Value::Table(t)
                    })
                    .collect();
                workload.insert("phase".into(), Value::Array(items));
            }
            root.insert("workload".into(), Value::Table(workload));
        }

        if !self.variants.is_empty() {
            let items = self
                .variants
                .iter()
                .map(|v| {
                    let mut t = BTreeMap::new();
                    t.insert("label".into(), Value::Str(v.label.clone()));
                    t.insert("system".into(), Value::Str(v.system.label().to_string()));
                    if v.system == SystemSpec::StaticLeader {
                        t.insert("static_leader".into(), Value::Int(v.static_leader as i64));
                    }
                    if let Some(s) = v.scoring {
                        t.insert("scoring".into(), Value::Str(scoring_name(s)));
                    }
                    if let Some(p) = v.period_rounds {
                        t.insert("period_rounds".into(), Value::Int(p as i64));
                    }
                    match v.exclusion {
                        Some(ExclusionSpec::Pct(p)) => {
                            t.insert("max_excluded_pct".into(), Value::Int(p as i64));
                        }
                        Some(ExclusionSpec::Stake(s)) => {
                            t.insert("max_excluded_stake".into(), Value::Int(s as i64));
                        }
                        Some(ExclusionSpec::F) | None => {}
                    }
                    Value::Table(t)
                })
                .collect();
            root.insert("variant".into(), Value::Array(items));
        }

        let mut faults = BTreeMap::new();
        if !self.faults.crashed.is_empty() {
            faults.insert(
                "crashed".into(),
                Value::Array(self.faults.crashed.iter().map(|i| Value::Int(*i as i64)).collect()),
            );
        }
        if let Some(c) = self.faults.crash_last {
            faults.insert("crash_last".into(), c.to_value());
        }
        fn insert_node_sel(t: &mut BTreeMap<String, Value>, sel: &NodeSel) {
            match sel {
                NodeSel::Ids(ids) => {
                    t.insert(
                        "nodes".into(),
                        Value::Array(ids.iter().map(|i| Value::Int(*i as i64)).collect()),
                    );
                }
                NodeSel::First(c) => {
                    t.insert("first".into(), c.to_value());
                }
            }
        }
        /// `omit_zero` drops `Secs(0)` — the parse-side default for event
        /// starts — keeping canonical files minimal.
        fn insert_when(
            t: &mut BTreeMap<String, Value>,
            prefix: &str,
            when: WhenSpec,
            omit_zero: bool,
        ) {
            match when {
                WhenSpec::Secs(0) if omit_zero => {}
                WhenSpec::Secs(secs) => {
                    t.insert(format!("{prefix}_secs"), Value::Int(secs as i64));
                }
                WhenSpec::Frac(frac) => {
                    t.insert(format!("{prefix}_frac"), Value::Float(frac));
                }
            }
        }
        if !self.faults.slowdowns.is_empty() {
            let items = self
                .faults
                .slowdowns
                .iter()
                .map(|s| {
                    let mut t = BTreeMap::new();
                    insert_node_sel(&mut t, &s.nodes);
                    insert_when(&mut t, "at", s.at, true);
                    if let Some(until) = s.until {
                        insert_when(&mut t, "until", until, false);
                    }
                    t.insert("extra_ms".into(), Value::Int(s.extra_ms as i64));
                    Value::Table(t)
                })
                .collect();
            faults.insert("slowdown".into(), Value::Array(items));
        }
        let timed_items = |entries: &[TimedFaultEntry]| -> Value {
            Value::Array(
                entries
                    .iter()
                    .map(|entry| {
                        let mut t = BTreeMap::new();
                        insert_node_sel(&mut t, &entry.nodes);
                        insert_when(&mut t, "at", entry.at, false);
                        Value::Table(t)
                    })
                    .collect(),
            )
        };
        if !self.faults.crashes.is_empty() {
            faults.insert("crash".into(), timed_items(&self.faults.crashes));
        }
        if !self.faults.recovers.is_empty() {
            faults.insert("recover".into(), timed_items(&self.faults.recovers));
        }
        if !self.faults.partitions.is_empty() {
            let items = self
                .faults
                .partitions
                .iter()
                .map(|p| {
                    let mut t = BTreeMap::new();
                    match &p.sel {
                        PartitionSel::Groups { a, b } => {
                            let ids = |xs: &[u16]| {
                                Value::Array(xs.iter().map(|i| Value::Int(*i as i64)).collect())
                            };
                            t.insert("a".into(), ids(a));
                            t.insert("b".into(), ids(b));
                        }
                        PartitionSel::IsolateFirst(c) => {
                            t.insert("isolate_first".into(), c.to_value());
                        }
                    }
                    insert_when(&mut t, "from", p.from, true);
                    insert_when(&mut t, "until", p.until, false);
                    Value::Table(t)
                })
                .collect();
            faults.insert("partition".into(), Value::Array(items));
        }
        if !self.faults.byzantine.is_empty() {
            let items = self
                .faults
                .byzantine
                .iter()
                .map(|b| {
                    let mut t = BTreeMap::new();
                    t.insert("node".into(), Value::Int(b.node as i64));
                    let name = match &b.strategy {
                        ByzantineStrategySpec::Equivocate => "equivocate",
                        ByzantineStrategySpec::WithholdVotes { targets } => {
                            t.insert(
                                "targets".into(),
                                Value::Array(
                                    targets.iter().map(|i| Value::Int(*i as i64)).collect(),
                                ),
                            );
                            "withhold_votes"
                        }
                        ByzantineStrategySpec::LazyLeader { delay_ms } => {
                            t.insert("delay_ms".into(), Value::Int(*delay_ms as i64));
                            "lazy_leader"
                        }
                        ByzantineStrategySpec::FlipFlop { flip_secs, delay_ms } => {
                            t.insert("delay_ms".into(), Value::Int(*delay_ms as i64));
                            t.insert("flip_secs".into(), Value::Int(*flip_secs as i64));
                            "flip_flop"
                        }
                    };
                    t.insert("strategy".into(), Value::Str(name.into()));
                    insert_when(&mut t, "from", b.from, true);
                    if let Some(until) = b.until {
                        insert_when(&mut t, "until", until, false);
                    }
                    Value::Table(t)
                })
                .collect();
            faults.insert("byzantine".into(), Value::Array(items));
        }
        if !self.faults.chaos.is_empty() {
            let items = self
                .faults
                .chaos
                .iter()
                .map(|c| {
                    let mut t = BTreeMap::new();
                    if let Some(node) = c.node {
                        t.insert("node".into(), Value::Int(node as i64));
                    }
                    if let Some((from, to)) = c.link {
                        t.insert("from".into(), Value::Int(from as i64));
                        t.insert("to".into(), Value::Int(to as i64));
                    }
                    insert_when(&mut t, "from", c.from, true);
                    if let Some(until) = c.until {
                        insert_when(&mut t, "until", until, false);
                    }
                    if c.drop != 0.0 {
                        t.insert("drop".into(), Value::Float(c.drop));
                    }
                    if c.duplicate != 0.0 {
                        t.insert("duplicate".into(), Value::Float(c.duplicate));
                    }
                    if c.corrupt != 0.0 {
                        t.insert("corrupt".into(), Value::Float(c.corrupt));
                    }
                    if c.reorder_ms != 0 {
                        t.insert("reorder_ms".into(), Value::Int(c.reorder_ms as i64));
                    }
                    Value::Table(t)
                })
                .collect();
            faults.insert("chaos".into(), Value::Array(items));
        }
        if !faults.is_empty() {
            root.insert("faults".into(), Value::Table(faults));
        }

        let mut analysis = BTreeMap::new();
        if self.analysis.skipped_rounds {
            analysis.insert("skipped_rounds".into(), Value::Bool(true));
        }
        if self.analysis.schedule_churn {
            analysis.insert("schedule_churn".into(), Value::Bool(true));
        }
        if self.analysis.reinclusion {
            analysis.insert("reinclusion".into(), Value::Bool(true));
        }
        if self.analysis.adversary {
            analysis.insert("adversary".into(), Value::Bool(true));
        }
        if self.analysis.chaos {
            analysis.insert("chaos".into(), Value::Bool(true));
        }
        if !self.analysis.windows.is_empty() {
            let items = self
                .analysis
                .windows
                .iter()
                .map(|w| {
                    let mut t = BTreeMap::new();
                    t.insert("name".into(), Value::Str(w.name.clone()));
                    t.insert("from_frac".into(), Value::Float(w.from_frac));
                    t.insert("to_frac".into(), Value::Float(w.to_frac));
                    Value::Table(t)
                })
                .collect();
            analysis.insert("window".into(), Value::Array(items));
        }
        if !analysis.is_empty() {
            root.insert("analysis".into(), Value::Table(analysis));
        }

        let mut quick = BTreeMap::new();
        if let Some(xs) = &self.quick.sizes {
            quick.insert(
                "sizes".into(),
                axis_u64_value(&xs.iter().map(|n| *n as u64).collect::<Vec<_>>()),
            );
        }
        if let Some(xs) = &self.quick.tps {
            quick.insert("tps".into(), axis_u64_value(xs));
        }
        if let Some(xs) = &self.quick.duration_secs {
            quick.insert("duration_secs".into(), axis_u64_value(xs));
        }
        if let Some(xs) = &self.quick.seeds {
            quick.insert("seeds".into(), axis_u64_value(xs));
        }
        if let Some(xs) = &self.quick.period_rounds {
            quick.insert("period_rounds".into(), axis_u64_value(xs));
        }
        if !quick.is_empty() {
            root.insert("quick".into(), Value::Table(quick));
        }

        Value::Table(root)
    }

    /// Serializes to canonical TOML text.
    pub fn to_toml(&self) -> String {
        toml::serialize(&self.to_value())
    }
}

// ---------------------------------------------------------------------------
// Expansion into a run plan
// ---------------------------------------------------------------------------

/// Command-line-level adjustments applied while expanding a spec.
#[derive(Clone, Debug, Default)]
pub struct PlanOptions {
    /// Apply the scenario's `[quick]` overrides.
    pub quick: bool,
    /// Replace the duration axis.
    pub duration_override: Option<u64>,
    /// Replace the seed axis.
    pub seed_override: Option<u64>,
}

/// One fully resolved run: its output labels and simulator config.
#[derive(Clone, Debug)]
pub struct PlannedRun {
    /// Variant label (system name when no explicit variants are defined).
    pub variant: String,
    /// System label (`bullshark` / `hammerhead` / `static-leader`).
    pub system: String,
    /// Ordered key/value labels identifying the run in reports.
    pub labels: Vec<(String, String)>,
    /// Number of crashed validators.
    pub fault_count: usize,
    /// The simulator configuration.
    pub config: ExperimentConfig,
}

/// An expanded scenario: every concrete run, in a deterministic order.
#[derive(Clone, Debug)]
pub struct ScenarioPlan {
    /// Scenario name.
    pub name: String,
    /// Scenario description.
    pub description: String,
    /// Paper figure, if declared.
    pub figure: Option<String>,
    /// The runs, ordered committee → variant → duration → load → seed.
    pub runs: Vec<PlannedRun>,
    /// Analyses to compute per run.
    pub analysis: AnalysisSpec,
    /// Whether the scenario declared a `[workload]` table — only then
    /// does the report add the per-run workload goodput block.
    pub workload_declared: bool,
}

/// The variants in force after merging the axis defaults.
fn effective_variants(spec: &ScenarioSpec, period_axis: &[u64]) -> Vec<VariantSpec> {
    if !spec.variants.is_empty() {
        return spec.variants.clone();
    }
    let mut out = Vec::new();
    for system in &spec.systems {
        match system {
            SystemSpec::Bullshark | SystemSpec::StaticLeader => out.push(VariantSpec {
                label: system.label().to_string(),
                system: *system,
                static_leader: 0,
                scoring: None,
                period_rounds: None,
                exclusion: None,
            }),
            SystemSpec::Hammerhead => {
                for &period in period_axis {
                    for &exclusion in &spec.exclusion {
                        for &scoring in &spec.scoring {
                            let mut label = "hammerhead".to_string();
                            if period_axis.len() > 1 {
                                label.push_str(&format!("-T{period}"));
                            }
                            if spec.exclusion.len() > 1 {
                                label.push_str(&format!("-ex{}", exclusion.label()));
                            }
                            if spec.scoring.len() > 1 {
                                label.push_str(&format!("-{}", scoring_name(scoring)));
                            }
                            out.push(VariantSpec {
                                label,
                                system: SystemSpec::Hammerhead,
                                static_leader: 0,
                                scoring: Some(scoring),
                                period_rounds: Some(period),
                                exclusion: Some(exclusion),
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

impl ScenarioSpec {
    /// Expands the axes into concrete runs, validating every combination.
    pub fn plan(&self, opts: &PlanOptions) -> Result<ScenarioPlan, ScenarioError> {
        let sizes = match (opts.quick, &self.quick.sizes) {
            (true, Some(s)) => s.clone(),
            _ => self.committee_sizes.clone(),
        };
        let loads = match (opts.quick, &self.quick.tps) {
            (true, Some(t)) => t.clone(),
            _ => self.load_tps.clone(),
        };
        let mut durations = match (opts.quick, &self.quick.duration_secs) {
            (true, Some(d)) => d.clone(),
            _ => self.duration_secs.clone(),
        };
        if let Some(d) = opts.duration_override {
            if d == 0 {
                return Err(ScenarioError::Invalid("duration override must be positive".into()));
            }
            durations = vec![d];
        }
        let mut seeds = match (opts.quick, &self.quick.seeds) {
            (true, Some(s)) => s.clone(),
            _ => self.seeds.clone(),
        };
        if let Some(s) = opts.seed_override {
            seeds = vec![s];
        }
        let period_axis = match (opts.quick, &self.quick.period_rounds) {
            (true, Some(p)) => p.clone(),
            _ => self.period_rounds.clone(),
        };
        // Quick/CLI overrides bypass parse-time validation, so the
        // effective axes are re-checked here.
        if let Some(&small) = sizes.iter().find(|n| **n < 4) {
            return Err(ScenarioError::Invalid(format!(
                "committee size {small} cannot tolerate any fault (n = 3f + 1)"
            )));
        }
        if durations.contains(&0) {
            return Err(ScenarioError::Invalid("duration_secs must be positive".into()));
        }
        if let Some(w) = self.warmup_secs {
            if let Some(short) = durations.iter().find(|d| **d <= w) {
                return Err(ScenarioError::Invalid(format!(
                    "warmup_secs {w} does not leave a measurement window in a {short}s run"
                )));
            }
        }
        let variants = effective_variants(self, &period_axis);

        let mut runs = Vec::new();
        for &n in &sizes {
            let committee = Committee::new_equal_stake(n);
            let crashed = self.resolve_crashes(n)?;
            for variant in &variants {
                for &duration in &durations {
                    for &load in &loads {
                        for &seed in &seeds {
                            let config = self.build_config(
                                n, &committee, &crashed, variant, duration, load, seed,
                            )?;
                            // Fault count = distinct crashed validators
                            // anywhere on the timeline (mid-run crashes
                            // included).
                            let fault_count = config.faults.crashed_nodes().len();
                            let mut labels: Vec<(String, String)> = vec![
                                ("variant".into(), variant.label.clone()),
                                ("system".into(), variant.system.label().into()),
                                ("committee".into(), n.to_string()),
                                ("faults".into(), fault_count.to_string()),
                                ("load_tps".into(), load.to_string()),
                                ("duration_secs".into(), duration.to_string()),
                                ("seed".into(), seed.to_string()),
                            ];
                            if variant.system == SystemSpec::Hammerhead {
                                labels.push((
                                    "period_rounds".into(),
                                    config.hammerhead.period_rounds.to_string(),
                                ));
                                labels.push((
                                    "scoring".into(),
                                    scoring_name(config.hammerhead.scoring_rule),
                                ));
                                labels.push((
                                    "exclusion".into(),
                                    variant.exclusion.unwrap_or(ExclusionSpec::F).label(),
                                ));
                            }
                            runs.push(PlannedRun {
                                variant: variant.label.clone(),
                                system: variant.system.label().to_string(),
                                labels,
                                fault_count,
                                config,
                            });
                        }
                    }
                }
            }
        }
        Ok(ScenarioPlan {
            name: self.name.clone(),
            description: self.description.clone(),
            figure: self.figure.clone(),
            runs,
            analysis: self.analysis.clone(),
            workload_declared: self.workload.declared,
        })
    }

    fn resolve_crashes(&self, n: usize) -> Result<Vec<u16>, ScenarioError> {
        let mut crashed: Vec<u16> = self.faults.crashed.clone();
        if let Some(expr) = self.faults.crash_last {
            let count = expr.resolve(n);
            if count >= n {
                return Err(ScenarioError::Invalid(format!(
                    "crash_last resolves to {count} of {n} validators — nobody left alive"
                )));
            }
            crashed.extend(((n - count)..n).map(|i| i as u16));
        }
        crashed.sort_unstable();
        crashed.dedup();
        if let Some(&out_of_range) = crashed.iter().find(|i| **i as usize >= n) {
            return Err(ScenarioError::Invalid(format!(
                "crashed validator {out_of_range} is outside the committee of {n}"
            )));
        }
        // Beyond f crashed validators the protocol cannot commit at all;
        // running such a scenario measures nothing.
        let f = (n - 1) / 3;
        if crashed.len() > f {
            return Err(ScenarioError::Invalid(format!(
                "{} crashed validators exceeds f = {f} for a committee of {n}",
                crashed.len()
            )));
        }
        Ok(crashed)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_config(
        &self,
        n: usize,
        committee: &Committee,
        crashed: &[u16],
        variant: &VariantSpec,
        duration: u64,
        load: u64,
        seed: u64,
    ) -> Result<ExperimentConfig, ScenarioError> {
        let system = match variant.system {
            SystemSpec::Hammerhead => SystemKind::Hammerhead,
            SystemSpec::Bullshark | SystemSpec::StaticLeader => SystemKind::Bullshark,
        };
        let mut config = ExperimentConfig::paper(system, n, load);
        config.duration_secs = duration;
        config.warmup_secs = self.warmup_secs.unwrap_or((duration / 6).max(1));
        config.seed = seed;
        config.gst_secs = self.gst_secs;
        config.client_window_secs = self.client_window_secs;
        match self.network {
            NetworkSpec::Geo => {
                config.geo = true;
            }
            NetworkSpec::Flat { ms } => {
                config.geo = false;
                config.flat_latency_ms = ms;
            }
        }

        if variant.system == SystemSpec::Hammerhead {
            let hh = HammerheadConfig {
                period_rounds: variant.period_rounds.unwrap_or(self.period_rounds[0]),
                max_excluded_stake: variant
                    .exclusion
                    .unwrap_or(self.exclusion[0])
                    .to_config(committee),
                scoring_rule: variant.scoring.unwrap_or(self.scoring[0]),
                schedule_seed: self.schedule_seed,
                swap_from_base: self.swap_from_base,
            };
            hh.validate(committee).map_err(|e| {
                ScenarioError::Invalid(format!("variant `{}` on n = {n}: {e}", variant.label))
            })?;
            config.hammerhead = hh;
        }
        if variant.system == SystemSpec::StaticLeader {
            let leader = variant.static_leader;
            if leader as usize >= n {
                return Err(ScenarioError::Invalid(format!(
                    "static_leader {leader} is outside the committee of {n}"
                )));
            }
            if crashed.contains(&leader) {
                return Err(ScenarioError::Invalid(format!(
                    "static_leader {leader} is crashed — the run would never commit"
                )));
            }
            config.schedule_override = Some(ScheduleConfig::StaticLeader(ValidatorId(leader)));
        }

        config.workload = self.workload.build(duration, load)?;
        config.max_block_bytes = self.workload.block_bytes.map(|b| b as usize);
        config.faults = self.build_fault_schedule(n, crashed, duration)?;
        config.byzantine = self.build_byzantine_schedule(n, duration)?;
        config.chaos = self.build_chaos_schedule(n, duration)?;
        Ok(config)
    }

    /// Resolves the `[[faults.chaos]]` entries against a committee of
    /// `n` and a run of `duration` seconds into the concrete
    /// [`hh_sim::ChaosSchedule`], and validates the result (rates
    /// outside `[0, 1]`, out-of-range validators, empty or effect-free
    /// windows, and ambiguously overlapping same-link windows are all
    /// rejected here).
    fn build_chaos_schedule(
        &self,
        n: usize,
        duration: u64,
    ) -> Result<ChaosSchedule, ScenarioError> {
        let mut schedule = ChaosSchedule::new();
        for entry in &self.faults.chaos {
            let target = match (entry.node, entry.link) {
                (Some(node), _) => ChaosTarget::Node(node),
                (None, Some((from, to))) => ChaosTarget::Pair { from, to },
                (None, None) => ChaosTarget::AllLinks,
            };
            schedule = schedule.entry(ChaosEntry {
                target,
                from_us: entry.from.resolve_us(duration),
                until_us: entry.until.map(|u| u.resolve_us(duration)).unwrap_or(u64::MAX),
                drop: entry.drop,
                duplicate: entry.duplicate,
                corrupt: entry.corrupt,
                reorder_us: entry.reorder_ms.saturating_mul(1_000),
            });
        }
        schedule.validate(n).map_err(|e| ScenarioError::Invalid(format!("chaos schedule: {e}")))?;
        Ok(schedule)
    }

    /// Resolves the `[[faults.byzantine]]` entries against a committee of
    /// `n` and a run of `duration` seconds into the concrete
    /// [`hh_sim::ByzantineSchedule`], and validates the result (more than
    /// `f` attackers, out-of-range nodes or targets, and overlapping
    /// windows per node are all rejected here).
    fn build_byzantine_schedule(
        &self,
        n: usize,
        duration: u64,
    ) -> Result<ByzantineSchedule, ScenarioError> {
        let mut schedule = ByzantineSchedule::new();
        for entry in &self.faults.byzantine {
            let from_us = entry.from.resolve_us(duration);
            let until_us = entry.until.map(|u| u.resolve_us(duration)).unwrap_or(u64::MAX);
            schedule = match &entry.strategy {
                ByzantineStrategySpec::Equivocate => {
                    schedule.equivocate(entry.node, from_us, until_us)
                }
                ByzantineStrategySpec::WithholdVotes { targets } => {
                    schedule.withhold_votes(entry.node, targets.clone(), from_us, until_us)
                }
                ByzantineStrategySpec::LazyLeader { delay_ms } => {
                    schedule.lazy_leader(entry.node, delay_ms * 1_000, from_us, until_us)
                }
                ByzantineStrategySpec::FlipFlop { flip_secs, delay_ms } => schedule.flip_flop(
                    entry.node,
                    flip_secs * 1_000_000,
                    delay_ms * 1_000,
                    from_us,
                    until_us,
                ),
            };
        }
        schedule
            .validate(n)
            .map_err(|e| ScenarioError::Invalid(format!("byzantine schedule: {e}")))?;
        Ok(schedule)
    }

    /// Resolves the declarative fault spec against a committee of `n` and
    /// a run of `duration` seconds into the concrete event timeline, and
    /// validates the result (recover-before-crash, contradictory windows,
    /// more than `f` concurrent crashes are all rejected here).
    fn build_fault_schedule(
        &self,
        n: usize,
        crashed: &[u16],
        duration: u64,
    ) -> Result<FaultSchedule, ScenarioError> {
        fn resolve_nodes(sel: &NodeSel, n: usize, what: &str) -> Result<Vec<u16>, ScenarioError> {
            match sel {
                NodeSel::Ids(ids) => {
                    if let Some(&bad) = ids.iter().find(|i| **i as usize >= n) {
                        return Err(ScenarioError::Invalid(format!(
                            "{what} validator {bad} is outside the committee of {n}"
                        )));
                    }
                    Ok(ids.clone())
                }
                NodeSel::First(count) => {
                    let k = count.resolve(n).min(n);
                    Ok((0..k as u16).collect())
                }
            }
        }

        let mut schedule = FaultSchedule::new().crash_from_start(crashed.iter().copied());
        for entry in &self.faults.crashes {
            let at_us = entry.at.resolve_us(duration);
            for node in resolve_nodes(&entry.nodes, n, "crash")? {
                schedule = schedule.crash(node, at_us);
            }
        }
        for entry in &self.faults.recovers {
            let at_us = entry.at.resolve_us(duration);
            for node in resolve_nodes(&entry.nodes, n, "recover")? {
                schedule = schedule.recover(node, at_us);
            }
        }
        for entry in &self.faults.slowdowns {
            let from_us = entry.at.resolve_us(duration);
            let until_us = entry.until.map(|u| u.resolve_us(duration)).unwrap_or(u64::MAX);
            for node in resolve_nodes(&entry.nodes, n, "slowdown")? {
                schedule = schedule.slowdown(node, from_us, until_us, entry.extra_ms * 1000);
            }
        }
        for entry in &self.faults.partitions {
            let (a, b) = match &entry.sel {
                PartitionSel::Groups { a, b } => {
                    for id in a.iter().chain(b) {
                        if *id as usize >= n {
                            return Err(ScenarioError::Invalid(format!(
                                "partition validator {id} is outside the committee of {n}"
                            )));
                        }
                    }
                    (a.clone(), b.clone())
                }
                PartitionSel::IsolateFirst(count) => {
                    let k = count.resolve(n).min(n.saturating_sub(1));
                    ((0..k as u16).collect(), (k as u16..n as u16).collect())
                }
            };
            schedule = schedule.partition(
                a,
                b,
                entry.from.resolve_us(duration),
                entry.until.resolve_us(duration),
            );
        }
        schedule.validate(n).map_err(|e| ScenarioError::Invalid(format!("fault schedule: {e}")))?;
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "name = \"mini\"\n";

    #[test]
    fn minimal_spec_uses_paper_defaults() {
        let spec = ScenarioSpec::parse(MINIMAL).unwrap();
        assert_eq!(spec.committee_sizes, vec![10]);
        assert_eq!(spec.load_tps, vec![500]);
        assert_eq!(spec.duration_secs, vec![60]);
        assert_eq!(spec.seeds, vec![42]);
        assert_eq!(spec.network, NetworkSpec::Geo);
        assert_eq!(spec.systems, vec![SystemSpec::Hammerhead]);

        let plan = spec.plan(&PlanOptions::default()).unwrap();
        assert_eq!(plan.runs.len(), 1);
        let config = &plan.runs[0].config;
        assert_eq!(config.committee_size, 10);
        assert_eq!(config.load_tps, 500);
        assert_eq!(config.duration_secs, 60);
        assert_eq!(config.warmup_secs, 10, "default warmup is duration/6");
        assert!(config.geo);
        assert_eq!(config.hammerhead.period_rounds, 20);
    }

    #[test]
    fn axes_expand_to_cross_product_in_stable_order() {
        let spec = ScenarioSpec::parse(
            r#"
name = "sweep"
[committee]
sizes = [10, 13]
[load]
tps = [100, 200]
[systems]
run = ["bullshark", "hammerhead"]
"#,
        )
        .unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        assert_eq!(plan.runs.len(), 8);
        // committee-major, then variant, then load.
        assert_eq!(plan.runs[0].labels[2].1, "10");
        assert_eq!(plan.runs[0].system, "bullshark");
        assert_eq!(plan.runs[0].config.load_tps, 100);
        assert_eq!(plan.runs[1].config.load_tps, 200);
        assert_eq!(plan.runs[2].system, "hammerhead");
        assert_eq!(plan.runs[4].labels[2].1, "13");
    }

    #[test]
    fn unknown_keys_rejected_everywhere() {
        for doc in [
            "name = \"x\"\ntypo = 1\n",
            "name = \"x\"\n[committee]\nsize = 10\nbad = 1\n",
            "name = \"x\"\n[run]\nduration = 5\n",
            "name = \"x\"\n[hammerhead]\nperiod = 3\n",
        ] {
            let err = ScenarioSpec::parse(doc).unwrap_err();
            assert!(matches!(err, ScenarioError::Schema(_)), "doc {doc:?} gave {err}");
        }
    }

    #[test]
    fn rejects_period_below_two() {
        let err = ScenarioSpec::parse("name = \"x\"\n[hammerhead]\nperiod_rounds = 1\n")
            .unwrap()
            .plan(&PlanOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("period_rounds"), "{err}");
    }

    #[test]
    fn rejects_excluded_stake_above_f() {
        // f = 3 for n = 10; 40% of stake = 4 > f.
        let err = ScenarioSpec::parse("name = \"x\"\n[hammerhead]\nmax_excluded_pct = 40\n")
            .unwrap()
            .plan(&PlanOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn rejects_more_crashes_than_f() {
        let err = ScenarioSpec::parse("name = \"x\"\n[faults]\ncrash_last = 4\n")
            .unwrap()
            .plan(&PlanOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("exceeds f"), "{err}");
    }

    #[test]
    fn crash_expressions_resolve_per_committee() {
        let spec = ScenarioSpec::parse(
            "name = \"x\"\n[committee]\nsizes = [10, 100]\n[faults]\ncrash_last = \"n/3\"\n",
        )
        .unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        assert_eq!(plan.runs[0].fault_count, 3);
        assert_eq!(plan.runs[1].fault_count, 33);
        // The last validators crash, not the first.
        assert_eq!(plan.runs[0].config.faults.crashed_nodes(), vec![7, 8, 9]);
    }

    #[test]
    fn variants_replace_system_axes() {
        let spec = ScenarioSpec::parse(
            r#"
name = "ablation"
[[variant]]
label = "vote-based"
scoring = "vote-based"
[[variant]]
label = "static"
system = "static-leader"
static_leader = 2
"#,
        )
        .unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        assert_eq!(plan.runs.len(), 2);
        assert_eq!(plan.runs[0].variant, "vote-based");
        assert!(matches!(
            plan.runs[1].config.schedule_override,
            Some(ScheduleConfig::StaticLeader(ValidatorId(2)))
        ));
    }

    #[test]
    fn static_leader_must_be_alive() {
        let err = ScenarioSpec::parse(
            r#"
name = "x"
[faults]
crashed = [0]
[[variant]]
label = "static"
system = "static-leader"
static_leader = 0
"#,
        )
        .unwrap()
        .plan(&PlanOptions::default())
        .unwrap_err();
        assert!(err.to_string().contains("crashed"), "{err}");
    }

    #[test]
    fn quick_overrides_apply_only_with_flag() {
        let spec = ScenarioSpec::parse(
            r#"
name = "x"
[committee]
sizes = [10, 50]
[quick]
sizes = [10]
duration_secs = 5
"#,
        )
        .unwrap();
        assert_eq!(spec.plan(&PlanOptions::default()).unwrap().runs.len(), 2);
        let quick = spec.plan(&PlanOptions { quick: true, ..PlanOptions::default() }).unwrap();
        assert_eq!(quick.runs.len(), 1);
        assert_eq!(quick.runs[0].config.duration_secs, 5);
    }

    #[test]
    fn slowdown_fractions_scale_with_duration() {
        let spec = ScenarioSpec::parse(
            r#"
name = "incident"
[run]
duration_secs = 40
[[faults.slowdown]]
first = "n/10"
at_frac = 0.5
extra_ms = 800
"#,
        )
        .unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        let config = &plan.runs[0].config;
        // n = 10 → one degraded validator, onset at 20s, +800 ms.
        assert_eq!(
            config.faults.events(),
            &[hh_sim::FaultEvent::Slowdown {
                node: 0,
                from_us: 20_000_000,
                until_us: u64::MAX,
                extra_us: 800_000,
            }]
        );
    }

    #[test]
    fn dynamic_fault_tables_lower_to_a_validated_schedule() {
        let spec = ScenarioSpec::parse(
            r#"
name = "dynamic"
[committee]
size = 7
[run]
duration_secs = 40
[[faults.crash]]
nodes = [3]
at_secs = 8
recover_at_secs = 16
[[faults.partition]]
isolate_first = 2
from_frac = 0.5
until_frac = 0.75
"#,
        )
        .unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        let config = &plan.runs[0].config;
        use hh_sim::FaultEvent;
        assert_eq!(
            config.faults.events(),
            &[
                FaultEvent::Crash { node: 3, at_us: 8_000_000 },
                FaultEvent::Recover { node: 3, at_us: 16_000_000 },
                FaultEvent::Partition {
                    group_a: vec![0, 1],
                    group_b: vec![2, 3, 4, 5, 6],
                    from_us: 20_000_000,
                    until_us: 30_000_000,
                },
            ]
        );
        assert!(config.faults.has_recoveries());
        // The mid-run crash counts toward the faults label.
        assert_eq!(plan.runs[0].fault_count, 1);
    }

    #[test]
    fn contradictory_fault_schedules_are_rejected() {
        // Recovery with no preceding crash.
        let err =
            ScenarioSpec::parse("name = \"x\"\n[[faults.recover]]\nnodes = [1]\nat_secs = 5\n")
                .unwrap()
                .plan(&PlanOptions::default())
                .unwrap_err();
        assert!(err.to_string().contains("without a preceding crash"), "{err}");

        // Recovery scheduled before its crash.
        let err = ScenarioSpec::parse(
            "name = \"x\"\n[[faults.crash]]\nnodes = [1]\nat_secs = 20\nrecover_at_secs = 10\n",
        )
        .unwrap()
        .plan(&PlanOptions::default())
        .unwrap_err();
        assert!(err.to_string().contains("without a preceding crash"), "{err}");

        // Crashing four of ten at once (f = 3), staggered via mid-run
        // crashes on top of crash_last.
        let err = ScenarioSpec::parse(
            "name = \"x\"\n[faults]\ncrash_last = 3\n[[faults.crash]]\nnodes = [0]\nat_secs = 5\n",
        )
        .unwrap()
        .plan(&PlanOptions::default())
        .unwrap_err();
        assert!(err.to_string().contains("exceeds f"), "{err}");

        // A validator on both sides of a partition fails at parse time.
        let err = ScenarioSpec::parse(
            "name = \"x\"\n[[faults.partition]]\na = [0, 1]\nb = [1, 2]\nuntil_secs = 5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("both sides"), "{err}");

        // An inverted same-kind window fails at parse time.
        let err = ScenarioSpec::parse(
            "name = \"x\"\n[[faults.partition]]\nisolate_first = 1\nfrom_secs = 9\nuntil_secs = 3\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn spec_round_trips_through_toml() {
        let doc = r#"
name = "round"
description = "exercise most knobs"
figure = "Figure 9"
[committee]
sizes = [10, 50]
[load]
tps = [250, 500]
[run]
duration_secs = 30
warmup_secs = 5
seeds = [1, 2]
[network]
model = "flat"
flat_ms = 7
[systems]
run = ["bullshark", "hammerhead"]
[hammerhead]
period_rounds = [4, 20]
max_excluded_pct = [10, 20]
scoring = ["vote-based", "vote-ema-30"]
schedule_seed = 3
[faults]
crashed = [1]
crash_last = "n/5"
[[faults.slowdown]]
first = 2
at_frac = 0.5
until_frac = 0.75
extra_ms = 100
[[faults.crash]]
nodes = [0]
at_secs = 10
[[faults.recover]]
nodes = [0]
at_secs = 20
[[faults.partition]]
a = [0, 1]
b = [2, 3]
from_secs = 3
until_frac = 0.5
[analysis]
skipped_rounds = true
reinclusion = true
[[analysis.window]]
name = "late"
from_frac = 0.5
to_frac = 1.0
[quick]
sizes = [10]
tps = [250]
"#;
        let spec = ScenarioSpec::parse(doc).unwrap();
        let text = spec.to_toml();
        let again = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(spec, again, "canonical form:\n{text}");
    }

    #[test]
    fn chaos_entries_parse_and_lower() {
        let spec = ScenarioSpec::parse(
            r#"
name = "chaos-parse"
[run]
duration_secs = 10
[[faults.chaos]]
until_frac = 0.5
drop = 0.3
duplicate = 0.1
[[faults.chaos]]
node = 2
from_frac = 0.5
corrupt = 0.2
reorder_ms = 40
[[faults.chaos]]
from = 0
to = 1
from_secs = 5
until_secs = 7
drop = 0.9
[analysis]
chaos = true
"#,
        )
        .unwrap();
        assert_eq!(spec.faults.chaos.len(), 3);
        assert!(spec.analysis.chaos);
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        let schedule = &plan.runs[0].config.chaos;
        let entries = schedule.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].target, hh_sim::ChaosTarget::AllLinks);
        assert_eq!(entries[0].until_us, 5_000_000, "frac of a 10s run");
        assert_eq!(entries[0].drop, 0.3);
        assert_eq!(entries[1].target, hh_sim::ChaosTarget::Node(2));
        assert_eq!(entries[1].until_us, u64::MAX, "open window runs to the end");
        assert_eq!(entries[1].reorder_us, 40_000, "ms sugar lowers to µs");
        assert_eq!(entries[2].target, hh_sim::ChaosTarget::Pair { from: 0, to: 1 });
        assert_eq!(entries[2].from_us, 5_000_000);
    }

    #[test]
    fn chaos_entries_round_trip_through_toml() {
        let doc = r#"
name = "chaos-round"
[[faults.chaos]]
until_frac = 0.4
drop = 0.25
reorder_ms = 15
[[faults.chaos]]
node = 1
from_frac = 0.4
until_frac = 0.8
duplicate = 0.5
[[faults.chaos]]
from = 2
to = 3
from_secs = 1
corrupt = 0.1
[analysis]
chaos = true
"#;
        let spec = ScenarioSpec::parse(doc).unwrap();
        let text = spec.to_toml();
        let again = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(spec, again, "canonical form:\n{text}");
    }

    #[test]
    fn rejects_mixed_chaos_scope() {
        let err = ScenarioSpec::parse(
            "name = \"x\"\n[[faults.chaos]]\nnode = 1\nfrom = 0\nto = 2\ndrop = 0.5\n",
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Schema(_)), "{err}");
        let err = ScenarioSpec::parse("name = \"x\"\n[[faults.chaos]]\nfrom = 0\ndrop = 0.5\n")
            .unwrap_err();
        assert!(err.to_string().contains("`from` + `to`"), "{err}");
    }

    #[test]
    fn rejects_unrunnable_chaos_schedules_at_plan_time() {
        // Rate out of [0, 1].
        let err = ScenarioSpec::parse("name = \"x\"\n[[faults.chaos]]\ndrop = 1.5\n")
            .unwrap()
            .plan(&PlanOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("chaos schedule"), "{err}");
        // Out-of-range validator for the committee of 10.
        let err = ScenarioSpec::parse("name = \"x\"\n[[faults.chaos]]\nnode = 10\ndrop = 0.5\n")
            .unwrap()
            .plan(&PlanOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("chaos schedule"), "{err}");
        // Empty parse-time window is caught before planning.
        let err = ScenarioSpec::parse(
            "name = \"x\"\n[[faults.chaos]]\nfrom_frac = 0.6\nuntil_frac = 0.4\ndrop = 0.5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("chaos window is empty"), "{err}");
    }

    #[test]
    fn overridden_axes_are_revalidated() {
        // --duration below the explicit warmup leaves no measurement window.
        let spec = ScenarioSpec::parse("name = \"x\"\n[run]\nwarmup_secs = 6\n").unwrap();
        let err = spec
            .plan(&PlanOptions { duration_override: Some(5), ..PlanOptions::default() })
            .unwrap_err();
        assert!(err.to_string().contains("measurement window"), "{err}");

        // [quick] committee sizes below the n = 3f + 1 minimum.
        let spec = ScenarioSpec::parse("name = \"x\"\n[quick]\nsizes = 2\n").unwrap();
        assert!(spec.plan(&PlanOptions::default()).is_ok(), "non-quick path is unaffected");
        let err = spec.plan(&PlanOptions { quick: true, ..PlanOptions::default() }).unwrap_err();
        assert!(err.to_string().contains("committee size 2"), "{err}");
    }

    #[test]
    fn conflicting_scalar_and_plural_keys_rejected() {
        for doc in [
            "name = \"x\"\n[committee]\nsize = 50\nsizes = [10]\n",
            "name = \"x\"\n[run]\nseed = 1\nseeds = [2, 3]\n",
        ] {
            let err = ScenarioSpec::parse(doc).unwrap_err();
            assert!(err.to_string().contains("only one of"), "doc {doc:?} gave {err}");
        }
    }

    #[test]
    fn exclusion_pct_derives_from_total_stake() {
        let spec =
            ScenarioSpec::parse("name = \"x\"\n[hammerhead]\nmax_excluded_pct = 30\n").unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        // Equal-stake committee of 10: total stake 10, 30% → 3 = f.
        assert_eq!(plan.runs[0].config.hammerhead.max_excluded_stake, Some(Stake(3)));
    }

    #[test]
    fn undeclared_workload_is_the_constant_sugar() {
        let spec = ScenarioSpec::parse(MINIMAL).unwrap();
        assert!(!spec.workload.declared);
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        assert!(!plan.workload_declared);
        let config = &plan.runs[0].config;
        assert_eq!(config.workload, Workload::constant(), "sugar lowers to the exact default");
        assert_eq!(config.max_block_bytes, None);
    }

    #[test]
    fn workload_table_parses_and_lowers() {
        let spec = ScenarioSpec::parse(
            r#"
name = "wl"
[load]
tps = 1000
[run]
duration_secs = 40
[workload]
arrival = "poisson"
mode = "open"
payload_bytes = 512
spread = 2.5
block_bytes = 65536
"#,
        )
        .unwrap();
        assert!(spec.workload.declared);
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        assert!(plan.workload_declared);
        let config = &plan.runs[0].config;
        assert_eq!(
            config.workload.phases,
            vec![Phase { from_us: 0, arrival: Arrival::Poisson { scale: 1.0 } }]
        );
        assert_eq!(config.workload.mode, SubmissionMode::Open);
        assert_eq!(config.workload.payload_bytes, 512);
        assert_eq!(config.workload.spread, 2.5);
        assert_eq!(config.max_block_bytes, Some(65536));
    }

    #[test]
    fn workload_phases_resolve_fracs_and_absolute_rates() {
        let spec = ScenarioSpec::parse(
            r#"
name = "phased"
[load]
tps = 500
[run]
duration_secs = 40
[[workload.phase]]
scale = 0.5
[[workload.phase]]
from_frac = 0.25
arrival = "onoff"
burst_secs = 2.0
idle_secs = 2.0
[[workload.phase]]
from_secs = 30
tps = 1500
arrival = "poisson"
"#,
        )
        .unwrap();
        let plan = spec.plan(&PlanOptions::default()).unwrap();
        let workload = &plan.runs[0].config.workload;
        assert_eq!(
            workload.phases,
            vec![
                Phase { from_us: 0, arrival: Arrival::Constant { scale: 0.5 } },
                Phase {
                    from_us: 10_000_000,
                    arrival: Arrival::OnOff { scale: 1.0, burst_secs: 2.0, idle_secs: 2.0 },
                },
                // tps 1500 against the 500 load axis → scale 3.
                Phase { from_us: 30_000_000, arrival: Arrival::Poisson { scale: 3.0 } },
            ]
        );
    }

    #[test]
    fn workload_schema_rejections() {
        for (doc, needle) in [
            ("name = \"x\"\n[workload]\narrival = \"sawtooth\"\n", "unknown arrival"),
            ("name = \"x\"\n[workload]\nmode = \"half-open\"\n", "unknown workload mode"),
            ("name = \"x\"\n[workload]\narrival = \"onoff\"\n", "requires burst_secs"),
            ("name = \"x\"\n[workload]\narrival = \"ramp\"\n", "requires ramp_to_scale"),
            (
                "name = \"x\"\n[workload]\narrival = \"constant\"\nburst_secs = 1.0\n",
                "does not apply",
            ),
            (
                "name = \"x\"\n[workload]\narrival = \"poisson\"\n[[workload.phase]]\nscale = 1.0\n",
                "conflicts with an explicit",
            ),
            (
                "name = \"x\"\n[[workload.phase]]\nscale = 1.0\ntps = 100\n",
                "both `scale` and `tps`",
            ),
            (
                "name = \"x\"\n[[workload.phase]]\narrival = \"ramp\"\nramp_to_scale = 2.0\nscale = 1.0\n",
                "ramp phases take",
            ),
            ("name = \"x\"\n[workload]\ntypo = 1\n", "unknown key"),
        ] {
            let err = ScenarioSpec::parse(doc).unwrap_err();
            assert!(err.to_string().contains(needle), "doc {doc:?} gave {err}");
        }
    }

    #[test]
    fn workload_value_rejections() {
        for (doc, needle) in [
            ("name = \"x\"\n[workload]\nspread = 0.5\n", "spread"),
            ("name = \"x\"\n[workload]\npayload_bytes = 2097152\n", "payload_bytes"),
            (
                "name = \"x\"\n[workload]\npayload_bytes = 512\nblock_bytes = 100\n",
                "cannot fit one",
            ),
            (
                "name = \"x\"\n[[workload.phase]]\nscale = 0.0\n",
                "zero rate",
            ),
            (
                "name = \"x\"\n[[workload.phase]]\nfrom_secs = 5\nscale = 1.0\n",
                "must start at 0",
            ),
            (
                "name = \"x\"\n[[workload.phase]]\nscale = 1.0\n[[workload.phase]]\nfrom_secs = 0\nscale = 2.0\n",
                "ascending",
            ),
            (
                "name = \"x\"\n[workload]\narrival = \"onoff\"\nburst_secs = 0.0\nidle_secs = 1.0\n",
                "burst_secs",
            ),
        ] {
            let err = ScenarioSpec::parse(doc).unwrap_err();
            assert!(err.to_string().contains(needle), "doc {doc:?} gave {err}");
        }
    }

    #[test]
    fn workload_phase_beyond_duration_rejected_at_plan_time() {
        let spec = ScenarioSpec::parse(
            "name = \"x\"\n[run]\nduration_secs = 10\n\
             [[workload.phase]]\nscale = 1.0\n[[workload.phase]]\nfrom_secs = 20\nscale = 2.0\n",
        )
        .unwrap();
        let err = spec.plan(&PlanOptions::default()).unwrap_err();
        assert!(err.to_string().contains("starts at or after"), "{err}");
    }

    #[test]
    fn workload_round_trips_through_toml() {
        let doc = r#"
name = "wl-round"
[load]
tps = 800
[run]
duration_secs = 30
[workload]
mode = "open"
payload_bytes = 128
spread = 3.0
block_bytes = 32768
[[workload.phase]]
scale = 0.5
[[workload.phase]]
from_frac = 0.3
arrival = "onoff"
burst_secs = 1.5
idle_secs = 2.5
[[workload.phase]]
from_secs = 20
tps = 1200
arrival = "poisson"
[[workload.phase]]
from_frac = 0.9
arrival = "ramp"
ramp_from_scale = 1.0
ramp_to_scale = 2.0
"#;
        let spec = ScenarioSpec::parse(doc).unwrap();
        let text = spec.to_toml();
        let again = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(spec, again, "canonical form:\n{text}");
        // And the declared flag itself round-trips for a minimal table.
        let minimal = ScenarioSpec::parse("name = \"x\"\n[workload]\n").unwrap();
        assert!(minimal.workload.declared);
        let again = ScenarioSpec::parse(&minimal.to_toml()).unwrap();
        assert_eq!(minimal, again);
    }

    #[test]
    fn duration_and_seed_overrides() {
        let spec = ScenarioSpec::parse("name = \"x\"\n[run]\nseeds = [1, 2]\n").unwrap();
        let plan = spec
            .plan(&PlanOptions {
                duration_override: Some(9),
                seed_override: Some(77),
                ..PlanOptions::default()
            })
            .unwrap();
        assert_eq!(plan.runs.len(), 1);
        assert_eq!(plan.runs[0].config.duration_secs, 9);
        assert_eq!(plan.runs[0].config.seed, 77);
        // Warmup follows the overridden duration.
        assert_eq!(plan.runs[0].config.warmup_secs, 1);
    }
}
