//! A small TOML parser and serializer.
//!
//! The workspace deliberately carries no serde (`DESIGN.md` §5) and the
//! build environment has no crates.io access, so scenario files are read
//! by this hand-rolled implementation. It covers the TOML subset the
//! scenario schema uses — which is most of everyday TOML:
//!
//! * `key = value` pairs with bare or dotted keys;
//! * `[table]` and `[table.sub]` headers, `[[array-of-tables]]`;
//! * basic `"strings"` (with `\" \\ \n \t \r \u{...}`-style escapes),
//!   integers (`_` separators, signs), floats, booleans;
//! * arrays (nestable, multi-line) and inline tables `{ a = 1 }`;
//! * `#` comments anywhere outside strings.
//!
//! Not supported: literal `'strings'`, multi-line `"""strings"""`,
//! dates/times. Parsing a file that needs those fails with a clear error
//! rather than silently misreading it.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Array(Vec<Value>),
    /// A table (sorted by key; TOML tables are order-insensitive).
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// Borrows the table, if this is one.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// An empty table.
    pub fn table() -> Value {
        Value::Table(BTreeMap::new())
    }
}

/// A TOML syntax error with 1-based line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Parses a complete TOML document into its root table.
pub fn parse(input: &str) -> Result<Value, TomlError> {
    Parser { bytes: input.as_bytes(), pos: 0 }.parse_document()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(&mut self) -> Result<Value, TomlError> {
        let mut root = BTreeMap::new();
        // Path of the table currently receiving `key = value` lines; the
        // final component of an array-of-tables path addresses its last
        // element.
        let mut current: Vec<String> = Vec::new();
        loop {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                return Ok(Value::Table(root));
            }
            match self.peek() {
                b'[' => {
                    self.pos += 1;
                    let array_of_tables = self.peek_is(b'[');
                    if array_of_tables {
                        self.pos += 1;
                    }
                    self.skip_spaces();
                    let path = self.parse_key_path()?;
                    self.skip_spaces();
                    self.expect(b']')?;
                    if array_of_tables {
                        self.expect(b']')?;
                    }
                    self.expect_line_end()?;
                    self.open_table(&mut root, &path, array_of_tables)?;
                    current = path;
                }
                _ => {
                    let path = self.parse_key_path()?;
                    self.skip_spaces();
                    self.expect(b'=')?;
                    self.skip_spaces();
                    let value = self.parse_value()?;
                    self.expect_line_end()?;
                    let table = self.resolve_mut(&mut root, &current)?;
                    self.insert_at_path(table, &path, value)?;
                }
            }
        }
    }

    /// Creates (or re-enters) the table at `path`, appending a fresh
    /// element when `array_of_tables`.
    fn open_table(
        &mut self,
        root: &mut BTreeMap<String, Value>,
        path: &[String],
        array_of_tables: bool,
    ) -> Result<(), TomlError> {
        let (last, prefix) = path.split_last().expect("header path is never empty");
        let mut table = root;
        for part in prefix {
            table = match table.entry(part.clone()).or_insert_with(Value::table) {
                Value::Table(t) => t,
                Value::Array(items) => match items.last_mut() {
                    Some(Value::Table(t)) => t,
                    _ => return Err(self.err(format!("`{part}` is not a table"))),
                },
                _ => return Err(self.err(format!("`{part}` is not a table"))),
            };
        }
        if array_of_tables {
            match table.entry(last.clone()).or_insert_with(|| Value::Array(Vec::new())) {
                Value::Array(items) => items.push(Value::table()),
                _ => return Err(self.err(format!("`{last}` is not an array of tables"))),
            }
        } else {
            match table.entry(last.clone()).or_insert_with(Value::table) {
                Value::Table(_) => {}
                _ => return Err(self.err(format!("`{last}` redefined as a table"))),
            }
        }
        Ok(())
    }

    /// Borrows the table a header path refers to (last array element for
    /// array-of-tables components).
    fn resolve_mut<'t>(
        &self,
        root: &'t mut BTreeMap<String, Value>,
        path: &[String],
    ) -> Result<&'t mut BTreeMap<String, Value>, TomlError> {
        let mut table = root;
        for part in path {
            table = match table.get_mut(part) {
                Some(Value::Table(t)) => t,
                Some(Value::Array(items)) => match items.last_mut() {
                    Some(Value::Table(t)) => t,
                    _ => return Err(self.err(format!("`{part}` is not a table"))),
                },
                _ => return Err(self.err(format!("`{part}` is not a table"))),
            };
        }
        Ok(table)
    }

    /// Inserts `value` at a (possibly dotted) key path under `table`.
    fn insert_at_path(
        &self,
        table: &mut BTreeMap<String, Value>,
        path: &[String],
        value: Value,
    ) -> Result<(), TomlError> {
        let (last, prefix) = path.split_last().expect("key path is never empty");
        let mut table = table;
        for part in prefix {
            table = match table.entry(part.clone()).or_insert_with(Value::table) {
                Value::Table(t) => t,
                _ => return Err(self.err(format!("`{part}` is not a table"))),
            };
        }
        if table.insert(last.clone(), value).is_some() {
            return Err(self.err(format!("duplicate key `{last}`")));
        }
        Ok(())
    }

    fn parse_key_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut path = vec![self.parse_key()?];
        loop {
            self.skip_spaces();
            if self.peek_is(b'.') {
                self.pos += 1;
                self.skip_spaces();
                path.push(self.parse_key()?);
            } else {
                return Ok(path);
            }
        }
    }

    fn parse_key(&mut self) -> Result<String, TomlError> {
        if self.peek_is(b'"') {
            return self.parse_string();
        }
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric()
                || self.bytes[self.pos] == b'_'
                || self.bytes[self.pos] == b'-')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a key".to_string()));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_value(&mut self) -> Result<Value, TomlError> {
        match self.peek() {
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_inline_table(),
            b't' | b'f' => self.parse_bool(),
            b'\'' => Err(self.err("literal strings ('...') are not supported; use \"...\"".into())),
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, TomlError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated string".to_string()));
            }
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(&String::from_utf8_lossy(hex), 16)
                                .map_err(|_| self.err("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                b'\n' => return Err(self.err("newline in basic string".to_string())),
                _ => {
                    // Consume one UTF-8 scalar.
                    let tail = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(tail)
                        .map_err(|_| self.err("invalid UTF-8".to_string()))?;
                    let ch = s.chars().next().expect("non-empty by bounds check");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Value, TomlError> {
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            Err(self.err("expected a value".to_string()))
        }
    }

    fn parse_number(&mut self) -> Result<Value, TomlError> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'+' | b'-' | b'_' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a value".to_string()));
        }
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).replace('_', "");
        if raw.contains('.') || raw.to_ascii_lowercase().contains('e') {
            raw.parse::<f64>().map(Value::Float).map_err(|_| self.err(format!("bad float `{raw}`")))
        } else {
            raw.parse::<i64>().map(Value::Int).map_err(|_| self.err(format!("bad integer `{raw}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, TomlError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek_is(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia();
            if self.peek_is(b',') {
                self.pos += 1;
            } else if !self.peek_is(b']') {
                return Err(self.err("expected `,` or `]` in array".to_string()));
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, TomlError> {
        self.expect(b'{')?;
        let mut table = BTreeMap::new();
        self.skip_spaces();
        if self.peek_is(b'}') {
            self.pos += 1;
            return Ok(Value::Table(table));
        }
        loop {
            self.skip_spaces();
            let path = self.parse_key_path()?;
            self.skip_spaces();
            self.expect(b'=')?;
            self.skip_spaces();
            let value = self.parse_value()?;
            self.insert_at_path(&mut table, &path, value)?;
            self.skip_spaces();
            if self.peek_is(b',') {
                self.pos += 1;
            } else {
                self.expect(b'}')?;
                return Ok(Value::Table(table));
            }
        }
    }

    // --- lexical helpers -------------------------------------------------

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_is(&self, b: u8) -> bool {
        self.bytes.get(self.pos) == Some(&b)
    }

    fn expect(&mut self, b: u8) -> Result<(), TomlError> {
        if self.peek_is(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    /// Consumes trailing spaces, an optional comment, and the newline.
    fn expect_line_end(&mut self) -> Result<(), TomlError> {
        self.skip_spaces();
        if self.peek_is(b'#') {
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                self.pos += 1;
            }
        }
        if self.pos >= self.bytes.len() || self.peek_is(b'\n') || self.peek_is(b'\r') {
            Ok(())
        } else {
            Err(self.err("unexpected trailing characters".to_string()))
        }
    }

    /// Skips spaces, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'#' => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// Skips spaces and tabs only (stays on the current line).
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), b' ' | b'\t') {
            self.pos += 1;
        }
    }

    fn err(&self, message: String) -> TomlError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|b| **b == b'\n')
            .count();
        TomlError { line, message }
    }
}

/// Serializes a root table back to TOML text.
///
/// Scalars and arrays of scalars come first as `key = value` lines;
/// sub-tables follow as `[dotted.headers]` and arrays of tables as
/// `[[dotted.headers]]`. `parse(serialize(v)) == v` for every value this
/// module can parse.
///
/// # Panics
///
/// Panics if `root` is not a [`Value::Table`].
pub fn serialize(root: &Value) -> String {
    let table = root.as_table().expect("TOML documents are tables at the root");
    let mut out = String::new();
    serialize_table(table, &mut Vec::new(), &mut out);
    out
}

fn is_array_of_tables(value: &Value) -> bool {
    matches!(value, Value::Array(items)
        if !items.is_empty() && items.iter().all(|i| matches!(i, Value::Table(_))))
}

fn serialize_table(table: &BTreeMap<String, Value>, path: &mut Vec<String>, out: &mut String) {
    for (key, value) in table {
        match value {
            Value::Table(_) => {}
            _ if is_array_of_tables(value) => {}
            _ => {
                out.push_str(&format!("{} = {}\n", format_key(key), format_value(value)));
            }
        }
    }
    for (key, value) in table {
        if let Value::Table(sub) = value {
            path.push(key.clone());
            out.push_str(&format!("\n[{}]\n", format_path(path)));
            serialize_table(sub, path, out);
            path.pop();
        } else if let Value::Array(items) = value {
            if is_array_of_tables(value) {
                for item in items {
                    path.push(key.clone());
                    out.push_str(&format!("\n[[{}]]\n", format_path(path)));
                    serialize_table(item.as_table().expect("array-of-tables member"), path, out);
                    path.pop();
                }
            }
        }
    }
}

fn format_path(path: &[String]) -> String {
    path.iter().map(|p| format_key(p)).collect::<Vec<_>>().join(".")
}

fn format_key(key: &str) -> String {
    let bare =
        !key.is_empty() && key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if bare {
        key.to_string()
    } else {
        format!("\"{}\"", key.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

fn format_value(value: &Value) -> String {
    match value {
        Value::Str(s) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
                .replace('\r', "\\r")
        ),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            let s = format!("{x}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(format_value).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(t) => {
            let inner: Vec<String> =
                t.iter().map(|(k, v)| format!("{} = {}", format_key(k), format_value(v))).collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# top comment
name = "demo"   # trailing comment
count = 42
rate = 2.5
big = 1_000_000
neg = -7
on = true

[table]
key = "v"

[table.sub]
x = [1, 2, 3]
mixed = [[1], [2, 3]]

[[runs]]
id = 1

[[runs]]
id = 2
inline = { a = 1, b = "two" }
"#;
        let v = parse(doc).unwrap();
        let t = v.as_table().unwrap();
        assert_eq!(t["name"], Value::Str("demo".into()));
        assert_eq!(t["count"], Value::Int(42));
        assert_eq!(t["rate"], Value::Float(2.5));
        assert_eq!(t["big"], Value::Int(1_000_000));
        assert_eq!(t["neg"], Value::Int(-7));
        assert_eq!(t["on"], Value::Bool(true));
        let sub = t["table"].as_table().unwrap()["sub"].as_table().unwrap();
        assert_eq!(sub["x"], Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]));
        match &t["runs"] {
            Value::Array(items) => {
                assert_eq!(items.len(), 2);
                let second = items[1].as_table().unwrap();
                assert_eq!(second["id"], Value::Int(2));
                assert_eq!(second["inline"].as_table().unwrap()["b"], Value::Str("two".into()));
            }
            other => panic!("runs should be an array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#"s = "a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_table().unwrap()["s"], Value::Str("a\"b\\c\ndA".into()));
    }

    #[test]
    fn multiline_arrays_with_comments() {
        let v = parse("xs = [\n  1, # one\n  2,\n  3\n]\n").unwrap();
        assert_eq!(
            v.as_table().unwrap()["xs"],
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn rejects_junk_with_line_numbers() {
        let err = parse("good = 1\nbad = @nope\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("dup = 1\ndup = 2\n").unwrap_err().message.contains("duplicate"));
        assert!(parse("s = 'literal'\n").unwrap_err().message.contains("literal"));
        assert!(parse("x = 1 2\n").unwrap_err().message.contains("trailing"));
    }

    #[test]
    fn serialize_round_trips() {
        let doc = r#"
name = "round-trip"
f = 2.0
xs = [1, 2]

[a]
flag = false

[a.b]
s = "nested \"quotes\""

[[v]]
n = 1

[[v]]
n = 2
"#;
        let first = parse(doc).unwrap();
        let text = serialize(&first);
        let second = parse(&text).unwrap();
        assert_eq!(first, second, "serialized form:\n{text}");
        // Float stays a float through the round trip.
        assert_eq!(second.as_table().unwrap()["f"], Value::Float(2.0));
    }

    #[test]
    fn dotted_keys() {
        let v = parse("a.b.c = 3\n").unwrap();
        assert_eq!(
            v.as_table().unwrap()["a"].as_table().unwrap()["b"].as_table().unwrap()["c"],
            Value::Int(3)
        );
    }
}
