//! Property tests round-tripping random byzantine schedules through the
//! whole declaration pipeline: generated `ByzantineEntrySpec`s →
//! canonical TOML → re-parsed `ScenarioSpec` → planned
//! `ExperimentConfig` → `hh_sim::ByzantineSchedule`.
//!
//! Two invariants: the canonical TOML re-parses to an equal spec, and
//! the planned schedule contains exactly the generated windows with
//! times resolved and units converted (ms → µs delays, s → µs flip
//! periods). The deterministic tests below pin the rejection cases the
//! grammar must catch: more than `f` attackers, unknown strategies,
//! overlapping windows, bad withhold targets, misapplied parameters.

use hh_scenario::{ByzantineEntrySpec, ByzantineStrategySpec, PlanOptions, ScenarioSpec, WhenSpec};
use hh_sim::ByzantineSchedule;
use proptest::prelude::*;

const DURATION_SECS: u64 = 20;

/// SplitMix64 — drives the shape choices for one case.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// A random instant, quantized so frac and secs forms both resolve
/// exactly: whole seconds, or quarter fractions of the 20s run.
fn random_when(rng: &mut Mix, lo_secs: u64, hi_secs: u64) -> WhenSpec {
    let secs = lo_secs + rng.below(hi_secs.saturating_sub(lo_secs).max(1));
    if rng.below(3) == 0 && secs.is_multiple_of(5) {
        WhenSpec::Frac(secs as f64 / DURATION_SECS as f64)
    } else {
        WhenSpec::Secs(secs)
    }
}

fn base_spec(n: usize) -> ScenarioSpec {
    ScenarioSpec::parse(&format!(
        "name = \"byzantine-roundtrip\"\n[committee]\nsize = {n}\n[run]\nduration_secs = \
         {DURATION_SECS}\nwarmup_secs = 2\n[network]\nmodel = \"flat\"\n"
    ))
    .expect("base spec parses")
}

/// A random strategy whose parameters are valid for attacker `node` in
/// a committee of `n`: withhold targets are 1..=f validators other than
/// the attacker, delays are positive, flip periods are whole seconds.
fn random_strategy(rng: &mut Mix, node: u16, n: usize) -> ByzantineStrategySpec {
    let f = (n - 1) / 3;
    match rng.below(4) {
        0 => ByzantineStrategySpec::Equivocate,
        1 => {
            let count = 1 + rng.below(f as u64) as usize;
            let mut pool: Vec<u16> = (0..n as u16).filter(|v| *v != node).collect();
            let rot = rng.below(pool.len() as u64) as usize;
            pool.rotate_left(rot);
            let mut targets: Vec<u16> = pool.into_iter().take(count).collect();
            targets.sort_unstable();
            ByzantineStrategySpec::WithholdVotes { targets }
        }
        2 => ByzantineStrategySpec::LazyLeader { delay_ms: 1 + rng.below(1_000) },
        _ => ByzantineStrategySpec::FlipFlop {
            flip_secs: 1 + rng.below(5),
            delay_ms: 1 + rng.below(1_000),
        },
    }
}

/// Generates a valid byzantine spec on `n` validators: at most `f`
/// attackers, each with one window — or two disjoint windows split
/// around the 10s midpoint, possibly with different strategies.
fn random_byzantine(rng: &mut Mix, n: usize, spec: &mut ScenarioSpec) {
    let f = (n - 1) / 3;
    for node in 0..rng.below(f as u64 + 1) as u16 {
        if rng.below(2) == 0 {
            spec.faults.byzantine.push(ByzantineEntrySpec {
                node,
                strategy: random_strategy(rng, node, n),
                from: random_when(rng, 0, 10),
                until: if rng.below(3) == 0 { None } else { Some(random_when(rng, 11, 19)) },
            });
        } else {
            // First window inside [0, 10), second starting at or after
            // 10 — disjoint by construction, back-to-back allowed.
            spec.faults.byzantine.push(ByzantineEntrySpec {
                node,
                strategy: random_strategy(rng, node, n),
                from: random_when(rng, 0, 5),
                until: Some(random_when(rng, 5, 10)),
            });
            spec.faults.byzantine.push(ByzantineEntrySpec {
                node,
                strategy: random_strategy(rng, node, n),
                from: random_when(rng, 10, 15),
                until: if rng.below(2) == 0 { None } else { Some(random_when(rng, 15, 19)) },
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn byzantine_schedules_round_trip_to_the_sim_schedule(
        n in 4usize..14,
        seed in any::<u64>(),
    ) {
        let mut rng = Mix(seed);
        let mut spec = base_spec(n);
        random_byzantine(&mut rng, n, &mut spec);

        // TOML round trip: canonical serialization re-parses to equality.
        let text = spec.to_toml();
        let again = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical TOML does not re-parse: {e}\n{text}"));
        prop_assert_eq!(&again, &spec);

        // Planning lowers to a validated ByzantineSchedule with exactly
        // the generated windows, times resolved and units converted.
        let plan = spec.plan(&PlanOptions::default())
            .unwrap_or_else(|e| panic!("valid schedule rejected: {e}\n{text}"));
        prop_assert_eq!(plan.runs.len(), 1);

        let mut expected = ByzantineSchedule::new();
        for entry in &spec.faults.byzantine {
            let from_us = entry.from.resolve_us(DURATION_SECS);
            let until_us =
                entry.until.map(|u| u.resolve_us(DURATION_SECS)).unwrap_or(u64::MAX);
            expected = match &entry.strategy {
                ByzantineStrategySpec::Equivocate => {
                    expected.equivocate(entry.node, from_us, until_us)
                }
                ByzantineStrategySpec::WithholdVotes { targets } => {
                    expected.withhold_votes(entry.node, targets.clone(), from_us, until_us)
                }
                ByzantineStrategySpec::LazyLeader { delay_ms } => {
                    expected.lazy_leader(entry.node, delay_ms * 1_000, from_us, until_us)
                }
                ByzantineStrategySpec::FlipFlop { flip_secs, delay_ms } => expected.flip_flop(
                    entry.node,
                    flip_secs * 1_000_000,
                    delay_ms * 1_000,
                    from_us,
                    until_us,
                ),
            };
        }
        prop_assert_eq!(&plan.runs[0].config.byzantine, &expected);
    }
}

// ---------------------------------------------------------------------------
// Rejection cases
// ---------------------------------------------------------------------------

fn spec_with(faults: &str) -> Result<ScenarioSpec, hh_scenario::ScenarioError> {
    ScenarioSpec::parse(&format!(
        "name = \"rejection\"\n[committee]\nsize = 4\n[run]\nduration_secs = 20\nwarmup_secs = \
         2\n[network]\nmodel = \"flat\"\n{faults}"
    ))
}

/// Parses fine, fails at plan time with the given message fragment.
fn assert_plan_rejects(faults: &str, fragment: &str) {
    let spec = spec_with(faults).expect("schema-valid spec parses");
    let err = spec.plan(&PlanOptions::default()).expect_err("unrunnable schedule must be rejected");
    let message = err.to_string();
    assert!(message.contains(fragment), "expected `{fragment}` in: {message}");
}

/// Fails at parse time with the given message fragment.
fn assert_parse_rejects(faults: &str, fragment: &str) {
    let err = spec_with(faults).expect_err("schema violation must be rejected");
    let message = err.to_string();
    assert!(message.contains(fragment), "expected `{fragment}` in: {message}");
}

#[test]
fn more_than_f_byzantine_nodes_is_rejected() {
    // n = 4 tolerates f = 1; two distinct attackers are unrunnable.
    assert_plan_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"equivocate\"\n\
         [[faults.byzantine]]\nnode = 1\nstrategy = \"lazy_leader\"\ndelay_ms = 100\n",
        "exceeds f",
    );
}

#[test]
fn unknown_strategy_is_rejected_at_parse_time() {
    assert_parse_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"bribe\"\n",
        "unknown byzantine strategy `bribe`",
    );
}

#[test]
fn overlapping_windows_on_one_node_are_rejected() {
    assert_plan_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"equivocate\"\nuntil_secs = 10\n\
         [[faults.byzantine]]\nnode = 0\nstrategy = \"lazy_leader\"\ndelay_ms = 100\n\
         from_secs = 5\n",
        "overlapping",
    );
}

#[test]
fn out_of_range_attacker_is_rejected() {
    assert_plan_rejects("[[faults.byzantine]]\nnode = 9\nstrategy = \"equivocate\"\n", "committee");
}

#[test]
fn withhold_targets_are_validated() {
    // Targeting itself is meaningless.
    assert_plan_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"withhold_votes\"\ntargets = [0]\n",
        "itself",
    );
    // An out-of-range victim.
    assert_plan_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"withhold_votes\"\ntargets = [9]\n",
        "committee",
    );
    // Missing targets entirely is a schema error.
    assert_parse_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"withhold_votes\"\n",
        "requires `targets`",
    );
}

#[test]
fn strategy_parameters_are_strict() {
    // A missing required parameter.
    assert_parse_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"lazy_leader\"\n",
        "requires `delay_ms`",
    );
    // A parameter from a different strategy.
    assert_parse_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"equivocate\"\ndelay_ms = 100\n",
        "does not apply",
    );
    // An unknown key is caught by the strict table check.
    assert_parse_rejects(
        "[[faults.byzantine]]\nnode = 0\nstrategy = \"equivocate\"\nbribe = 1\n",
        "unknown key",
    );
}
