//! End-to-end tests for the dynamic fault schedule: a scenario mixing a
//! mid-run crash, a WAL-backed recovery and a partition must execute,
//! recover, analyze — and produce byte-identical JSON on one worker and
//! four.

use hh_scenario::{report_json, run_plan_with, ExecOptions, PlanOptions, RunLimit, ScenarioSpec};

/// A small recovery + partition scenario: v3 crashes at 1.5s and
/// restarts at 3s (WAL replay); v0 is cut off from everyone between 4s
/// and 5s. Two systems × two seeds = four runs.
const DYNAMIC_FAULTS: &str = r#"
name = "fault-e2e"
[committee]
size = 7
[load]
tps = 150
[run]
duration_secs = 8
warmup_secs = 1
seeds = [7, 11]
[network]
model = "flat"
flat_ms = 10
[systems]
run = ["bullshark", "hammerhead"]
[hammerhead]
period_rounds = 10
swap_from_base = true
[[faults.crash]]
nodes = [3]
at_secs = 1
recover_at_secs = 3
[[faults.partition]]
a = [0]
b = [1, 2, 3, 4, 5, 6]
from_secs = 4
until_secs = 5
[analysis]
skipped_rounds = true
reinclusion = true
"#;

#[test]
fn recovery_and_partition_json_is_identical_across_worker_counts() {
    let plan = ScenarioSpec::parse(DYNAMIC_FAULTS)
        .expect("parses")
        .plan(&PlanOptions::default())
        .expect("plans");
    assert_eq!(plan.runs.len(), 4);

    let serial = report_json(&run_plan_with(
        &plan,
        RunLimit::Duration,
        &ExecOptions { jobs: 1, verbose: false, profile: false },
    ))
    .render();
    let pooled = report_json(&run_plan_with(
        &plan,
        RunLimit::Duration,
        &ExecOptions { jobs: 4, verbose: false, profile: false },
    ))
    .render();
    assert_eq!(serial, pooled, "--jobs must never change report bytes, even with dynamic faults");
}

#[test]
fn recovery_runs_restart_without_divergence_and_report_reinclusion() {
    let plan = ScenarioSpec::parse(DYNAMIC_FAULTS)
        .expect("parses")
        .plan(&PlanOptions::default())
        .expect("plans");
    let report = run_plan_with(
        &plan,
        RunLimit::Duration,
        &ExecOptions { jobs: 2, verbose: false, profile: false },
    );
    for row in &report.rows {
        assert!(row.result.agreement_ok);
        assert_eq!(row.result.restarts, 1, "v3 restarts exactly once per run");
        assert!(!row.result.recovery_divergence, "WAL replay must match the checkpoint");
        let reinclusion =
            row.analysis.reinclusion.as_ref().expect("reinclusion analysis requested");
        assert_eq!(reinclusion.len(), 1, "one recovery event, one row");
        let r = &reinclusion[0];
        assert_eq!(r.validator, 3);
        assert_eq!(r.recovered_at_us, 3_000_000);
        assert!(r.recovery_round > 0);
        if row.run.system == "hammerhead" {
            assert!(!r.score_trajectory.is_empty(), "HammerHead rows carry the score trajectory");
        }
    }
    // The JSON surfaces the recovery block and the reinclusion analysis.
    let json = report_json(&report).render();
    assert!(json.contains("\"recovery\""));
    assert!(json.contains("\"recovery_divergence\": false"));
    assert!(json.contains("\"reinclusion\""));
    assert!(json.contains("\"rounds_to_first_leader\""));
}

#[test]
fn round_robin_reschedules_recovered_validator_within_one_cycle() {
    // Round-robin keeps the recovered validator in rotation, so its first
    // slot after recovery arrives within one full cycle (2n rounds).
    let plan = ScenarioSpec::parse(DYNAMIC_FAULTS)
        .expect("parses")
        .plan(&PlanOptions { seed_override: Some(7), ..PlanOptions::default() })
        .expect("plans");
    let report = run_plan_with(&plan, RunLimit::Duration, &ExecOptions::default());
    let row =
        report.rows.iter().find(|r| r.run.system == "bullshark").expect("bullshark row present");
    let reinclusion = &row.analysis.reinclusion.as_ref().expect("requested")[0];
    let rounds = reinclusion.rounds_to_first_leader.expect("always scheduled");
    assert!(rounds <= 14, "2n rounds for n = 7, got {rounds}");
}
