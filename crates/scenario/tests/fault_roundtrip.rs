//! Property tests round-tripping random fault schedules through the
//! whole declaration pipeline: generated `FaultsSpec` → canonical TOML →
//! re-parsed `ScenarioSpec` → planned `ExperimentConfig` →
//! `hh_sim::FaultSchedule` → lowered `hh_net::FaultPlan`.
//!
//! Three invariants: the canonical TOML re-parses to an equal spec, the
//! planned schedule contains exactly the generated events, and the
//! lowered plan agrees with the schedule on every crash window.

use hh_net::{NodeId, SimTime};
use hh_scenario::{
    NodeSel, PartitionEntry, PartitionSel, PlanOptions, ScenarioSpec, SlowdownEntry,
    TimedFaultEntry, WhenSpec,
};
use hh_sim::FaultEvent;
use proptest::prelude::*;

const DURATION_SECS: u64 = 20;

/// SplitMix64 — drives the shape choices for one case.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// A random instant, quantized so frac and secs forms both resolve
/// exactly: whole seconds, or quarter fractions of the 20s run.
fn random_when(rng: &mut Mix, lo_secs: u64, hi_secs: u64) -> WhenSpec {
    let secs = lo_secs + rng.below(hi_secs.saturating_sub(lo_secs).max(1));
    if rng.below(3) == 0 && secs.is_multiple_of(5) {
        WhenSpec::Frac(secs as f64 / DURATION_SECS as f64)
    } else {
        WhenSpec::Secs(secs)
    }
}

fn base_spec(n: usize) -> ScenarioSpec {
    ScenarioSpec::parse(&format!(
        "name = \"fault-roundtrip\"\n[committee]\nsize = {n}\n[run]\nduration_secs = \
         {DURATION_SECS}\nwarmup_secs = 2\n[network]\nmodel = \"flat\"\n"
    ))
    .expect("base spec parses")
}

/// Generates a valid dynamic fault spec on `n` validators: at most `f`
/// nodes carry a crash/recover pair (never concurrent beyond `f` since
/// each recovers before the run ends and crashes never overlap more
/// than `f` nodes), plus optional slowdowns and one partition.
fn random_faults(rng: &mut Mix, n: usize, spec: &mut ScenarioSpec) {
    let f = (n - 1) / 3;
    let crash_nodes: Vec<u16> = (0..rng.below(f as u64 + 1)).map(|k| k as u16 * 2).collect();
    for &node in &crash_nodes {
        // Crash somewhere in [1, 9], recover strictly later in [10, 18].
        spec.faults
            .crashes
            .push(TimedFaultEntry { nodes: NodeSel::Ids(vec![node]), at: random_when(rng, 1, 9) });
        spec.faults.recovers.push(TimedFaultEntry {
            nodes: NodeSel::Ids(vec![node]),
            at: random_when(rng, 10, 18),
        });
    }
    for _ in 0..rng.below(3) {
        let from = 1 + rng.below(8);
        spec.faults.slowdowns.push(SlowdownEntry {
            nodes: NodeSel::Ids(vec![rng.below(n as u64) as u16]),
            at: WhenSpec::Secs(from),
            until: if rng.below(2) == 0 {
                Some(WhenSpec::Secs(from + 1 + rng.below(8)))
            } else {
                None
            },
            extra_ms: 1 + rng.below(500),
        });
    }
    if rng.below(2) == 0 {
        let k = 1 + rng.below((n - 1) as u64) as usize;
        let sel = if rng.below(2) == 0 {
            PartitionSel::IsolateFirst(hh_scenario::CountExpr::Abs(k as u64))
        } else {
            PartitionSel::Groups { a: (0..k as u16).collect(), b: (k as u16..n as u16).collect() }
        };
        let from = 1 + rng.below(9);
        spec.faults.partitions.push(PartitionEntry {
            sel,
            from: WhenSpec::Secs(from),
            until: WhenSpec::Secs(from + 1 + rng.below(9)),
        });
    }
}

/// The µs instant a generated `WhenSpec` resolves to.
fn resolve(when: WhenSpec) -> u64 {
    when.resolve_us(DURATION_SECS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn fault_schedules_round_trip_to_the_wire_plan(
        n in 4usize..11,
        seed in any::<u64>(),
    ) {
        let mut rng = Mix(seed);
        let mut spec = base_spec(n);
        random_faults(&mut rng, n, &mut spec);

        // TOML round trip: canonical serialization re-parses to equality.
        let text = spec.to_toml();
        let again = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical TOML does not re-parse: {e}\n{text}"));
        prop_assert_eq!(&again, &spec);

        // Planning lowers to a validated FaultSchedule with exactly the
        // generated events.
        let plan = spec.plan(&PlanOptions::default())
            .unwrap_or_else(|e| panic!("valid schedule rejected: {e}\n{text}"));
        prop_assert_eq!(plan.runs.len(), 1);
        let schedule = &plan.runs[0].config.faults;

        let mut expected: Vec<FaultEvent> = Vec::new();
        for entry in &spec.faults.crashes {
            if let NodeSel::Ids(ids) = &entry.nodes {
                expected.push(FaultEvent::Crash { node: ids[0], at_us: resolve(entry.at) });
            }
        }
        for entry in &spec.faults.recovers {
            if let NodeSel::Ids(ids) = &entry.nodes {
                expected.push(FaultEvent::Recover { node: ids[0], at_us: resolve(entry.at) });
            }
        }
        for entry in &spec.faults.slowdowns {
            if let NodeSel::Ids(ids) = &entry.nodes {
                expected.push(FaultEvent::Slowdown {
                    node: ids[0],
                    from_us: resolve(entry.at),
                    until_us: entry.until.map(resolve).unwrap_or(u64::MAX),
                    extra_us: entry.extra_ms * 1000,
                });
            }
        }
        for entry in &spec.faults.partitions {
            let (a, b) = match &entry.sel {
                PartitionSel::Groups { a, b } => (a.clone(), b.clone()),
                PartitionSel::IsolateFirst(count) => {
                    let k = count.resolve(n).min(n - 1);
                    ((0..k as u16).collect(), (k as u16..n as u16).collect())
                }
            };
            expected.push(FaultEvent::Partition {
                group_a: a,
                group_b: b,
                from_us: resolve(entry.from),
                until_us: resolve(entry.until),
            });
        }
        prop_assert_eq!(schedule.events(), expected.as_slice());

        // Lowering to the wire plan preserves the crash/recovery events
        // verbatim and agrees on every crash window.
        let wire = schedule.to_plan();
        let crashes: Vec<(u16, u64)> = wire
            .crashes()
            .iter()
            .map(|(node, at)| (node.0 as u16, at.as_micros()))
            .collect();
        let schedule_crashes: Vec<(u16, u64)> = schedule
            .events()
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { node, at_us } => Some((*node, *at_us)),
                _ => None,
            })
            .collect();
        prop_assert_eq!(crashes, schedule_crashes);
        for node in 0..n as u16 {
            let mut t = 0u64;
            while t <= DURATION_SECS * 1_000_000 {
                prop_assert_eq!(
                    schedule.crashed_at(node, t),
                    wire.crashed_at(NodeId(node as usize), SimTime(t)),
                    "schedule and plan disagree for v{} at {}µs", node, t
                );
                t += 500_000;
            }
        }
    }
}
