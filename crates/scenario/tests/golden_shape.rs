//! Golden-file test pinning the shape of `hh-cli run` JSON output.
//!
//! Consumers (plot scripts, CI trend tracking) key on the report's
//! structure. This test runs a tiny scenario exercising every optional
//! section (windows, skipped rounds, churn), extracts the set of key
//! paths from the JSON, and compares it to the checked-in golden file.
//! Values are free to drift with the simulator; the *shape* is not —
//! regenerate `tests/golden/report_shape.txt` deliberately when
//! extending the format (instructions in the assertion message).

use hh_scenario::{report_json, run_plan, Json, PlanOptions, RunLimit, ScenarioSpec};
use std::collections::BTreeSet;

const GOLDEN: &str = include_str!("golden/report_shape.txt");

/// Collects `a.b[].c`-style key paths; array elements collapse into `[]`
/// so run count does not affect the shape.
fn shape(json: &Json, prefix: &str, out: &mut BTreeSet<String>) {
    match json {
        Json::Object(pairs) => {
            for (key, value) in pairs {
                let path = if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                out.insert(path.clone());
                shape(value, &path, out);
            }
        }
        Json::Array(items) => {
            for item in items {
                shape(item, &format!("{prefix}[]"), out);
            }
        }
        _ => {}
    }
}

#[test]
fn report_json_shape_is_pinned() {
    let spec = ScenarioSpec::parse(
        r#"
name = "golden"
[committee]
size = 4
[load]
tps = 200
[run]
duration_secs = 3
warmup_secs = 1
[network]
model = "flat"
[[faults.byzantine]]
node = 3
strategy = "lazy_leader"
delay_ms = 200
[analysis]
skipped_rounds = true
schedule_churn = true
adversary = true
[[analysis.window]]
name = "whole"
from_frac = 0.0
to_frac = 1.0
"#,
    )
    .expect("golden scenario parses");
    let plan = spec.plan(&PlanOptions::default()).expect("plans");
    let report = run_plan(&plan, RunLimit::Duration, false);
    let json = report_json(&report);

    let mut got = BTreeSet::new();
    shape(&json, "", &mut got);
    let got_text: String = got.iter().map(|p| format!("{p}\n")).collect();

    assert_eq!(
        got_text.trim(),
        GOLDEN.trim(),
        "hh-cli JSON report shape changed.\n\
         If intentional, update crates/scenario/tests/golden/report_shape.txt \
         with the shape printed above."
    );
}
