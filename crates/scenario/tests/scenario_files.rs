//! Tests over the checked-in `scenarios/*.toml` files: every file must
//! parse, expand, survive a serialize/parse round trip, and the fig2
//! scenario must build exactly the configuration the legacy hard-coded
//! `fig2_faults` binary used.

use hh_scenario::{load_scenario, repo_scenarios_dir, PlanOptions, ScenarioSpec};
use hh_sim::{run_experiment, ExperimentConfig, FaultSchedule, SystemKind};
use std::path::PathBuf;

fn checked_in_scenarios() -> Vec<PathBuf> {
    let dir = repo_scenarios_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    assert_eq!(
        files.len(),
        13,
        "expected the seven paper scenarios plus recovery, partition, saturation, bursty, \
         byzantine and chaos, found {files:?}"
    );
    files
}

#[test]
fn every_checked_in_scenario_parses_and_plans() {
    for path in checked_in_scenarios() {
        let spec = load_scenario(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for quick in [false, true] {
            let opts = PlanOptions { quick, ..PlanOptions::default() };
            let plan = spec
                .plan(&opts)
                .unwrap_or_else(|e| panic!("{} (quick={quick}): {e}", path.display()));
            assert!(!plan.runs.is_empty(), "{} expanded to no runs", path.display());
        }
    }
}

#[test]
fn every_checked_in_scenario_round_trips() {
    for path in checked_in_scenarios() {
        let spec = load_scenario(&path).expect("parses");
        let canonical = spec.to_toml();
        let again = ScenarioSpec::parse(&canonical).unwrap_or_else(|e| {
            panic!("{} canonical form does not re-parse: {e}\n{canonical}", path.display())
        });
        assert_eq!(spec, again, "{} round trip changed the spec", path.display());
    }
}

/// The legacy `fig2_faults` binary built its configs by hand; the
/// scenario file must reproduce them knob for knob — same seeds, same
/// simulation, identical results.
#[test]
fn fig2_scenario_matches_legacy_binary_config() {
    let spec = load_scenario(&repo_scenarios_dir().join("fig2_faults.toml")).expect("parses");
    let plan = spec.plan(&PlanOptions { quick: true, ..PlanOptions::default() }).expect("plans");

    // Quick axes: 1 committee × 2 systems × 3 loads.
    assert_eq!(plan.runs.len(), 6);
    let run = plan
        .runs
        .iter()
        .find(|r| r.system == "bullshark" && r.config.load_tps == 500)
        .expect("bullshark @ 500 tps is part of the quick sweep");

    // What the legacy binary constructed for the same point
    // (Scale { quick: true } → duration 15, warmup 15/6 = 2, seed 42).
    let committee = 10;
    let mut legacy = ExperimentConfig::paper(SystemKind::Bullshark, committee, 500);
    legacy.duration_secs = 15;
    legacy.warmup_secs = 2;
    legacy.seed = 42;
    legacy.faults = FaultSchedule::crash_last(committee, committee / 3).expect("f < n");

    assert_eq!(run.config.committee_size, legacy.committee_size);
    assert_eq!(run.config.duration_secs, legacy.duration_secs);
    assert_eq!(run.config.warmup_secs, legacy.warmup_secs);
    assert_eq!(run.config.seed, legacy.seed);
    assert_eq!(run.config.faults.crashed_nodes(), legacy.faults.crashed_nodes());
    assert_eq!(run.config.geo, legacy.geo);
    assert_eq!(run.config.gst_secs, legacy.gst_secs);
    assert_eq!(run.config.client_window_secs, legacy.client_window_secs);

    // And the simulations agree bit for bit.
    let from_scenario = run_experiment(&run.config);
    let from_legacy = run_experiment(&legacy);
    assert_eq!(from_scenario.chain_hash, from_legacy.chain_hash);
    assert_eq!(from_scenario.commits, from_legacy.commits);
    assert_eq!(from_scenario.throughput_tps, from_legacy.throughput_tps);
    assert_eq!(from_scenario.latency, from_legacy.latency);
}
