//! Oracle tests pinning the `[load] tps` → `[workload]` desugaring: an
//! explicitly declared constant closed-loop workload must reproduce the
//! historical client — and therefore the sugar path — bit for bit, at
//! any worker count. This is the same invariant CI checks at full scale
//! by diffing `hh-cli run scenarios/fig2_faults.toml --quick --seed 7`
//! JSON against `--jobs 4` output (and across releases, against its
//! checked-in byte-identical history).

use hh_scenario::{run_plan_with, ExecOptions, PlanOptions, RunLimit, ScenarioSpec};

const BASE: &str = r#"
name = "sugar-oracle"
[committee]
size = 4
[load]
tps = 300
[run]
duration_secs = 3
warmup_secs = 1
seeds = [7]
[network]
model = "flat"
"#;

fn opts(jobs: usize) -> ExecOptions {
    ExecOptions { jobs, verbose: false, profile: false }
}

#[test]
fn explicit_constant_workload_reproduces_the_sugar_bit_for_bit() {
    let sugar = ScenarioSpec::parse(BASE).unwrap();
    let explicit = ScenarioSpec::parse(&format!(
        "{BASE}[workload]\nmode = \"closed\"\narrival = \"constant\"\n"
    ))
    .unwrap();

    // The lowered simulator configs are equal...
    let sugar_plan = sugar.plan(&PlanOptions::default()).unwrap();
    let explicit_plan = explicit.plan(&PlanOptions::default()).unwrap();
    assert_eq!(
        sugar_plan.runs[0].config.workload, explicit_plan.runs[0].config.workload,
        "an explicit constant workload must lower to the sugar's exact shape"
    );

    // ...and so is every simulated metric, including the chain hash —
    // same RNG draws, same event sequence, same bytes.
    let sugar_report = run_plan_with(&sugar_plan, RunLimit::Duration, &opts(1));
    let explicit_report = run_plan_with(&explicit_plan, RunLimit::Duration, &opts(1));
    let (a, b) = (&sugar_report.rows[0].result, &explicit_report.rows[0].result);
    assert_eq!(a.chain_hash, b.chain_hash);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.throughput_tps, b.throughput_tps);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.commit_latency, b.commit_latency);
    assert_eq!(a.submitted, b.submitted);
    assert_eq!(a.client_skipped, b.client_skipped);
    assert_eq!(a.shed, b.shed);

    // The only report difference a declared workload may introduce is
    // the additive `workload` goodput block.
    let sugar_json = hh_scenario::report_json(&sugar_report).render();
    let explicit_json = hh_scenario::report_json(&explicit_report).render();
    assert!(!sugar_json.contains("\"workload\""), "sugar reports keep their legacy shape");
    assert!(explicit_json.contains("\"goodput_tps\""));
    assert!(explicit_json.contains("\"shed_rate\""));
}

#[test]
fn workload_reports_are_worker_count_independent() {
    let spec = ScenarioSpec::parse(&format!(
        "{BASE}[workload]\narrival = \"poisson\"\nmode = \"open\"\npayload_bytes = 128\n"
    ))
    .unwrap();
    let plan = spec.plan(&PlanOptions::default()).unwrap();
    let serial = hh_scenario::report_json(&run_plan_with(&plan, RunLimit::Duration, &opts(1)));
    let pooled = hh_scenario::report_json(&run_plan_with(&plan, RunLimit::Duration, &opts(4)));
    assert_eq!(serial.render(), pooled.render(), "--jobs must never change workload reports");
}
