//! Property tests round-tripping random workload declarations through
//! the whole pipeline: generated `WorkloadSpec` → canonical TOML →
//! re-parsed `ScenarioSpec` → planned `ExperimentConfig` →
//! `hh_sim::Workload`.
//!
//! Three invariants: the canonical TOML re-parses to an equal spec, the
//! planned workload contains exactly the generated phases (fracs and
//! absolute rates resolved against the run), and the lowered workload
//! passes `hh_sim`'s own validation.

use hh_scenario::{ArrivalSpec, PlanOptions, RateSpec, ScenarioSpec, WhenSpec, WorkloadPhaseSpec};
use hh_sim::{Arrival, Phase, SubmissionMode, Workload};
use proptest::prelude::*;

const DURATION_SECS: u64 = 20;
const LOAD_TPS: u64 = 800;

/// SplitMix64 — drives the shape choices for one case.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

fn base_spec() -> ScenarioSpec {
    ScenarioSpec::parse(&format!(
        "name = \"workload-roundtrip\"\n[committee]\nsize = 4\n[load]\ntps = {LOAD_TPS}\n[run]\n\
         duration_secs = {DURATION_SECS}\nwarmup_secs = 2\n[network]\nmodel = \"flat\"\n\
         [workload]\n"
    ))
    .expect("base spec parses")
}

/// A random arrival process with quantized parameters (halves of a
/// second, tenths of a scale) so serialized floats resolve exactly.
fn random_arrival(rng: &mut Mix) -> ArrivalSpec {
    match rng.below(4) {
        0 => ArrivalSpec::Constant,
        1 => ArrivalSpec::Poisson,
        2 => ArrivalSpec::OnOff {
            burst_secs: (1 + rng.below(6)) as f64 * 0.5,
            idle_secs: rng.below(6) as f64 * 0.5,
        },
        _ => ArrivalSpec::Ramp {
            from_scale: rng.below(3) as f64 * 0.5,
            to_scale: (1 + rng.below(4)) as f64 * 0.5,
        },
    }
}

/// A random phase start inside a 20s run: whole seconds, or — only for
/// multiples of 5 s, whose quarter fractions are exactly representable —
/// the equivalent `from_frac`.
fn random_from(rng: &mut Mix, secs: u64) -> WhenSpec {
    if rng.below(3) == 0 && secs.is_multiple_of(5) {
        WhenSpec::Frac(secs as f64 / DURATION_SECS as f64)
    } else {
        WhenSpec::Secs(secs)
    }
}

/// Mutates the declared workload into a random valid shape and returns
/// the phases' expected lowering.
fn random_workload(rng: &mut Mix, spec: &mut ScenarioSpec) -> Vec<Phase> {
    let w = &mut spec.workload;
    w.mode = if rng.below(2) == 0 { SubmissionMode::Closed } else { SubmissionMode::Open };
    w.payload_bytes = (rng.below(5) * 256) as u32;
    w.spread = 1.0 + rng.below(4) as f64;
    w.block_bytes = if rng.below(2) == 0 { Some(4_096 + rng.below(4) * 65_536) } else { None };

    let lower = |arrival: &ArrivalSpec, scale: f64| match *arrival {
        ArrivalSpec::Constant => Arrival::Constant { scale },
        ArrivalSpec::Poisson => Arrival::Poisson { scale },
        ArrivalSpec::OnOff { burst_secs, idle_secs } => {
            Arrival::OnOff { scale, burst_secs, idle_secs }
        }
        ArrivalSpec::Ramp { from_scale, to_scale } => Arrival::Ramp { from_scale, to_scale },
    };

    if rng.below(3) == 0 {
        // Single-phase form: the top-level arrival at scale 1.
        w.arrival = random_arrival(rng);
        w.phases.clear();
        return vec![Phase { from_us: 0, arrival: lower(&w.arrival.clone(), 1.0) }];
    }

    let count = 1 + rng.below(3) as usize;
    // Strictly ascending starts: 0, then distinct seconds below 20.
    let mut starts = vec![0u64];
    while starts.len() < count {
        let s = 1 + rng.below(DURATION_SECS - 1);
        if !starts.contains(&s) {
            starts.push(s);
        }
    }
    starts.sort_unstable();

    w.phases.clear();
    let mut expected = Vec::new();
    let mut any_active = false;
    for (i, &secs) in starts.iter().enumerate() {
        let arrival = random_arrival(rng);
        let rate = if matches!(arrival, ArrivalSpec::Ramp { .. }) {
            // Ramps carry their own scales; the rate field is unused and
            // must serialize as the default.
            RateSpec::Scale(1.0)
        } else if rng.below(3) == 0 {
            RateSpec::Tps((1 + rng.below(4)) * LOAD_TPS / 2)
        } else {
            // Quantized scale; allow zero-rate (idle) phases except when
            // everything else is idle too.
            RateSpec::Scale(rng.below(5) as f64 * 0.5)
        };
        let scale = match rate {
            RateSpec::Scale(s) => s,
            RateSpec::Tps(t) => t as f64 / LOAD_TPS as f64,
        };
        let peak = match arrival {
            ArrivalSpec::Ramp { from_scale, to_scale } => from_scale.max(to_scale),
            _ => scale,
        };
        any_active |= peak > 0.0;
        let from = if i == 0 { WhenSpec::Secs(0) } else { random_from(rng, secs) };
        w.phases.push(WorkloadPhaseSpec { from, rate, arrival });
        expected.push(Phase { from_us: secs * 1_000_000, arrival: lower(&arrival, scale) });
    }
    if !any_active {
        // Force one active phase so the workload is runnable.
        w.phases[0].rate = RateSpec::Scale(1.0);
        w.phases[0].arrival = ArrivalSpec::Constant;
        expected[0].arrival = Arrival::Constant { scale: 1.0 };
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn workloads_round_trip_to_the_sim_shape(seed in any::<u64>()) {
        let mut rng = Mix(seed);
        let mut spec = base_spec();
        let expected_phases = random_workload(&mut rng, &mut spec);

        // TOML round trip: canonical serialization re-parses to equality.
        let text = spec.to_toml();
        let again = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical TOML does not re-parse: {e}\n{text}"));
        prop_assert_eq!(&again, &spec);

        // Planning lowers to a validated hh_sim::Workload with exactly
        // the generated phases.
        let plan = spec.plan(&PlanOptions::default())
            .unwrap_or_else(|e| panic!("valid workload rejected: {e}\n{text}"));
        prop_assert!(plan.workload_declared);
        prop_assert_eq!(plan.runs.len(), 1);
        let workload: &Workload = &plan.runs[0].config.workload;
        prop_assert_eq!(&workload.phases, &expected_phases, "spec:\n{}", text);
        prop_assert_eq!(workload.mode, spec.workload.mode);
        prop_assert_eq!(workload.payload_bytes, spec.workload.payload_bytes);
        prop_assert_eq!(workload.spread, spec.workload.spread);
        prop_assert!(workload.validate().is_ok());
        prop_assert_eq!(
            plan.runs[0].config.max_block_bytes,
            spec.workload.block_bytes.map(|b| b as usize)
        );
    }
}
