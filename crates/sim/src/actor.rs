//! Adapters putting validators and clients on the discrete-event network.

use crate::byzantine::ByzantineBehavior;
use crate::workload::{ArrivalKind, RateNow, SubmissionMode, Workload};
use hammerhead::{Output, Validator, ValidatorMessage};
use hh_net::{Context, Node, NodeId};
use hh_storage::MemBackend;
use hh_types::{Transaction, ValidatorId};
use rand::Rng;
use std::sync::Arc;

/// Wire messages on the simulated network. A broadcast enqueues one
/// `Arc`'d message (`Context::broadcast_to_first`); the runtime's
/// fan-out then bumps the refcount once per recipient, so no path —
/// emit, routing, or delivery — deep-copies a frame. Chaos corruption
/// is the only place an owned frame is materialized.
pub type NetMessage = Arc<ValidatorMessage>;

/// Timer token for client submission ticks (distinct from validator
/// tokens, which are < 100).
const TOKEN_CLIENT_SUBMIT: u64 = 1_000;

/// The floor on a closed-loop client's in-flight window.
///
/// Commits deliver confirmations in bursty per-anchor batches, so a
/// low-rate client whose nominal window (`rate × window_secs`) is only a
/// handful of transactions would throttle on that batching pattern
/// rather than on real latency — an artifact of the confirmation
/// cadence, not a property of the system. The paper's clients (350 tx/s
/// against seconds of latency) ran with thousands in flight; the floor
/// keeps scaled-down runs in the same regime.
pub const MIN_CLIENT_WINDOW: u64 = 64;

/// A load generator (§5: "benchmark clients submitting transactions at a
/// fixed rate"), co-located with one validator.
///
/// The client executes a [`Workload`]: its timeline of arrival processes
/// (constant, Poisson, on/off bursts, linear ramps) decides *when* the
/// next transaction fires, and its [`SubmissionMode`] decides whether
/// ticks are gated by a bounded in-flight window (closed loop — how real
/// benchmark drivers and the Sui orchestrator's clients behave; by
/// Little's law the window converts latency degradation into the
/// throughput loss the paper's Figure 2 shows for Bullshark under
/// faults) or fire unconditionally (open loop — the saturation-sweep
/// mode, where offered load must not depend on observed latency).
///
/// The default [`Workload::constant`] reproduces the historical
/// fixed-rate windowed client bit for bit, including its RNG draw
/// sequence.
#[derive(Debug)]
pub struct Client {
    /// This client's id (tags its transactions).
    client_id: u32,
    /// The validator it submits to.
    target: NodeId,
    /// This client's share of the run's offered rate (scale 1.0), tx/s.
    base_tps: f64,
    /// The workload shape being executed.
    workload: Workload,
    /// Nominal run length (µs), bounding the last phase for ramps.
    duration_us: u64,
    /// Maximum unconfirmed transactions in flight (`u64::MAX` when the
    /// workload is open-loop).
    window: u64,
    /// Next sequence number.
    seq: u64,
    /// Total submitted.
    submitted: u64,
    /// Ticks skipped because the window was full.
    skipped: u64,
    /// Modeled wire bytes of all submitted transactions.
    bytes_submitted: u64,
    /// Currently unconfirmed transactions.
    outstanding: u64,
    /// Sub-microsecond remainder carried between high-rate ticks (see
    /// [`Client::jittered_delay_us`]).
    carry_ns: u64,
    /// Future execution-completion instants from confirmations.
    confirm_queue: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
}

impl Client {
    /// A client submitting a constant `rate_tps` transactions per second
    /// to `target` with an in-flight window of `rate × window_secs`
    /// transactions — the historical shape, equivalent to
    /// [`Client::with_workload`] over [`Workload::constant`].
    ///
    /// # Panics
    ///
    /// Panics if `rate_tps` is zero.
    pub fn new(client_id: u32, target: NodeId, rate_tps: f64, window_secs: f64) -> Self {
        Client::with_workload(client_id, target, rate_tps, window_secs, Workload::constant(), 0)
    }

    /// A client executing `workload` at a base rate of `rate_tps` (phase
    /// scales multiply it) for a run of `duration_us` simulated
    /// microseconds. `window_secs` sizes the in-flight window when the
    /// workload is closed-loop; open-loop workloads ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `rate_tps` is zero.
    pub fn with_workload(
        client_id: u32,
        target: NodeId,
        rate_tps: f64,
        window_secs: f64,
        workload: Workload,
        duration_us: u64,
    ) -> Self {
        assert!(rate_tps > 0.0, "client rate must be positive");
        let window = match workload.mode {
            SubmissionMode::Closed => ((rate_tps * window_secs) as u64).max(MIN_CLIENT_WINDOW),
            SubmissionMode::Open => u64::MAX,
        };
        Client {
            client_id,
            target,
            base_tps: rate_tps,
            workload,
            duration_us,
            window,
            seq: 0,
            submitted: 0,
            skipped: 0,
            bytes_submitted: 0,
            outstanding: 0,
            carry_ns: 0,
            confirm_queue: std::collections::BinaryHeap::new(),
        }
    }

    /// Transactions submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Ticks skipped with a full window (latency-throttled demand).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Transactions the workload offered: submitted plus window-skipped.
    pub fn offered(&self) -> u64 {
        self.submitted + self.skipped
    }

    /// Modeled wire bytes of everything submitted.
    pub fn bytes_submitted(&self) -> u64 {
        self.bytes_submitted
    }

    /// The tick interval the start-stagger draws over: the inter-arrival
    /// of the workload's rate at t = 0 (the base rate if t = 0 is idle).
    fn initial_interval_us(&self) -> u64 {
        let tps = match self.workload.rate_at(self.base_tps, 0, self.duration_us) {
            RateNow::Active { tps, .. } => tps,
            RateNow::Idle { .. } => self.base_tps,
        };
        (1e6 / tps).max(1.0) as u64
    }

    fn on_confirm(&mut self, executed_at: u64, now: u64) {
        // Shed transactions (executed_at == MAX) release immediately.
        let at = if executed_at == u64::MAX { now } else { executed_at };
        self.confirm_queue.push(std::cmp::Reverse(at));
    }

    fn drain_confirms(&mut self, now: u64) {
        while matches!(self.confirm_queue.peek(), Some(std::cmp::Reverse(at)) if *at <= now) {
            self.confirm_queue.pop();
            self.outstanding = self.outstanding.saturating_sub(1);
        }
    }

    /// The next inter-arrival delay for a jittered (constant-family)
    /// process at `tps`, in µs.
    ///
    /// At intervals of 10 µs and above this is the historical
    /// computation, bit for bit: truncate the interval to µs, jitter
    /// ±10% of the truncated value with one uniform draw. Below 10 µs
    /// (rates above ~100k tx/s per client) that integer jitter
    /// truncated to zero — silently disabling jitter — and the
    /// truncated interval overstated the rate by up to 2×; here both
    /// are derived from the f64 rate in nanoseconds and the sub-µs
    /// remainder carries across ticks, so jitter survives and the
    /// long-run rate stays exact.
    fn jittered_delay_us(&mut self, tps: f64, rng: &mut rand::StdRng) -> u64 {
        let interval_f = (1e6 / tps).max(1.0);
        let interval_us = interval_f as u64;
        let jitter = interval_us / 10;
        if jitter > 0 {
            return interval_us - jitter + rng.gen_range(0..=2 * jitter);
        }
        let interval_ns = (interval_f * 1000.0) as u64;
        let jitter_ns = interval_ns / 10;
        let drawn = if jitter_ns > 0 {
            interval_ns - jitter_ns + rng.gen_range(0..=2 * jitter_ns)
        } else {
            interval_ns
        };
        self.carry_to_us(drawn)
    }

    /// The next inter-arrival delay for a Poisson process at `tps`:
    /// exponential with mean `1/tps`, via inverse CDF on one uniform
    /// draw. The same ns carry as the jittered path keeps the realized
    /// mean exact — flooring each exponential to µs independently would
    /// shave ~0.5 µs per arrival, overstating high rates just like the
    /// truncation bug the jittered path fixes.
    fn exponential_delay_us(&mut self, tps: f64, rng: &mut rand::StdRng) -> u64 {
        let u: f64 = rng.gen();
        let delay_ns = -(1.0 - u).ln() * (1e9 / tps);
        self.carry_to_us(delay_ns.min(u64::MAX as f64) as u64)
    }

    /// Converts a drawn delay in ns to µs, carrying the sub-µs
    /// remainder to the next tick so long-run rates stay exact.
    fn carry_to_us(&mut self, drawn_ns: u64) -> u64 {
        let total = drawn_ns + self.carry_ns;
        if total < 1_000 {
            // The µs timer grain forces a 1 µs sleep; dropping the
            // remainder bounds the error instead of accumulating debt.
            self.carry_ns = 0;
            1
        } else {
            self.carry_ns = total % 1_000;
            total / 1_000
        }
    }

    fn tick(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let now = ctx.now().as_micros();
        match self.workload.rate_at(self.base_tps, now, self.duration_us) {
            RateNow::Idle { until_us } => {
                // No demand (off-burst gap or zero-rate phase): sleep to
                // the next activity instant. Idle gaps cost zero RNG
                // draws — part of the determinism contract.
                let delay = until_us.saturating_sub(now).max(1);
                ctx.set_timer(hh_net::Duration::from_micros(delay), TOKEN_CLIENT_SUBMIT);
            }
            RateNow::Active { tps, process } => {
                self.drain_confirms(now);
                if self.outstanding < self.window {
                    let tx = Transaction::with_payload(
                        self.client_id,
                        self.seq,
                        now,
                        self.workload.payload_bytes,
                    );
                    self.seq += 1;
                    self.submitted += 1;
                    self.outstanding += 1;
                    self.bytes_submitted += tx.wire_bytes() as u64;
                    ctx.send(self.target, Arc::new(ValidatorMessage::Submit(tx)));
                } else {
                    self.skipped += 1;
                }
                let delay = match process {
                    ArrivalKind::Jittered => self.jittered_delay_us(tps, ctx.rng()),
                    ArrivalKind::Exponential => self.exponential_delay_us(tps, ctx.rng()),
                };
                ctx.set_timer(hh_net::Duration::from_micros(delay.max(1)), TOKEN_CLIENT_SUBMIT);
            }
        }
    }
}

/// A simulation participant: validator or load generator.
///
/// Validators occupy node ids `0..n`; clients live above them. Broadcasts
/// from validators go to validators only.
///
/// A validator may carry a [`ByzantineBehavior`]: the adversarial shim
/// that filters its inbound messages and rewrites its outbound ones. The
/// validator logic itself stays honest — the behavior models what a real
/// attacker controls, the network boundary.
pub enum Actor {
    /// A consensus validator, optionally byzantine.
    Validator(Box<Validator<MemBackend>>, Option<Box<ByzantineBehavior>>),
    /// A load generator.
    Client(Client),
}

impl Actor {
    /// An honest validator actor.
    pub fn honest(v: Validator<MemBackend>) -> Self {
        Actor::Validator(Box::new(v), None)
    }

    /// The validator inside, if this actor is one.
    pub fn as_validator(&self) -> Option<&Validator<MemBackend>> {
        match self {
            Actor::Validator(v, _) => Some(v),
            Actor::Client(_) => None,
        }
    }

    /// Mutable access to the validator inside, if this actor is one
    /// (streaming harnesses draining latency records mid-run).
    pub fn as_validator_mut(&mut self) -> Option<&mut Validator<MemBackend>> {
        match self {
            Actor::Validator(v, _) => Some(v),
            Actor::Client(_) => None,
        }
    }

    /// The byzantine behavior attached to this validator, if any.
    pub fn behavior(&self) -> Option<&ByzantineBehavior> {
        match self {
            Actor::Validator(_, b) => b.as_deref(),
            Actor::Client(_) => None,
        }
    }

    /// The client inside, if this actor is one.
    pub fn as_client(&self) -> Option<&Client> {
        match self {
            Actor::Client(c) => Some(c),
            Actor::Validator(_, _) => None,
        }
    }
}

/// Routes validator outputs onto the network. Broadcast targets are
/// validators only (`committee_size` of them, ids `0..committee_size`).
fn emit(outputs: Vec<Output>, committee_size: usize, ctx: &mut Context<'_, NetMessage>) {
    for output in outputs {
        match output {
            Output::Send(to, msg) => ctx.send(NodeId(to.0 as usize), Arc::new(msg)),
            Output::Broadcast(msg) => {
                // One queued action; the runtime fans out per recipient
                // with an `Arc` bump each — no deep copies, no per-peer
                // queue entries at emit time.
                ctx.broadcast_to_first(committee_size, Arc::new(msg));
            }
            Output::SetTimer { delay_us, token } => {
                ctx.set_timer(hh_net::Duration::from_micros(delay_us), token);
            }
            Output::StorageError { .. } => {
                // The validator has fail-stopped and recorded the fault in
                // its metrics (`storage_errors`); nothing to route. The
                // harness keeps the rest of the committee running.
            }
        }
    }
}

impl Node for Actor {
    type Message = NetMessage;

    /// Chaos-layer corruption: flip 1–3 random bits in the message's
    /// CRC-framed wire encoding and try to decode the damaged frame. The
    /// checksum rejects essentially every flip, so corrupt frames die
    /// here (counted by the simulator) exactly as a real transport would
    /// discard them — honest validator logic never sees damaged input.
    /// A flip that somehow survived framing would surface as a decoded
    /// (still signature-checked) message, not as silent memory
    /// corruption.
    fn corrupt_message(msg: &NetMessage, rng: &mut rand::StdRng) -> Option<NetMessage> {
        let mut frame = hh_types::codec::encode_framed(&**msg);
        let flips = rng.gen_range(1..=3usize);
        for _ in 0..flips {
            let byte = rng.gen_range(0..frame.len());
            let bit = rng.gen_range(0..8u32);
            frame[byte] ^= 1 << bit;
        }
        hh_types::codec::decode_framed::<ValidatorMessage>(&frame).ok().map(Arc::new)
    }

    fn on_start(&mut self, ctx: &mut Context<'_, NetMessage>) {
        match self {
            Actor::Validator(v, behavior) => {
                let n = v.dag().committee().size();
                let now = ctx.now().as_micros();
                let mut out = v.on_start(now);
                if let Some(b) = behavior {
                    out = b.process_outbound(out, now);
                }
                emit(out, n, ctx);
            }
            Actor::Client(c) => {
                // Stagger client starts across one interval to avoid a
                // synchronized burst at t=0.
                let offset = ctx.rng().gen_range(0..=c.initial_interval_us());
                ctx.set_timer(hh_net::Duration::from_micros(offset.max(1)), TOKEN_CLIENT_SUBMIT);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: NetMessage, ctx: &mut Context<'_, NetMessage>) {
        match self {
            Actor::Validator(v, behavior) => {
                let n = v.dag().committee().size();
                let now = ctx.now().as_micros();
                if let Some(b) = behavior {
                    if !b.allows_inbound(&msg, now) {
                        // A withholding attacker pretends it never saw
                        // this vertex.
                        return;
                    }
                }
                let sender = ValidatorId(from.0.min(u16::MAX as usize) as u16);
                // Borrowed dispatch: the shared frame is handed to the
                // validator as-is; `Arc`'d vertex payloads inside make
                // retention a refcount bump, so no deep copy happens here.
                let mut out = v.on_message(sender, &msg, now);
                if let Some(b) = behavior {
                    out = b.process_outbound(out, now);
                }
                emit(out, n, ctx);
            }
            Actor::Client(c) => {
                if let ValidatorMessage::Confirm { executed_at, .. } = &*msg {
                    c.on_confirm(*executed_at, ctx.now().as_micros());
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetMessage>) {
        match self {
            Actor::Validator(v, behavior) => {
                let n = v.dag().committee().size();
                let now = ctx.now().as_micros();
                if ByzantineBehavior::owns_token(token) {
                    // A release timer: emit the held outputs verbatim —
                    // they were already processed when first produced.
                    if let Some(b) = behavior {
                        let held = b.release(token);
                        emit(held, n, ctx);
                    }
                    return;
                }
                let mut out = v.on_timer(token, now);
                if let Some(b) = behavior {
                    out = b.process_outbound(out, now);
                }
                emit(out, n, ctx);
            }
            Actor::Client(c) => {
                if token == TOKEN_CLIENT_SUBMIT {
                    c.tick(ctx);
                }
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, NetMessage>) {
        match self {
            Actor::Validator(v, behavior) => {
                let n = v.dag().committee().size();
                let now = ctx.now().as_micros();
                let mut out = v.on_restart(now);
                if let Some(b) = behavior {
                    out = b.process_outbound(out, now);
                }
                emit(out, n, ctx);
            }
            Actor::Client(_) => self.on_start(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Arrival, Phase};
    use hammerhead::ValidatorConfig;
    use hh_net::{NetworkConfig, SimTime, Simulator};
    use hh_types::Committee;
    use rand::SeedableRng;

    #[test]
    fn four_validators_commit_on_a_flat_network() {
        let committee = Committee::new_equal_stake(4);
        let config = ValidatorConfig {
            min_round_delay_us: 20_000,
            leader_timeout_us: 200_000,
            sync_tick_us: 100_000,
            ..ValidatorConfig::default()
        };
        let mut actors: Vec<Actor> = (0..4)
            .map(|i| {
                Actor::honest(Validator::new(
                    committee.clone(),
                    ValidatorId(i),
                    config.clone(),
                    None,
                ))
            })
            .collect();
        // One client targeting validator 0.
        actors.push(Actor::Client(Client::new(0, NodeId(0), 200.0, 5.0)));

        let net = NetworkConfig {
            latency: hh_net::LatencyModel::Constant(hh_net::Duration::from_millis(5)),
            ..NetworkConfig::default()
        };
        let mut sim = Simulator::new(actors, net, 7);
        sim.run_until(SimTime::from_secs(5));

        let commit_counts: Vec<u64> =
            (0..4).map(|i| sim.node(NodeId(i)).as_validator().unwrap().commit_count()).collect();
        assert!(commit_counts.iter().all(|c| *c > 10), "commits: {commit_counts:?}");

        // Agreement: equal-length prefixes match.
        let anchors: Vec<_> = (0..4)
            .map(|i| sim.node(NodeId(i)).as_validator().unwrap().committed_anchors().to_vec())
            .collect();
        let min_len = anchors.iter().map(|a| a.len()).min().unwrap();
        for v in 1..4 {
            assert_eq!(&anchors[0][..min_len], &anchors[v][..min_len]);
        }

        // The client's transactions flowed through to execution records.
        let recs = sim.node(NodeId(0)).as_validator().unwrap().metrics().exec_records.len();
        assert!(recs > 100, "exec records: {recs}");
    }

    /// Regression for the jitter bug: `interval_us / 10` truncates to
    /// zero below 10 µs, which silently disabled jitter for per-client
    /// rates above ~100k tx/s. Deriving jitter from the f64 rate (in ns,
    /// with a carry) must produce varying delays whose mean tracks the
    /// true interval — not the truncated one.
    #[test]
    fn sub_10us_intervals_keep_jitter_and_exact_rate() {
        // 150k tx/s: true interval 6.667 µs, truncated 6 µs (an 11% rate
        // error under the old code), jitter formerly zero.
        let mut client = Client::new(0, NodeId(0), 150_000.0, 2.0);
        let mut rng = rand::StdRng::seed_from_u64(7);
        let n = 10_000u64;
        let mut sum = 0u64;
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..n {
            let d = client.jittered_delay_us(150_000.0, &mut rng);
            sum += d;
            distinct.insert(d);
        }
        assert!(distinct.len() >= 2, "jitter must survive sub-10µs intervals: {distinct:?}");
        let mean = sum as f64 / n as f64;
        let true_interval = 1e6 / 150_000.0;
        assert!(
            (mean - true_interval).abs() / true_interval < 0.01,
            "mean inter-arrival {mean:.4} µs must track the true {true_interval:.4} µs"
        );
    }

    /// The Poisson sampler must not lose the sub-µs part of each draw:
    /// flooring exponentials independently shaves ~0.5 µs per arrival,
    /// which at high rates overstates the offered load the same way the
    /// old jitter truncation did. The ns carry keeps the realized mean
    /// on the true interval.
    #[test]
    fn exponential_delays_keep_an_exact_mean_at_high_rates() {
        let rate = 125_000.0; // true interval 8 µs
        let mut client = Client::new(0, NodeId(0), rate, 2.0);
        let mut rng = rand::StdRng::seed_from_u64(9);
        let n = 200_000u64;
        let sum: u64 = (0..n).map(|_| client.exponential_delay_us(rate, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        let true_interval = 1e6 / rate;
        assert!(
            (mean - true_interval).abs() / true_interval < 0.01,
            "mean exponential delay {mean:.4} µs must track the true {true_interval:.4} µs"
        );
    }

    /// The ≥10 µs path must stay the historical computation bit for bit
    /// (fig2 byte-identity rides on this): same truncated interval, same
    /// `interval/10` jitter bound, same single draw.
    #[test]
    fn legacy_jitter_path_is_bit_identical() {
        let rate = 350.0;
        let mut client = Client::new(0, NodeId(0), rate, 2.0);
        let mut rng = rand::StdRng::seed_from_u64(42);
        let mut oracle_rng = rand::StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let got = client.jittered_delay_us(rate, &mut rng);
            // The historical computation, verbatim.
            let interval_us = (1e6 / rate).max(1.0) as u64;
            let jitter = interval_us / 10;
            let expected = interval_us - jitter + oracle_rng.gen_range(0..=2 * jitter);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn open_loop_client_never_skips() {
        let workload = Workload { mode: crate::SubmissionMode::Open, ..Workload::constant() };
        let client = Client::with_workload(0, NodeId(0), 100.0, 2.0, workload, 10_000_000);
        assert_eq!(client.window, u64::MAX, "open loop has no in-flight bound");
    }

    #[test]
    fn closed_loop_window_has_the_historical_floor() {
        let client = Client::new(0, NodeId(0), 10.0, 2.0);
        assert_eq!(client.window, MIN_CLIENT_WINDOW, "10 tx/s × 2 s = 20 floors to 64");
        let client = Client::new(0, NodeId(0), 1_000.0, 2.0);
        assert_eq!(client.window, 2_000);
    }

    /// Drives one client alone on the network and returns its submission
    /// count after `secs` simulated seconds.
    fn run_solo_client(workload: Workload, base_tps: f64, secs: u64, seed: u64) -> u64 {
        // A validator to receive submissions (it need not commit).
        let committee = Committee::new_equal_stake(1);
        let v = Validator::new(committee, ValidatorId(0), ValidatorConfig::default(), None);
        let client = Client::with_workload(0, NodeId(0), base_tps, 2.0, workload, secs * 1_000_000);
        let actors = vec![Actor::honest(v), Actor::Client(client)];
        let net = NetworkConfig {
            latency: hh_net::LatencyModel::Constant(hh_net::Duration::from_millis(1)),
            ..NetworkConfig::default()
        };
        let mut sim = Simulator::new(actors, net, seed);
        sim.run_until(SimTime::from_secs(secs));
        sim.node(NodeId(1)).as_client().unwrap().submitted()
    }

    #[test]
    fn poisson_arrivals_track_the_configured_rate() {
        let workload = Workload {
            phases: vec![Phase { from_us: 0, arrival: Arrival::Poisson { scale: 1.0 } }],
            mode: crate::SubmissionMode::Open,
            ..Workload::constant()
        };
        let submitted = run_solo_client(workload, 500.0, 20, 3);
        let expected = 500.0 * 20.0;
        assert!(
            (submitted as f64 - expected).abs() / expected < 0.05,
            "poisson client submitted {submitted}, expected ≈{expected}"
        );
    }

    #[test]
    fn onoff_bursts_submit_roughly_the_duty_cycle() {
        let workload = Workload {
            phases: vec![Phase {
                from_us: 0,
                arrival: Arrival::OnOff { scale: 1.0, burst_secs: 1.0, idle_secs: 1.0 },
            }],
            mode: crate::SubmissionMode::Open,
            ..Workload::constant()
        };
        let submitted = run_solo_client(workload, 400.0, 20, 5);
        // 50% duty cycle: about half the constant volume.
        let expected = 400.0 * 20.0 * 0.5;
        assert!(
            (submitted as f64 - expected).abs() / expected < 0.1,
            "on/off client submitted {submitted}, expected ≈{expected}"
        );
    }

    #[test]
    fn ramp_submits_the_integral_of_the_rate() {
        let workload = Workload {
            phases: vec![Phase {
                from_us: 0,
                arrival: Arrival::Ramp { from_scale: 0.0, to_scale: 2.0 },
            }],
            mode: crate::SubmissionMode::Open,
            ..Workload::constant()
        };
        // Linear 0 → 800 tx/s over 20 s: integral = 800/2 × 20 = 8000.
        let submitted = run_solo_client(workload, 400.0, 20, 11);
        let expected = 8_000.0;
        assert!(
            (submitted as f64 - expected).abs() / expected < 0.1,
            "ramp client submitted {submitted}, expected ≈{expected}"
        );
    }
}
