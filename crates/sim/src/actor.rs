//! Adapters putting validators and clients on the discrete-event network.

use hammerhead::{Output, Validator, ValidatorMessage};
use hh_net::{Context, Node, NodeId};
use hh_storage::MemBackend;
use hh_types::{Transaction, ValidatorId};
use rand::Rng;
use std::sync::Arc;

/// Wire messages on the simulated network. `Arc` keeps the per-recipient
/// broadcast clone O(1).
pub type NetMessage = Arc<ValidatorMessage>;

/// Timer token for client submission ticks (distinct from validator
/// tokens, which are < 100).
const TOKEN_CLIENT_SUBMIT: u64 = 1_000;

/// A load generator (§5: "benchmark clients submitting transactions at a
/// fixed rate"), co-located with one validator.
///
/// The generator is open-loop up to a bounded in-flight window: it fires at
/// its configured rate while fewer than `window` of its transactions await
/// finality confirmation, and skips ticks beyond that — how real benchmark
/// drivers (and the Sui orchestrator's clients) behave. By Little's law the
/// window converts latency degradation into the throughput loss the
/// paper's Figure 2 shows for Bullshark under faults.
#[derive(Debug)]
pub struct Client {
    /// This client's id (tags its transactions).
    client_id: u32,
    /// The validator it submits to.
    target: NodeId,
    /// Inter-arrival time between transactions, µs.
    interval_us: u64,
    /// Maximum unconfirmed transactions in flight.
    window: u64,
    /// Next sequence number.
    seq: u64,
    /// Total submitted.
    submitted: u64,
    /// Ticks skipped because the window was full.
    skipped: u64,
    /// Currently unconfirmed transactions.
    outstanding: u64,
    /// Future execution-completion instants from confirmations.
    confirm_queue: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
}

impl Client {
    /// A client submitting `rate_tps` transactions per second to `target`
    /// with an in-flight window of `rate × window_secs` transactions.
    ///
    /// # Panics
    ///
    /// Panics if `rate_tps` is zero.
    pub fn new(client_id: u32, target: NodeId, rate_tps: f64, window_secs: f64) -> Self {
        assert!(rate_tps > 0.0, "client rate must be positive");
        Client {
            client_id,
            target,
            interval_us: (1e6 / rate_tps).max(1.0) as u64,
            // The floor keeps low-rate clients from throttling on the
            // bursty per-anchor confirmation pattern; the paper's clients
            // (350 tx/s, seconds of latency) ran with ~thousands in
            // flight, so per-tick windows this small would be an artifact.
            window: ((rate_tps * window_secs) as u64).max(64),
            seq: 0,
            submitted: 0,
            skipped: 0,
            outstanding: 0,
            confirm_queue: std::collections::BinaryHeap::new(),
        }
    }

    /// Transactions submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Ticks skipped with a full window (latency-throttled demand).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    fn on_confirm(&mut self, executed_at: u64, now: u64) {
        // Shed transactions (executed_at == MAX) release immediately.
        let at = if executed_at == u64::MAX { now } else { executed_at };
        self.confirm_queue.push(std::cmp::Reverse(at));
    }

    fn drain_confirms(&mut self, now: u64) {
        while matches!(self.confirm_queue.peek(), Some(std::cmp::Reverse(at)) if *at <= now) {
            self.confirm_queue.pop();
            self.outstanding = self.outstanding.saturating_sub(1);
        }
    }

    fn tick(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let now = ctx.now().as_micros();
        self.drain_confirms(now);
        if self.outstanding < self.window {
            let tx = Transaction::new(self.client_id, self.seq, now);
            self.seq += 1;
            self.submitted += 1;
            self.outstanding += 1;
            ctx.send(self.target, Arc::new(ValidatorMessage::Submit(tx)));
        } else {
            self.skipped += 1;
        }
        // Small deterministic jitter (±10%) desynchronizes clients.
        let jitter = self.interval_us / 10;
        let delay = if jitter > 0 {
            self.interval_us - jitter + ctx.rng().gen_range(0..=2 * jitter)
        } else {
            self.interval_us
        };
        ctx.set_timer(hh_net::Duration::from_micros(delay.max(1)), TOKEN_CLIENT_SUBMIT);
    }
}

/// A simulation participant: validator or load generator.
///
/// Validators occupy node ids `0..n`; clients live above them. Broadcasts
/// from validators go to validators only.
pub enum Actor {
    /// A consensus validator.
    Validator(Box<Validator<MemBackend>>),
    /// A load generator.
    Client(Client),
}

impl Actor {
    /// The validator inside, if this actor is one.
    pub fn as_validator(&self) -> Option<&Validator<MemBackend>> {
        match self {
            Actor::Validator(v) => Some(v),
            Actor::Client(_) => None,
        }
    }

    /// Mutable access to the validator inside, if this actor is one
    /// (streaming harnesses draining latency records mid-run).
    pub fn as_validator_mut(&mut self) -> Option<&mut Validator<MemBackend>> {
        match self {
            Actor::Validator(v) => Some(v),
            Actor::Client(_) => None,
        }
    }

    /// The client inside, if this actor is one.
    pub fn as_client(&self) -> Option<&Client> {
        match self {
            Actor::Client(c) => Some(c),
            Actor::Validator(_) => None,
        }
    }
}

/// Routes validator outputs onto the network. Broadcast targets are
/// validators only (`committee_size` of them, ids `0..committee_size`).
fn emit(outputs: Vec<Output>, committee_size: usize, ctx: &mut Context<'_, NetMessage>) {
    let me = ctx.id();
    for output in outputs {
        match output {
            Output::Send(to, msg) => ctx.send(NodeId(to.0 as usize), Arc::new(msg)),
            Output::Broadcast(msg) => {
                let shared = Arc::new(msg);
                for i in 0..committee_size {
                    if NodeId(i) != me {
                        ctx.send(NodeId(i), shared.clone());
                    }
                }
            }
            Output::SetTimer { delay_us, token } => {
                ctx.set_timer(hh_net::Duration::from_micros(delay_us), token);
            }
            Output::StorageError { .. } => {
                // The validator has fail-stopped and recorded the fault in
                // its metrics (`storage_errors`); nothing to route. The
                // harness keeps the rest of the committee running.
            }
        }
    }
}

impl Node for Actor {
    type Message = NetMessage;

    fn on_start(&mut self, ctx: &mut Context<'_, NetMessage>) {
        match self {
            Actor::Validator(v) => {
                let n = v.dag().committee().size();
                let out = v.on_start(ctx.now().as_micros());
                emit(out, n, ctx);
            }
            Actor::Client(c) => {
                // Stagger client starts across one interval to avoid a
                // synchronized burst at t=0.
                let offset = ctx.rng().gen_range(0..=c.interval_us);
                ctx.set_timer(hh_net::Duration::from_micros(offset.max(1)), TOKEN_CLIENT_SUBMIT);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: NetMessage, ctx: &mut Context<'_, NetMessage>) {
        match self {
            Actor::Validator(v) => {
                let n = v.dag().committee().size();
                let sender = ValidatorId(from.0.min(u16::MAX as usize) as u16);
                let out = v.on_message(sender, (*msg).clone(), ctx.now().as_micros());
                emit(out, n, ctx);
            }
            Actor::Client(c) => {
                if let ValidatorMessage::Confirm { executed_at, .. } = &*msg {
                    c.on_confirm(*executed_at, ctx.now().as_micros());
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetMessage>) {
        match self {
            Actor::Validator(v) => {
                let n = v.dag().committee().size();
                let out = v.on_timer(token, ctx.now().as_micros());
                emit(out, n, ctx);
            }
            Actor::Client(c) => {
                if token == TOKEN_CLIENT_SUBMIT {
                    c.tick(ctx);
                }
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, NetMessage>) {
        match self {
            Actor::Validator(v) => {
                let n = v.dag().committee().size();
                let out = v.on_restart(ctx.now().as_micros());
                emit(out, n, ctx);
            }
            Actor::Client(_) => self.on_start(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammerhead::ValidatorConfig;
    use hh_net::{NetworkConfig, SimTime, Simulator};
    use hh_types::Committee;

    #[test]
    fn four_validators_commit_on_a_flat_network() {
        let committee = Committee::new_equal_stake(4);
        let config = ValidatorConfig {
            min_round_delay_us: 20_000,
            leader_timeout_us: 200_000,
            sync_tick_us: 100_000,
            ..ValidatorConfig::default()
        };
        let mut actors: Vec<Actor> = (0..4)
            .map(|i| {
                Actor::Validator(Box::new(Validator::new(
                    committee.clone(),
                    ValidatorId(i),
                    config.clone(),
                    None,
                )))
            })
            .collect();
        // One client targeting validator 0.
        actors.push(Actor::Client(Client::new(0, NodeId(0), 200.0, 5.0)));

        let net = NetworkConfig {
            latency: hh_net::LatencyModel::Constant(hh_net::Duration::from_millis(5)),
            ..NetworkConfig::default()
        };
        let mut sim = Simulator::new(actors, net, 7);
        sim.run_until(SimTime::from_secs(5));

        let commit_counts: Vec<u64> =
            (0..4).map(|i| sim.node(NodeId(i)).as_validator().unwrap().commit_count()).collect();
        assert!(commit_counts.iter().all(|c| *c > 10), "commits: {commit_counts:?}");

        // Agreement: equal-length prefixes match.
        let anchors: Vec<_> = (0..4)
            .map(|i| sim.node(NodeId(i)).as_validator().unwrap().committed_anchors().to_vec())
            .collect();
        let min_len = anchors.iter().map(|a| a.len()).min().unwrap();
        for v in 1..4 {
            assert_eq!(&anchors[0][..min_len], &anchors[v][..min_len]);
        }

        // The client's transactions flowed through to execution records.
        let recs = sim.node(NodeId(0)).as_validator().unwrap().metrics().exec_records.len();
        assert!(recs > 100, "exec records: {recs}");
    }
}
