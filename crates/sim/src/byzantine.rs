//! Byzantine adversary schedules and the actor-level behaviors they
//! lower to.
//!
//! A [`ByzantineSchedule`] is the strategic-adversary counterpart of the
//! crash/partition [`FaultSchedule`](crate::FaultSchedule): an ordered
//! list of per-validator attack windows, validated up front
//! ([`ByzantineSchedule::validate`]) and lowered by
//! [`build_sim`](crate::build_sim) into a [`ByzantineBehavior`] attached
//! to the attacker's actor. The behavior rewrites the honest validator's
//! *inputs and outputs at the network boundary* — the validator itself
//! runs unmodified `hammerhead` code, so the attack surface is exactly
//! what a real adversary controls: which messages it sends, when, and
//! which received messages it pretends not to have seen.
//!
//! The four strategies attack the reputation mechanism from different
//! angles:
//!
//! * [`ByzantineStrategy::Equivocate`] — broadcast a deterministic twin
//!   (see [`hh_dag::testkit::twin_of`]) alongside every own vertex.
//!   Runs with an equivocator force certified broadcast, where honest
//!   validators ack only the first header per `(round, author)` — the
//!   twin can never certify, and every honest node records
//!   [`hh_dag::EquivocationEvidence`] against the attacker.
//! * [`ByzantineStrategy::WithholdVotes`] — ignore vertex pushes
//!   authored by targeted validators, so the attacker's proposals omit
//!   parent edges (votes) toward them: an attempt to *drive honest
//!   validators' scores down*. Sync responses still pass, keeping the
//!   attacker's ancestry (and the run) live.
//! * [`ByzantineStrategy::LazyLeader`] — hold every own-vertex broadcast
//!   for a fixed delay: free-ride on others' proposals while arriving
//!   too late to be voted for (the score-farming shape; an empty or
//!   late block contributes equally little).
//! * [`ByzantineStrategy::FlipFlop`] — alternate honest and lazy
//!   half-periods, hovering at the edge of the good set to dodge
//!   demotion.
//!
//! Behaviors draw no randomness and allocate timer tokens from a private
//! range, so a run with an empty schedule is bit-identical to one built
//! before this module existed.

use hammerhead::{Output, ValidatorMessage};
use hh_crypto::Keypair;
use hh_dag::testkit::twin_of;
use hh_rbc::RbcMessage;
use hh_types::{Committee, ValidatorId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// First timer token owned by byzantine behaviors. Validator tokens are
/// small constants (< 100) and client ticks use 1_000; everything at or
/// above this base is routed to the actor's behavior, never the
/// validator.
pub const BYZANTINE_TOKEN_BASE: u64 = 2_000;

/// One adversarial strategy, active inside its entry's window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ByzantineStrategy {
    /// Broadcast a deterministic twin alongside every own vertex.
    Equivocate,
    /// Ignore vertex pushes authored by `targets`, omitting vote edges
    /// toward them in own proposals.
    WithholdVotes {
        /// The validators whose vertices are ignored.
        targets: Vec<u16>,
    },
    /// Delay every own-vertex broadcast by `delay_us`.
    LazyLeader {
        /// Added broadcast delay (µs).
        delay_us: u64,
    },
    /// Alternate honest and lazy half-periods of `flip_us` each,
    /// starting honest at the window's start.
    FlipFlop {
        /// Length of each half-period (µs).
        flip_us: u64,
        /// Added broadcast delay during lazy half-periods (µs).
        delay_us: u64,
    },
}

impl ByzantineStrategy {
    /// Stable label used in reports and scenario files.
    pub fn label(&self) -> &'static str {
        match self {
            ByzantineStrategy::Equivocate => "equivocate",
            ByzantineStrategy::WithholdVotes { .. } => "withhold_votes",
            ByzantineStrategy::LazyLeader { .. } => "lazy_leader",
            ByzantineStrategy::FlipFlop { .. } => "flip_flop",
        }
    }
}

/// One validator's attack window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ByzantineEntry {
    /// The adversarial validator.
    pub node: u16,
    /// The strategy it runs.
    pub strategy: ByzantineStrategy,
    /// Window start (inclusive, µs).
    pub from_us: u64,
    /// Window end (exclusive, µs); `u64::MAX` for "until the end".
    pub until_us: u64,
}

/// An unrunnable byzantine schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ByzantineScheduleError(String);

impl fmt::Display for ByzantineScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ByzantineScheduleError {}

/// The byzantine schedule of a run: per-validator attack windows, in
/// insertion order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ByzantineSchedule {
    entries: Vec<ByzantineEntry>,
}

impl ByzantineSchedule {
    /// An empty schedule (everyone honest).
    pub fn new() -> Self {
        Self::default()
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[ByzantineEntry] {
        &self.entries
    }

    /// Whether the schedule contains no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an arbitrary entry.
    #[must_use]
    pub fn entry(mut self, entry: ByzantineEntry) -> Self {
        self.entries.push(entry);
        self
    }

    /// `node` equivocates during `[from_us, until_us)`.
    #[must_use]
    pub fn equivocate(self, node: u16, from_us: u64, until_us: u64) -> Self {
        self.entry(ByzantineEntry {
            node,
            strategy: ByzantineStrategy::Equivocate,
            from_us,
            until_us,
        })
    }

    /// `node` withholds votes from `targets` during `[from_us, until_us)`.
    #[must_use]
    pub fn withhold_votes(self, node: u16, targets: Vec<u16>, from_us: u64, until_us: u64) -> Self {
        self.entry(ByzantineEntry {
            node,
            strategy: ByzantineStrategy::WithholdVotes { targets },
            from_us,
            until_us,
        })
    }

    /// `node` delays its broadcasts by `delay_us` during
    /// `[from_us, until_us)`.
    #[must_use]
    pub fn lazy_leader(self, node: u16, delay_us: u64, from_us: u64, until_us: u64) -> Self {
        self.entry(ByzantineEntry {
            node,
            strategy: ByzantineStrategy::LazyLeader { delay_us },
            from_us,
            until_us,
        })
    }

    /// `node` alternates honest and lazy half-periods of `flip_us`
    /// during `[from_us, until_us)`.
    #[must_use]
    pub fn flip_flop(
        self,
        node: u16,
        flip_us: u64,
        delay_us: u64,
        from_us: u64,
        until_us: u64,
    ) -> Self {
        self.entry(ByzantineEntry {
            node,
            strategy: ByzantineStrategy::FlipFlop { flip_us, delay_us },
            from_us,
            until_us,
        })
    }

    /// Distinct adversarial validators, ascending.
    pub fn nodes(&self) -> Vec<u16> {
        let mut nodes: Vec<u16> = self.entries.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Whether any entry runs [`ByzantineStrategy::Equivocate`] (such
    /// runs force certified broadcast, the mode that can refuse twins).
    pub fn has_equivocation(&self) -> bool {
        self.entries.iter().any(|e| matches!(e.strategy, ByzantineStrategy::Equivocate))
    }

    /// Checks the schedule against a committee of `committee_size`:
    ///
    /// * every referenced validator (and withhold target) exists;
    /// * at most `f = (n - 1) / 3` distinct validators are byzantine —
    ///   beyond that no BFT guarantee holds and the run measures nothing;
    /// * windows are non-empty and per-node windows do not overlap;
    /// * `withhold_votes` targets are non-empty, distinct from the
    ///   attacker, and at most `f` of them — withholding a quorum's worth
    ///   of ancestry would stall the attacker itself, not the victims;
    /// * delays and flip periods are positive.
    ///
    /// # Errors
    ///
    /// Returns a [`ByzantineScheduleError`] naming the first violation.
    pub fn validate(&self, committee_size: usize) -> Result<(), ByzantineScheduleError> {
        let n = committee_size;
        let f = n.saturating_sub(1) / 3;
        let in_range = |node: u16| -> Result<(), ByzantineScheduleError> {
            if node as usize >= n {
                return Err(ByzantineScheduleError(format!(
                    "validator {node} is outside the committee of {n}"
                )));
            }
            Ok(())
        };

        for e in &self.entries {
            in_range(e.node)?;
            if e.until_us <= e.from_us {
                return Err(ByzantineScheduleError(format!(
                    "byzantine window of validator {} is empty ({}µs..{}µs)",
                    e.node, e.from_us, e.until_us
                )));
            }
            match &e.strategy {
                ByzantineStrategy::Equivocate => {}
                ByzantineStrategy::WithholdVotes { targets } => {
                    if targets.is_empty() {
                        return Err(ByzantineScheduleError(format!(
                            "withhold_votes by validator {} names no targets",
                            e.node
                        )));
                    }
                    let mut distinct = targets.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    for t in &distinct {
                        in_range(*t)?;
                        if *t == e.node {
                            return Err(ByzantineScheduleError(format!(
                                "validator {} cannot withhold votes from itself",
                                e.node
                            )));
                        }
                    }
                    if distinct.len() > f {
                        return Err(ByzantineScheduleError(format!(
                            "withhold_votes by validator {} targets {} validators, above f = {f} \
                             for a committee of {n} — the attacker would starve its own \
                             quorum ancestry",
                            e.node,
                            distinct.len()
                        )));
                    }
                }
                ByzantineStrategy::LazyLeader { delay_us } => {
                    if *delay_us == 0 {
                        return Err(ByzantineScheduleError(format!(
                            "lazy_leader by validator {} has zero delay",
                            e.node
                        )));
                    }
                }
                ByzantineStrategy::FlipFlop { flip_us, delay_us } => {
                    if *flip_us == 0 {
                        return Err(ByzantineScheduleError(format!(
                            "flip_flop by validator {} has a zero flip period",
                            e.node
                        )));
                    }
                    if *delay_us == 0 {
                        return Err(ByzantineScheduleError(format!(
                            "flip_flop by validator {} has zero delay",
                            e.node
                        )));
                    }
                }
            }
        }

        // More than f byzantine validators voids every guarantee.
        let byzantine = self.nodes();
        if byzantine.len() > f {
            return Err(ByzantineScheduleError(format!(
                "{} byzantine validators exceeds f = {f} for a committee of {n}",
                byzantine.len()
            )));
        }

        // Per-node windows must not overlap (one strategy at a time).
        let mut windows: Vec<(u16, u64, u64)> =
            self.entries.iter().map(|e| (e.node, e.from_us, e.until_us)).collect();
        windows.sort_unstable();
        for pair in windows.windows(2) {
            let (node_a, _, until_a) = pair[0];
            let (node_b, from_b, _) = pair[1];
            if node_a == node_b && from_b < until_a {
                return Err(ByzantineScheduleError(format!(
                    "validator {node_a} has overlapping byzantine windows \
                     (one ends at {until_a}µs, the next starts at {from_b}µs)"
                )));
            }
        }
        Ok(())
    }

    /// The behavior for `node`, when the schedule makes it adversarial.
    pub fn behavior_for(
        &self,
        node: ValidatorId,
        committee: &Committee,
    ) -> Option<Box<ByzantineBehavior>> {
        let entries: Vec<ByzantineEntry> =
            self.entries.iter().filter(|e| e.node == node.0).cloned().collect();
        if entries.is_empty() {
            return None;
        }
        Some(Box::new(ByzantineBehavior {
            me: node,
            keypair: committee.keypair(node),
            entries,
            held: BTreeMap::new(),
            next_token: BYZANTINE_TOKEN_BASE,
            twins_sent: 0,
        }))
    }
}

/// The runtime hook rewriting one adversarial validator's network
/// boundary (see the module docs for the strategy semantics).
#[derive(Debug)]
pub struct ByzantineBehavior {
    me: ValidatorId,
    keypair: Keypair,
    /// This validator's windows, in schedule order.
    entries: Vec<ByzantineEntry>,
    /// Held own-vertex broadcasts awaiting their release timer.
    held: BTreeMap<u64, Vec<Output>>,
    /// Next release-timer token (deterministic allocation).
    next_token: u64,
    /// Twin broadcasts emitted so far (diagnostics).
    twins_sent: u64,
}

impl ByzantineBehavior {
    /// The entry whose window covers `now`, if any.
    fn active_entry(&self, now: u64) -> Option<&ByzantineEntry> {
        self.entries.iter().find(|e| e.from_us <= now && now < e.until_us)
    }

    /// Twin broadcasts emitted so far.
    pub fn twins_sent(&self) -> u64 {
        self.twins_sent
    }

    /// Whether `token` belongs to this behavior's release timers.
    pub fn owns_token(token: u64) -> bool {
        token >= BYZANTINE_TOKEN_BASE
    }

    /// Whether an inbound message may reach the validator. Only
    /// `withhold_votes` filters: vertex payloads (push, proposal or
    /// certified) authored by a target are dropped, so the attacker's DAG
    /// — and therefore its proposals' parent edges — omit them. Sync
    /// responses pass, healing ancestry the slow way.
    pub fn allows_inbound(&self, msg: &ValidatorMessage, now: u64) -> bool {
        let Some(entry) = self.active_entry(now) else {
            return true;
        };
        let ByzantineStrategy::WithholdVotes { targets } = &entry.strategy else {
            return true;
        };
        match msg {
            ValidatorMessage::Rbc(
                RbcMessage::Vertex(v) | RbcMessage::Propose(v) | RbcMessage::Certified(v, _),
            ) => !targets.contains(&v.author().0),
            _ => true,
        }
    }

    /// Rewrites the validator's outputs according to the active strategy.
    pub fn process_outbound(&mut self, outputs: Vec<Output>, now: u64) -> Vec<Output> {
        let Some(entry) = self.active_entry(now) else {
            return outputs;
        };
        match entry.strategy.clone() {
            ByzantineStrategy::Equivocate => self.add_twins(outputs),
            ByzantineStrategy::WithholdVotes { .. } => outputs,
            ByzantineStrategy::LazyLeader { delay_us } => {
                self.delay_own_broadcasts(outputs, delay_us)
            }
            ByzantineStrategy::FlipFlop { flip_us, delay_us } => {
                // Half-periods count from the window start; the first is
                // honest, so a flip_flop attacker starts indistinguishable
                // from a correct validator.
                let lazy = ((now - entry.from_us) / flip_us) % 2 == 1;
                if lazy {
                    self.delay_own_broadcasts(outputs, delay_us)
                } else {
                    outputs
                }
            }
        }
    }

    /// Releases the outputs held under `token` (empty if none — e.g. a
    /// timer surviving a window that already closed).
    pub fn release(&mut self, token: u64) -> Vec<Output> {
        self.held.remove(&token).unwrap_or_default()
    }

    /// Inserts a deterministic twin broadcast *ahead of* every own-vertex
    /// broadcast. The twin shares round, author and parents but not the
    /// digest; re-broadcasts of the same vertex produce the same twin, so
    /// honest evidence ledgers charge the pair once.
    ///
    /// Sending the twin first is the aggressive ordering: honest
    /// validators ack the first header they see per `(round, author)`,
    /// so every ack lands on the twin while the attacker's RBC awaits
    /// acks on the genuine digest — neither header certifies, the
    /// attacker's slot burns, and the second (genuine) header arriving
    /// right behind the twin is what every honest node records as
    /// equivocation evidence.
    fn add_twins(&mut self, outputs: Vec<Output>) -> Vec<Output> {
        let mut result = Vec::with_capacity(outputs.len());
        for output in outputs {
            let twin_msg = match &output {
                Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Propose(v)))
                    if v.author() == self.me =>
                {
                    Some(RbcMessage::Propose(Arc::new(twin_of(v, &self.keypair))))
                }
                Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Vertex(v)))
                    if v.author() == self.me =>
                {
                    Some(RbcMessage::Vertex(Arc::new(twin_of(v, &self.keypair))))
                }
                _ => None,
            };
            if let Some(msg) = twin_msg {
                self.twins_sent += 1;
                result.push(Output::Broadcast(ValidatorMessage::Rbc(msg)));
            }
            result.push(output);
        }
        result
    }

    /// Moves own-vertex broadcasts into the held map behind one release
    /// timer; everything else (sends, timers, sync traffic) passes
    /// through untouched.
    fn delay_own_broadcasts(&mut self, outputs: Vec<Output>, delay_us: u64) -> Vec<Output> {
        let mut passed = Vec::with_capacity(outputs.len());
        let mut held = Vec::new();
        for output in outputs {
            let own_broadcast = matches!(
                &output,
                Output::Broadcast(ValidatorMessage::Rbc(
                    RbcMessage::Vertex(v) | RbcMessage::Propose(v) | RbcMessage::Certified(v, _),
                )) if v.author() == self.me
            );
            if own_broadcast {
                held.push(output);
            } else {
                passed.push(output);
            }
        }
        if !held.is_empty() {
            let token = self.next_token;
            self.next_token += 1;
            self.held.insert(token, held);
            passed.push(Output::SetTimer { delay_us: delay_us.max(1), token });
        }
        passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_types::{Block, Round, Vertex};

    fn committee4() -> Committee {
        Committee::new_equal_stake(4)
    }

    fn own_vertex(c: &Committee, round: u64, author: u16) -> Arc<Vertex> {
        Arc::new(Vertex::new(
            Round(round),
            ValidatorId(author),
            Block::empty(),
            vec![],
            &c.keypair(ValidatorId(author)),
        ))
    }

    fn behavior(schedule: &ByzantineSchedule, node: u16) -> Box<ByzantineBehavior> {
        schedule.behavior_for(ValidatorId(node), &committee4()).expect("entry for node")
    }

    #[test]
    fn validate_accepts_a_full_sweep() {
        let s = ByzantineSchedule::new()
            .equivocate(1, 0, u64::MAX)
            .withhold_votes(2, vec![0], 1_000_000, 5_000_000)
            .lazy_leader(2, 400_000, 5_000_000, 9_000_000)
            .flip_flop(3, 2_000_000, 400_000, 0, u64::MAX);
        // n = 13 → f = 4: three byzantine nodes are allowed.
        assert!(s.validate(13).is_ok());
        assert_eq!(s.nodes(), vec![1, 2, 3]);
        assert!(s.has_equivocation());
    }

    #[test]
    fn validate_rejects_more_than_f_byzantine_nodes() {
        // n = 4 → f = 1.
        let s = ByzantineSchedule::new().equivocate(1, 0, u64::MAX).lazy_leader(
            2,
            400_000,
            0,
            u64::MAX,
        );
        let err = s.validate(4).unwrap_err().to_string();
        assert!(err.contains("exceeds f = 1"), "{err}");
        // The same two attackers are fine in a bigger committee.
        assert!(s.validate(7).is_ok());
    }

    #[test]
    fn validate_rejects_overlapping_windows_per_node() {
        let s = ByzantineSchedule::new()
            .equivocate(1, 0, 5_000_000)
            .lazy_leader(1, 400_000, 4_000_000, 9_000_000);
        let err = s.validate(13).unwrap_err().to_string();
        assert!(err.contains("overlapping"), "{err}");
        // Back-to-back windows (until == next from) are fine.
        let s = ByzantineSchedule::new()
            .equivocate(1, 0, 4_000_000)
            .lazy_leader(1, 400_000, 4_000_000, 9_000_000);
        assert!(s.validate(13).is_ok());
    }

    #[test]
    fn validate_rejects_bad_targets_ranges_and_params() {
        let out = ByzantineSchedule::new().equivocate(9, 0, u64::MAX);
        assert!(out.validate(4).unwrap_err().to_string().contains("outside"));

        let empty_window = ByzantineSchedule::new().equivocate(1, 5_000_000, 5_000_000);
        assert!(empty_window.validate(4).unwrap_err().to_string().contains("empty"));

        let no_targets = ByzantineSchedule::new().withhold_votes(1, vec![], 0, u64::MAX);
        assert!(no_targets.validate(4).unwrap_err().to_string().contains("no targets"));

        let self_target = ByzantineSchedule::new().withhold_votes(1, vec![1], 0, u64::MAX);
        assert!(self_target.validate(4).unwrap_err().to_string().contains("itself"));

        // n = 7 → f = 2: three targets would starve the attacker's quorum.
        let too_many = ByzantineSchedule::new().withhold_votes(1, vec![0, 2, 3], 0, u64::MAX);
        assert!(too_many.validate(7).unwrap_err().to_string().contains("starve"));

        let zero_delay = ByzantineSchedule::new().lazy_leader(1, 0, 0, u64::MAX);
        assert!(zero_delay.validate(4).unwrap_err().to_string().contains("zero delay"));

        let zero_flip = ByzantineSchedule::new().flip_flop(1, 0, 400_000, 0, u64::MAX);
        assert!(zero_flip.validate(4).unwrap_err().to_string().contains("flip period"));
    }

    #[test]
    fn behavior_only_exists_for_scheduled_nodes() {
        let s = ByzantineSchedule::new().equivocate(2, 0, u64::MAX);
        assert!(s.behavior_for(ValidatorId(2), &committee4()).is_some());
        assert!(s.behavior_for(ValidatorId(1), &committee4()).is_none());
    }

    #[test]
    fn equivocator_twins_every_own_broadcast_deterministically() {
        let c = committee4();
        let s = ByzantineSchedule::new().equivocate(0, 0, u64::MAX);
        let mut b = behavior(&s, 0);
        let v = own_vertex(&c, 2, 0);
        let outputs =
            vec![Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Propose(v.clone())))];
        let rewritten = b.process_outbound(outputs.clone(), 1_000_000);
        assert_eq!(rewritten.len(), 2, "twin plus original");
        // The twin races ahead of the genuine header.
        let twin = match &rewritten[0] {
            Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Propose(t))) => t.clone(),
            other => panic!("expected a twin proposal, got {other:?}"),
        };
        match &rewritten[1] {
            Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Propose(orig))) => {
                assert_eq!(orig.digest(), v.digest(), "the genuine header follows");
            }
            other => panic!("expected the genuine proposal, got {other:?}"),
        }
        assert_eq!(twin.round(), v.round());
        assert_eq!(twin.author(), v.author());
        assert_ne!(twin.digest(), v.digest());
        assert_eq!(b.twins_sent(), 1);
        // Re-broadcasting the same vertex yields the same twin digest.
        let again = b.process_outbound(outputs, 2_000_000);
        match &again[0] {
            Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Propose(t))) => {
                assert_eq!(t.digest(), twin.digest());
            }
            other => panic!("expected a twin proposal, got {other:?}"),
        }
    }

    #[test]
    fn equivocator_leaves_other_authors_and_closed_windows_alone() {
        let c = committee4();
        let s = ByzantineSchedule::new().equivocate(0, 0, 5_000_000);
        let mut b = behavior(&s, 0);
        // Someone else's vertex passes untouched (sync relays).
        let other = own_vertex(&c, 2, 1);
        let outputs = vec![Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Vertex(other)))];
        assert_eq!(b.process_outbound(outputs, 1_000_000).len(), 1);
        // Outside the window, own vertices pass untouched too.
        let own = own_vertex(&c, 2, 0);
        let outputs = vec![Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Vertex(own)))];
        assert_eq!(b.process_outbound(outputs, 6_000_000).len(), 1);
        assert_eq!(b.twins_sent(), 0, "neither case should have twinned");
    }

    #[test]
    fn lazy_leader_holds_and_releases_own_broadcasts() {
        let c = committee4();
        let s = ByzantineSchedule::new().lazy_leader(0, 400_000, 0, u64::MAX);
        let mut b = behavior(&s, 0);
        let own = own_vertex(&c, 2, 0);
        let keep = Output::Send(
            ValidatorId(1),
            ValidatorMessage::Rbc(RbcMessage::SyncRequest(vec![own.digest()])),
        );
        let outputs = vec![
            Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Vertex(own.clone()))),
            keep.clone(),
        ];
        let rewritten = b.process_outbound(outputs, 1_000_000);
        // The broadcast is gone; the send passed; a release timer appeared.
        assert_eq!(rewritten.len(), 2);
        assert!(matches!(&rewritten[0], Output::Send(_, _)));
        let token = match &rewritten[1] {
            Output::SetTimer { delay_us: 400_000, token } => *token,
            other => panic!("expected a release timer, got {other:?}"),
        };
        assert!(ByzantineBehavior::owns_token(token));
        let released = b.release(token);
        assert_eq!(released.len(), 1);
        assert!(matches!(
            &released[0],
            Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Vertex(v))) if v.digest() == own.digest()
        ));
        // A second release of the same token yields nothing.
        assert!(b.release(token).is_empty());
    }

    #[test]
    fn flip_flop_is_honest_then_lazy_by_half_period() {
        let c = committee4();
        let s = ByzantineSchedule::new().flip_flop(0, 2_000_000, 400_000, 1_000_000, u64::MAX);
        let mut b = behavior(&s, 0);
        let outputs = |v: &Arc<Vertex>| {
            vec![Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Vertex(v.clone())))]
        };
        let v = own_vertex(&c, 2, 0);
        // First half-period (1s..3s from window start at 1s): honest.
        assert_eq!(b.process_outbound(outputs(&v), 1_500_000).len(), 1);
        // Second half-period (3s..5s): lazy — held behind a timer.
        let rewritten = b.process_outbound(outputs(&v), 3_500_000);
        assert!(matches!(&rewritten[..], [Output::SetTimer { .. }]));
        // Third half-period (5s..7s): honest again.
        assert_eq!(b.process_outbound(outputs(&v), 5_500_000).len(), 1);
    }

    #[test]
    fn withholder_drops_target_pushes_but_not_sync() {
        let c = committee4();
        let s = ByzantineSchedule::new().withhold_votes(0, vec![2], 0, 5_000_000);
        let b = behavior(&s, 0);
        let target_vertex = own_vertex(&c, 1, 2);
        let other_vertex = own_vertex(&c, 1, 1);
        let push = ValidatorMessage::Rbc(RbcMessage::Vertex(target_vertex.clone()));
        assert!(!b.allows_inbound(&push, 1_000_000), "target push dropped");
        assert!(b.allows_inbound(&push, 6_000_000), "window over, push passes");
        let other = ValidatorMessage::Rbc(RbcMessage::Vertex(other_vertex));
        assert!(b.allows_inbound(&other, 1_000_000), "non-target passes");
        let sync = ValidatorMessage::Rbc(RbcMessage::SyncResponse(vec![(target_vertex, None)]));
        assert!(b.allows_inbound(&sync, 1_000_000), "sync responses heal ancestry");
        // Outbound is untouched for withholders.
        let mut b = behavior(&s, 0);
        let own = own_vertex(&c, 2, 0);
        let outputs = vec![Output::Broadcast(ValidatorMessage::Rbc(RbcMessage::Vertex(own)))];
        assert_eq!(b.process_outbound(outputs, 1_000_000).len(), 1);
    }
}
