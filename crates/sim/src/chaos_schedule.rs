//! The adverse-network chaos schedule: timed windows of frame drop,
//! duplication, reordering and corruption on selected links.
//!
//! This mirrors the unified [`FaultSchedule`](crate::FaultSchedule)
//! shape: scenario files parse `[[faults.chaos]]` tables into a
//! [`ChaosSchedule`], [`ChaosSchedule::validate`] rejects unrunnable
//! timelines up front with precise errors, and
//! [`ChaosSchedule::to_plan`] lowers it to the network simulator's
//! [`ChaosPlan`] for execution. Unlike crashes, chaos never changes the
//! *logical* fault model — every effect acts on encoded frames below
//! the protocol, so an honest protocol must ride it out (drop →
//! retransmit, duplicate → idempotent absorb, corrupt → die at the
//! codec, reorder → DAG buffering).
//!
//! All times are microseconds of simulated time.

use hh_net::{ChaosPlan, ChaosScope, ChaosWindow, Duration, NodeId, SimTime};
use std::fmt;

/// Which links one chaos entry covers (scenario-level ids).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosTarget {
    /// Every validator-to-validator link.
    AllLinks,
    /// Every link touching one validator, inbound or outbound.
    Node(u16),
    /// One directed link.
    Pair {
        /// Sender side.
        from: u16,
        /// Receiver side.
        to: u16,
    },
}

impl ChaosTarget {
    fn to_scope(self) -> ChaosScope {
        match self {
            ChaosTarget::AllLinks => ChaosScope::AllLinks,
            ChaosTarget::Node(n) => ChaosScope::Node(NodeId(n as usize)),
            ChaosTarget::Pair { from, to } => {
                ChaosScope::Pair { from: NodeId(from as usize), to: NodeId(to as usize) }
            }
        }
    }

    fn describe(&self) -> String {
        match self {
            ChaosTarget::AllLinks => "all links".into(),
            ChaosTarget::Node(n) => format!("links of validator {n}"),
            ChaosTarget::Pair { from, to } => format!("link {from} -> {to}"),
        }
    }
}

impl fmt::Display for ChaosTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// One chaos window: per-frame effect rates over a link set and a
/// half-open time interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosEntry {
    /// The links covered.
    pub target: ChaosTarget,
    /// Window start (inclusive, µs).
    pub from_us: u64,
    /// Window end (exclusive, µs); `u64::MAX` for "until the end".
    pub until_us: u64,
    /// Probability a frame is dropped outright.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame's encoded bytes are flipped in flight.
    pub corrupt: f64,
    /// Maximum extra per-frame delay (µs), drawn uniformly per frame —
    /// frames overtake each other when it exceeds the latency spread.
    pub reorder_us: u64,
}

impl ChaosEntry {
    /// A quiet entry covering all links forever; set rates from here.
    pub fn all_links(from_us: u64, until_us: u64) -> Self {
        ChaosEntry {
            target: ChaosTarget::AllLinks,
            from_us,
            until_us,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder_us: 0,
        }
    }

    fn has_effect(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.corrupt > 0.0 || self.reorder_us > 0
    }
}

/// An unrunnable chaos schedule (out-of-range rates, unknown
/// validators, empty or ambiguously overlapping windows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosScheduleError(String);

impl fmt::Display for ChaosScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ChaosScheduleError {}

/// The full chaos timeline of a run: an ordered list of [`ChaosEntry`]s.
///
/// Entry order is preserved through lowering; since validation rejects
/// windows that overlap in time on a shared link, order never changes
/// which window governs a frame.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosSchedule {
    entries: Vec<ChaosEntry>,
}

impl ChaosSchedule {
    /// An empty schedule (a perfectly behaved network).
    pub fn new() -> Self {
        Self::default()
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[ChaosEntry] {
        &self.entries
    }

    /// Appends an entry.
    #[must_use]
    pub fn entry(mut self, e: ChaosEntry) -> Self {
        self.entries.push(e);
        self
    }

    /// Whether the schedule contains no entries. Empty schedules draw
    /// nothing from the simulator RNG — chaos-free runs stay
    /// bit-identical to builds without the chaos layer.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Checks the schedule against a committee of `committee_size`:
    ///
    /// * every rate lies in `[0, 1]`;
    /// * every referenced validator exists;
    /// * directed pairs have distinct endpoints;
    /// * every window is non-empty and has at least one effect;
    /// * no two windows overlap in time while sharing a directed link —
    ///   the executed plan resolves lookups first-match, so an overlap
    ///   would silently shadow one window's rates with the other's.
    ///
    /// # Errors
    ///
    /// Returns a [`ChaosScheduleError`] naming the first violation.
    pub fn validate(&self, committee_size: usize) -> Result<(), ChaosScheduleError> {
        let n = committee_size;
        let in_range = |node: u16| -> Result<(), ChaosScheduleError> {
            if node as usize >= n {
                return Err(ChaosScheduleError(format!(
                    "validator {node} is outside the committee of {n}"
                )));
            }
            Ok(())
        };
        for (i, e) in self.entries.iter().enumerate() {
            for (name, rate) in
                [("drop", e.drop), ("duplicate", e.duplicate), ("corrupt", e.corrupt)]
            {
                if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                    return Err(ChaosScheduleError(format!(
                        "chaos window {i} ({}): {name} rate {rate} is outside [0, 1]",
                        e.target
                    )));
                }
            }
            match e.target {
                ChaosTarget::AllLinks => {}
                ChaosTarget::Node(node) => in_range(node)?,
                ChaosTarget::Pair { from, to } => {
                    in_range(from)?;
                    in_range(to)?;
                    if from == to {
                        return Err(ChaosScheduleError(format!(
                            "chaos window {i}: a link needs two distinct endpoints, got \
                             {from} -> {to}"
                        )));
                    }
                }
            }
            if e.until_us <= e.from_us {
                return Err(ChaosScheduleError(format!(
                    "chaos window {i} ({}) is empty ({}µs..{}µs)",
                    e.target, e.from_us, e.until_us
                )));
            }
            if !e.has_effect() {
                return Err(ChaosScheduleError(format!(
                    "chaos window {i} ({}) has no effect: all rates zero and no reorder",
                    e.target
                )));
            }
        }
        // Pairwise overlap check: half-open time intervals intersecting
        // while the scopes share at least one directed link.
        for i in 0..self.entries.len() {
            for j in (i + 1)..self.entries.len() {
                let (a, b) = (&self.entries[i], &self.entries[j]);
                let time_overlap = a.from_us < b.until_us && b.from_us < a.until_us;
                if time_overlap && a.target.to_scope().intersects(&b.target.to_scope()) {
                    return Err(ChaosScheduleError(format!(
                        "chaos windows {i} ({}) and {j} ({}) overlap in \
                         [{}µs, {}µs) on a shared link; split the windows or merge the rates",
                        a.target,
                        b.target,
                        a.from_us.max(b.from_us),
                        a.until_us.min(b.until_us),
                    )));
                }
            }
        }
        Ok(())
    }

    /// Lowers the schedule to the network simulator's [`ChaosPlan`],
    /// restricted to validator ids below `committee_size` so co-simulated
    /// clients (ids at and above it) keep clean links.
    pub fn to_plan(&self, committee_size: usize) -> ChaosPlan {
        let mut plan = ChaosPlan::new();
        for e in &self.entries {
            plan = plan.window(ChaosWindow {
                scope: e.target.to_scope(),
                from: SimTime(e.from_us),
                until: if e.until_us == u64::MAX { SimTime::MAX } else { SimTime(e.until_us) },
                drop: e.drop,
                duplicate: e.duplicate,
                corrupt: e.corrupt,
                reorder: Duration::from_micros(e.reorder_us),
            });
        }
        plan.restrict_to(committee_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(target: ChaosTarget, from_us: u64, until_us: u64, drop: f64) -> ChaosEntry {
        ChaosEntry { drop, ..ChaosEntry { target, ..ChaosEntry::all_links(from_us, until_us) } }
    }

    #[test]
    fn validate_accepts_disjoint_windows() {
        let s = ChaosSchedule::new()
            .entry(entry(ChaosTarget::AllLinks, 0, 5_000_000, 0.3))
            .entry(entry(ChaosTarget::AllLinks, 5_000_000, 10_000_000, 0.1))
            .entry(entry(ChaosTarget::Node(2), 12_000_000, 14_000_000, 0.5));
        assert!(s.validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_rates() {
        let s = ChaosSchedule::new().entry(entry(ChaosTarget::AllLinks, 0, 1_000_000, 1.5));
        let err = s.validate(4).unwrap_err().to_string();
        assert!(err.contains("drop rate 1.5 is outside [0, 1]"), "{err}");
        let s = ChaosSchedule::new()
            .entry(ChaosEntry { duplicate: -0.1, ..ChaosEntry::all_links(0, 1_000_000) });
        assert!(s.validate(4).is_err());
    }

    #[test]
    fn validate_rejects_unknown_validators_and_self_links() {
        let s = ChaosSchedule::new().entry(entry(ChaosTarget::Node(9), 0, 1_000_000, 0.5));
        assert!(s.validate(4).unwrap_err().to_string().contains("outside the committee"));
        let s = ChaosSchedule::new().entry(entry(
            ChaosTarget::Pair { from: 1, to: 1 },
            0,
            1_000_000,
            0.5,
        ));
        assert!(s.validate(4).unwrap_err().to_string().contains("two distinct endpoints"));
    }

    #[test]
    fn validate_rejects_empty_and_effectless_windows() {
        let s = ChaosSchedule::new().entry(entry(ChaosTarget::AllLinks, 2_000_000, 1_000_000, 0.5));
        assert!(s.validate(4).unwrap_err().to_string().contains("is empty"));
        let s = ChaosSchedule::new().entry(ChaosEntry::all_links(0, 1_000_000));
        assert!(s.validate(4).unwrap_err().to_string().contains("has no effect"));
    }

    #[test]
    fn validate_rejects_same_link_time_overlap() {
        // Node(1) and Pair{0 -> 1} share the link 0 -> 1.
        let s = ChaosSchedule::new()
            .entry(entry(ChaosTarget::Node(1), 0, 2_000_000, 0.2))
            .entry(entry(ChaosTarget::Pair { from: 0, to: 1 }, 1_000_000, 3_000_000, 0.4));
        let err = s.validate(4).unwrap_err().to_string();
        assert!(err.contains("overlap"), "{err}");
        // Disjoint link sets may overlap in time.
        let s = ChaosSchedule::new()
            .entry(entry(ChaosTarget::Pair { from: 0, to: 1 }, 0, 2_000_000, 0.2))
            .entry(entry(ChaosTarget::Pair { from: 1, to: 0 }, 0, 2_000_000, 0.4));
        assert!(s.validate(4).is_ok());
    }

    #[test]
    fn lowering_restricts_to_the_committee() {
        let s = ChaosSchedule::new().entry(entry(ChaosTarget::AllLinks, 0, u64::MAX, 0.5));
        let plan = s.to_plan(4);
        assert!(plan.window_at(NodeId(0), NodeId(3), SimTime(10)).is_some());
        // Client ids above the committee keep clean links.
        assert!(plan.window_at(NodeId(4), NodeId(0), SimTime(10)).is_none());
        // u64::MAX lowers to an endless window.
        assert!(plan.window_at(NodeId(0), NodeId(1), SimTime(u64::MAX - 1)).is_some());
    }
}
